//! The schedule explorer: exhaustive (havoc-style DFS over action
//! schedules, with state-hash pruning and iterative-deepening replay)
//! or randomized (seeded walks) behind the [`Strategy`] knob.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{MethodIx, ModelSystem, ModelVerdict, WakeSet};

/// How [`Checker::run`] covers the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Enumerate *every* schedule of the bounded scenario: a DFS over
    /// explicit `(thread, branch)` choices with state-hash pruning and
    /// iterative-deepening replay (the depth bound doubles until the
    /// whole space fits, so counterexamples are found near their
    /// shortest depth). The default.
    Exhaustive,
    /// Seeded random walks ([`Checker::samples`] of them) through the
    /// schedule space — sampling, not enumeration. For scenarios whose
    /// state space exceeds the exhaustive budget.
    Randomized {
        /// Seed for the walk RNG; equal seeds replay equal walks.
        seed: u64,
    },
}

/// Schedule-space reduction applied by [`Strategy::Exhaustive`]
/// (selected with [`Checker::reduction`]; ignored by
/// [`Strategy::Randomized`]).
///
/// Reduction never changes *verdicts*: the reduced exploration visits
/// every reachable state the unreduced one does (sleep sets prune
/// redundant transition orders, not states; the persistent-set layer
/// is applied only where deadlock- and terminal-preservation are
/// guaranteed), so [`Exploration::outcome`] is identical under both
/// policies and any counterexample still replays and shrinks the same
/// way. Only [`Exploration::schedules`] (and with it wall-clock time)
/// shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionPolicy {
    /// No reduction: explore every schedule (the default). Exploration
    /// counts are exactly those of the explorer before reduction
    /// existed, preserved for A/B comparison and for the CI
    /// schedule-count regression gate.
    #[default]
    None,
    /// Sleep-set + persistent-set dynamic partial-order reduction.
    ///
    /// *Sleep sets*: once a thread's step has been explored from a
    /// state, sibling branches carry it in a sleep set and skip it for
    /// as long as every step taken since provably commutes with it.
    /// Commutation is never assumed from the declared dependency
    /// footprints alone — it is *proved* per state by a
    /// replay-equivalence self-check (execute both orders, require
    /// bit-identical worlds), so a wrong declaration can cost
    /// reduction but never soundness.
    ///
    /// *Persistent sets*: when every method a thread may still touch
    /// has a dependency footprint (cell, queue, lane word, declared
    /// shared-state region — see [`ModelSystem::set_region`]) disjoint
    /// from the footprints of all other unfinished threads, the
    /// explorer commits to a conflict-closed subset of enabled threads
    /// and defers the rest. Applied only when no per-step invariant is
    /// configured (a step invariant reads the whole shared state, so
    /// every step conflicts with it); deadlocks, terminal states,
    /// final-invariant and fairness verdicts are preserved.
    ///
    /// [`ModelSystem::set_region`]: crate::ModelSystem::set_region
    Dpor,
}

/// Classification of one thread's next action at a given state — the
/// explorer's live/blocked bookkeeping. A state where every unfinished
/// thread is [`ActionResult::Blocked`] is a deadlock and is reported
/// with its schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionResult {
    /// The action is live: scheduling the thread produces at least one
    /// successor state.
    Ran,
    /// The thread is parked on a queue with no timeout step enabled —
    /// not currently schedulable.
    Blocked,
    /// The thread finished its script and joined.
    Joined,
    /// The thread is live but its only enabled step is a panicking
    /// chain evaluation.
    Panicked,
}

/// One atomic protocol step, as it appears in counterexample traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// A thread evaluated a method's whole precondition chain.
    Chain {
        /// Which thread stepped.
        thread: usize,
        /// Which method it is activating.
        method: String,
        /// `"resumed"`, `"blocked"`, `"aborted"`, `"panicked"`, or —
        /// in fifo mode — `"queued"` (a newcomer joined the queue
        /// without evaluating).
        result: &'static str,
    },
    /// A thread ran the functional method body.
    Body {
        /// Which thread stepped.
        thread: usize,
        /// The method whose body ran.
        method: String,
    },
    /// A thread ran post-activation (postactions + notifications).
    Post {
        /// Which thread stepped.
        thread: usize,
        /// The completing method.
        method: String,
    },
    /// Sharded mode: a thread rolled back its earlier-resumed aspects
    /// as a separate step (the reservations were visible to other
    /// threads in between), then parked or completed aborted.
    Unwind {
        /// Which thread stepped.
        thread: usize,
        /// The method whose chain is unwinding.
        method: String,
        /// `"parked"` or `"aborted"`.
        result: &'static str,
    },
    /// Racy-park mode: a thread that had decided to block actually
    /// parked (the window in which it misses notifications closes).
    Park {
        /// Which thread stepped.
        thread: usize,
        /// The method it parks on.
        method: String,
    },
    /// A timed thread gave up waiting: it surrendered its place in the
    /// method's queue and its op completed timed-out.
    Timeout {
        /// Which thread stepped.
        thread: usize,
        /// The method it stopped waiting on.
        method: String,
    },
    /// A thread was admitted through the modeled lock-free fast lane:
    /// a single CAS on the lane word, no chain evaluation, no queue
    /// interaction (see [`Checker::fast_lane`]).
    FastAdmit {
        /// Which thread stepped.
        thread: usize,
        /// The method it was fast-admitted to.
        method: String,
    },
    /// A fast-admitted thread departed through the matching lock-free
    /// release: no postactions, no notifications, no self-wake.
    FastRelease {
        /// Which thread stepped.
        thread: usize,
        /// The method it departs.
        method: String,
    },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Chain {
                thread,
                method,
                result,
            } => write!(f, "t{thread}: chain({method}) -> {result}"),
            Step::Body { thread, method } => write!(f, "t{thread}: body({method})"),
            Step::Post { thread, method } => write!(f, "t{thread}: post({method})"),
            Step::Unwind {
                thread,
                method,
                result,
            } => write!(f, "t{thread}: unwind({method}) -> {result}"),
            Step::Park { thread, method } => write!(f, "t{thread}: park({method})"),
            Step::Timeout { thread, method } => write!(f, "t{thread}: timeout({method})"),
            Step::FastAdmit { thread, method } => write!(f, "t{thread}: fast-admit({method})"),
            Step::FastRelease { thread, method } => {
                write!(f, "t{thread}: fast-release({method})")
            }
        }
    }
}

/// Verdict of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every interleaving terminates with the invariant intact.
    Ok,
    /// A reachable state has unfinished threads and no runnable ones;
    /// the trace reproduces it.
    Deadlock(Vec<Step>),
    /// A reachable state violates the user invariant.
    InvariantViolation(Vec<Step>),
    /// A terminal (all-threads-done) state violates the quiescence
    /// invariant — typically a leaked reservation.
    FinalInvariantViolation(Vec<Step>),
    /// A thread's activation resumed while an *earlier-parked* waiter of
    /// the same method was still queued (wake-order inversion). Only
    /// reported when [`Checker::check_fairness`] is enabled; the trace
    /// reproduces the overtake.
    FairnessViolation(Vec<Step>),
    /// The state-space budget was exhausted before completion.
    StateLimit,
    /// The [`Checker::max_depth`] bound was reached with schedules
    /// still unexplored (exhaustive mode only; without an explicit
    /// bound the deepening continues until the space fits).
    DepthLimit,
}

/// Result of [`Checker::run`].
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The verdict.
    pub outcome: Outcome,
    /// Distinct states visited (by state hash).
    pub states: usize,
    /// Number of terminal (all-threads-done) states reached.
    pub terminals: usize,
    /// Maximal schedules explored: paths ending at a terminal state, a
    /// pruned revisit of an already-explored state, or the depth
    /// bound. Deterministic under [`Strategy::Exhaustive`] — the count
    /// is stable across runs of the same scenario.
    pub schedules: usize,
}

/// One scheduling decision: which thread steps, and which of its
/// (possibly several, under notify-one branching) successor worlds is
/// taken.
type Choice = (usize, usize);

/// Memo of per-state commutation proofs: `(state hash, thread a,
/// thread b) -> commutes`. Shared across deepening passes — the result
/// is a pure function of the state.
type CommuteCache = HashMap<(u64, usize, usize), bool>;

/// Failure discriminants shared by exploration and replay; carries no
/// trace so shrinking can compare candidates cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Failure {
    Deadlock,
    Invariant,
    FinalInvariant,
    Fairness,
}

impl Failure {
    fn into_outcome(self, trace: Vec<Step>) -> Outcome {
        match self {
            Failure::Deadlock => Outcome::Deadlock(trace),
            Failure::Invariant => Outcome::InvariantViolation(trace),
            Failure::FinalInvariant => Outcome::FinalInvariantViolation(trace),
            Failure::Fairness => Outcome::FairnessViolation(trace),
        }
    }
}

/// End of one depth-bounded DFS pass.
enum PassEnd {
    /// The whole space fits under the bound: exploration is complete.
    Complete,
    /// Some schedule hit the depth bound; a deeper replay is needed.
    Cutoff,
    /// A failing schedule was found.
    Failed {
        schedule: Vec<Choice>,
        failure: Failure,
    },
    /// The distinct-state budget ran out.
    StateLimit,
}

#[derive(Default)]
struct PassStats {
    terminals: usize,
    schedules: usize,
}

/// One resource in a step's declared dependency footprint. Two steps
/// whose footprints share no conflicting resource are *candidate*
/// independent; the DPOR layers then treat the declaration
/// differently: the persistent-set layer trusts conflict-closure over
/// these footprints (they are conservative over-approximations), while
/// the sleep-set layer additionally proves every commutation by the
/// replay-equivalence self-check before acting on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Res {
    /// A method's coordination cell: chain evaluation, unwind,
    /// timeout cancellation all serialize on it.
    Cell(usize),
    /// A method's wait/ticket queue — membership (`order`/`elig`) and
    /// the phases of threads parked on it (notifications flip those).
    Queue(usize),
    /// A method's packed atomic lane word (fast admit / fast release).
    Lane(usize),
    /// A declared region of the user shared state `S` (see
    /// [`ModelSystem::set_region`](crate::ModelSystem::set_region)):
    /// methods in different regions promise not to read or write each
    /// other's part of `S`.
    Region(usize),
    /// Undeclared shared state: the whole registry of `S`. Conflicts
    /// with itself and with every region.
    Shared,
}

impl Res {
    fn conflicts(self, other: Res) -> bool {
        match (self, other) {
            (Res::Shared, Res::Shared | Res::Region(_)) => true,
            (Res::Region(_), Res::Shared) => true,
            (a, b) => a == b,
        }
    }
}

fn footprints_conflict(a: &[Res], b: &[Res]) -> bool {
    a.iter().any(|&ra| b.iter().any(|&rb| ra.conflicts(rb)))
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// About to evaluate the chain of the current script op.
    Ready,
    /// Parked on a method's wait queue.
    Blocked(usize),
    /// Chain resumed; about to run the body.
    Body(usize),
    /// Body ran; about to run post-activation.
    Post(usize),
    /// Sharded mode: the chain decided to block (`then_block`) or abort
    /// with `evaluated` earlier aspects still holding reservations; the
    /// rollback happens in a later, separate step, so other threads can
    /// observe the transient reservations in between.
    Unwind {
        method: usize,
        evaluated: usize,
        then_block: bool,
    },
    /// Racy-park mode: decided to block but not yet parked —
    /// notifications sent in this window are missed.
    WillBlock(usize),
    /// Fast-admitted (no chain evaluation); about to run the body.
    FastBody(usize),
    /// Fast-admitted body ran; about to depart through the lock-free
    /// release (no postactions, no notifications).
    FastPost(usize),
    /// Script finished.
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct World<S> {
    shared: S,
    /// (program counter, phase) per thread.
    threads: Vec<(usize, Phase)>,
    /// Truth park order per method: thread ids in the order they
    /// parked. This is the *specification* queue the fairness check
    /// compares against; the protocol never consults it.
    order: Vec<Vec<usize>>,
    /// Eligibility queue per method: the queue the modeled *protocol*
    /// consults for barging prevention and front-of-queue wakeups. In a
    /// correct implementation it always equals `order`; the fairness
    /// ablations corrupt it (and only it), so the divergence from
    /// `order` is exactly the bug being modeled.
    elig: Vec<Vec<usize>>,
    /// Per method: whether a chain evaluation has panicked — the model
    /// counterpart of the implementation's revoked capability contract
    /// (a contained panic falsifies the purity declaration, so the
    /// method's fast lane must never admit again until a reweave).
    panic_seen: Vec<bool>,
    /// Set when a step resumed past a still-queued earlier waiter.
    violated: bool,
}

type InvariantFn<S> = Arc<dyn Fn(&S) -> bool + Send + Sync>;

/// Explores every interleaving of a [`ModelSystem`] driven by thread
/// scripts. See the crate docs for a complete example.
pub struct Checker<S> {
    system: ModelSystem<S>,
    scripts: Vec<Vec<MethodIx>>,
    /// Whether each thread's blocked waits are timed (may give up).
    timed: Vec<bool>,
    invariant: Option<InvariantFn<S>>,
    final_invariant: Option<InvariantFn<S>>,
    strategy: Strategy,
    reduction: ReductionPolicy,
    max_states: usize,
    max_depth: Option<usize>,
    samples: usize,
    notify_one: bool,
    sharded: bool,
    rollback_notify: bool,
    racy_park: bool,
    fifo: bool,
    check_fairness: bool,
    racy_handoff: bool,
    overtake_on_timeout: bool,
    leak_on_panic: bool,
    batched_grants: bool,
    split_batch_overtake: bool,
    seed_deadlock: bool,
    fast_lanes: HashSet<usize>,
    leaky_fast_path: bool,
    stale_eligibility: bool,
}

impl<S> fmt::Debug for Checker<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checker")
            .field("system", &self.system)
            .field("threads", &self.scripts.len())
            .field("strategy", &self.strategy)
            .field("reduction", &self.reduction)
            .field("max_states", &self.max_states)
            .field("max_depth", &self.max_depth)
            .field("notify_one", &self.notify_one)
            .field("sharded", &self.sharded)
            .field("rollback_notify", &self.rollback_notify)
            .field("racy_park", &self.racy_park)
            .field("fifo", &self.fifo)
            .field("check_fairness", &self.check_fairness)
            .field("racy_handoff", &self.racy_handoff)
            .field("overtake_on_timeout", &self.overtake_on_timeout)
            .field("leak_on_panic", &self.leak_on_panic)
            .field("batched_grants", &self.batched_grants)
            .field("split_batch_overtake", &self.split_batch_overtake)
            .field("seed_deadlock", &self.seed_deadlock)
            .field("fast_lanes", &self.fast_lanes.len())
            .field("leaky_fast_path", &self.leaky_fast_path)
            .field("stale_eligibility", &self.stale_eligibility)
            .finish()
    }
}

impl<S: Clone + Eq + Hash> Checker<S> {
    /// Creates a checker for `system` with no threads yet.
    pub fn new(system: ModelSystem<S>) -> Self {
        Self {
            system,
            scripts: Vec::new(),
            timed: Vec::new(),
            invariant: None,
            final_invariant: None,
            strategy: Strategy::Exhaustive,
            reduction: ReductionPolicy::None,
            max_states: 1_000_000,
            max_depth: None,
            samples: 1_000,
            notify_one: false,
            sharded: false,
            rollback_notify: true,
            racy_park: false,
            fifo: false,
            check_fairness: false,
            racy_handoff: false,
            overtake_on_timeout: false,
            leak_on_panic: false,
            batched_grants: false,
            split_batch_overtake: false,
            seed_deadlock: false,
            fast_lanes: HashSet::new(),
            leaky_fast_path: false,
            stale_eligibility: false,
        }
    }

    /// Adds a thread executing `script` (a sequence of method
    /// invocations).
    ///
    /// # Panics
    ///
    /// Panics if the script references an undeclared method.
    #[must_use]
    pub fn thread(mut self, script: Vec<MethodIx>) -> Self {
        for m in &script {
            assert!(
                m.0 < self.system.method_count(),
                "script references undeclared method"
            );
        }
        self.scripts.push(script);
        self.timed.push(false);
        self
    }

    /// Adds a thread whose blocked waits are *timed*: whenever it is
    /// parked, an extra `timeout` step is enabled in which it surrenders
    /// its place in the queue and the op completes timed-out — modeling
    /// `preactivation_timeout`. Use timed threads in fairness-ablation
    /// scenarios so no interleaving can end in [`Outcome::Deadlock`] and
    /// the exploration is guaranteed to reach the overtake instead.
    ///
    /// # Panics
    ///
    /// Panics if the script references an undeclared method.
    #[must_use]
    pub fn timed_thread(mut self, script: Vec<MethodIx>) -> Self {
        self = self.thread(script);
        *self.timed.last_mut().expect("just pushed") = true;
        self
    }

    /// Checks `inv` over the shared state after every atomic step.
    #[must_use]
    pub fn invariant(mut self, inv: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        self.invariant = Some(Arc::new(inv));
        self
    }

    /// Checks `inv` over the shared state at every *terminal*
    /// (all-threads-done) state — quiescence properties like "every
    /// reservation returned".
    #[must_use]
    pub fn final_invariant(mut self, inv: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        self.final_invariant = Some(Arc::new(inv));
        self
    }

    /// Selects how the schedule space is covered (default
    /// [`Strategy::Exhaustive`]).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the exhaustive explorer's schedule-space reduction
    /// (default [`ReductionPolicy::None`], which preserves the
    /// pre-reduction exploration counts exactly). See
    /// [`ReductionPolicy::Dpor`] for what the reduced exploration
    /// guarantees. Ignored by [`Strategy::Randomized`].
    #[must_use]
    pub fn reduction(mut self, policy: ReductionPolicy) -> Self {
        self.reduction = policy;
        self
    }

    /// Caps the number of distinct states (default one million).
    #[must_use]
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Caps the schedule depth. In exhaustive mode the
    /// iterative-deepening bound stops doubling here and unexplored
    /// deeper schedules yield [`Outcome::DepthLimit`]; in randomized
    /// mode each walk stops after this many choices. Default: unbounded
    /// (exhaustive) / 10 000 choices per walk (randomized).
    #[must_use]
    pub fn max_depth(mut self, n: usize) -> Self {
        self.max_depth = Some(n);
        self
    }

    /// Number of random walks [`Strategy::Randomized`] performs
    /// (default 1000). Ignored in exhaustive mode.
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n;
        self
    }

    /// Models Java-style `notify()` — each notification wakes *one*
    /// nondeterministically chosen waiter per target queue — instead of
    /// the default notify-all.
    #[must_use]
    pub fn wake_one(mut self) -> Self {
        self.notify_one = true;
        self
    }

    /// Models the *sharded* moderator (per-method coordination cells):
    /// when a chain blocks or aborts after earlier aspects reserved,
    /// the rollback becomes its own atomic step, so other threads can
    /// observe the transient reservations — exactly the window the
    /// single global lock used to close. The rollback step also sends a
    /// rollback notification to the method's wake targets, mirroring
    /// the implementation (disable with
    /// [`Checker::without_rollback_notify`] to see why it is needed).
    #[must_use]
    pub fn sharded(mut self) -> Self {
        self.sharded = true;
        self
    }

    /// Ablation for [`Checker::sharded`]: rollbacks release their
    /// reservations silently, without notifying the method's wake
    /// targets. The checker exhibits the resulting lost wakeup: a
    /// thread that blocked against a transient reservation is never
    /// woken once the reservation is rolled back.
    #[must_use]
    pub fn without_rollback_notify(mut self) -> Self {
        self.rollback_notify = false;
        self
    }

    /// Ablation of the notify-while-locking-target discipline: a thread
    /// that decided to block parks in a *separate* step, and
    /// notifications sent in between are missed (they wake only already
    /// parked threads). Models an implementation that signals a
    /// target's condvar without holding that target's cell lock.
    #[must_use]
    pub fn racy_park(mut self) -> Self {
        self.racy_park = true;
        self
    }

    /// Models `FairnessPolicy::Fifo`: each method's queue is strictly
    /// first-parked-first-served. A notification readies every parked
    /// waiter, but only the *front* of the queue may evaluate its chain
    /// (a sweep serves the rest in order as the front settles), and a
    /// newly arriving caller finding the queue non-empty joins it
    /// without evaluating (barging prevention; the step appears as
    /// `chain(m) -> queued` in traces). Without this flag the model has
    /// barging semantics: woken waiters and newcomers race freely.
    #[must_use]
    pub fn fifo(mut self) -> Self {
        self.fifo = true;
        self
    }

    /// Checks wake-order fairness as an explored property: any step in
    /// which an activation *resumes* while an earlier-parked waiter of
    /// the same method is still queued yields
    /// [`Outcome::FairnessViolation`] with the offending trace. Combine
    /// with [`Checker::fifo`] to prove no-overtake, or leave fifo off to
    /// exhibit that barging semantics violate it.
    #[must_use]
    pub fn check_fairness(mut self) -> Self {
        self.check_fairness = true;
        self
    }

    /// Fairness ablation: newcomers bypass the queue check — a freshly
    /// arriving caller evaluates its chain immediately even when ticketed
    /// waiters are queued, modeling an implementation that hands out the
    /// resource before consulting `has_waiters`. Only meaningful with
    /// [`Checker::fifo`].
    #[must_use]
    pub fn racy_handoff(mut self) -> Self {
        self.racy_handoff = true;
        self
    }

    /// Fairness ablation: a timed waiter that gives up cancels not just
    /// its own ticket but the *eligibility seniority of everyone parked
    /// behind it* (as if the cancellation reset the queue), so newcomers
    /// can barge ahead of still-parked earlier waiters. Only meaningful
    /// with [`Checker::fifo`] and at least one timed thread.
    #[must_use]
    pub fn overtake_on_timeout(mut self) -> Self {
        self.overtake_on_timeout = true;
        self
    }

    /// Models batched FIFO admission (grant extension on departure, the
    /// implementation's `ModeratorBuilder::grant_batching`): whenever a
    /// ticketed waiter *leaves* the queue — resumes, aborts, or cancels
    /// on timeout — the grant is extended to the new queue front, which
    /// re-evaluates without any fresh notification pulse. A freed
    /// capacity of `k` therefore drains the front-`k` prefix in one
    /// cursor-ordered sweep. Ordering is untouched: only the front ever
    /// becomes eligible, so no-overtake must still hold — combine with
    /// [`Checker::fifo`] + [`Checker::check_fairness`] to prove it, and
    /// with [`Checker::split_batch_overtake`] to see what unordered
    /// batch permits would break. Only meaningful with [`Checker::fifo`].
    #[must_use]
    pub fn batched_grants(mut self) -> Self {
        self.batched_grants = true;
        self
    }

    /// Batching ablation: a departure hands the freed capacity to the
    /// front *two* queued waiters as independent permits — and because
    /// the permits are unordered, the second-in-line can evaluate before
    /// the first (modeled by swapping their eligibility seniority). This
    /// is the bug a batched implementation without cursor ordering would
    /// have; it corrupts only the eligibility queue, so
    /// [`Checker::check_fairness`] catches the overtake with a concrete
    /// trace. Implies [`Checker::batched_grants`]; only meaningful with
    /// [`Checker::fifo`].
    #[must_use]
    pub fn split_batch_overtake(mut self) -> Self {
        self.batched_grants = true;
        self.split_batch_overtake = true;
        self
    }

    /// Containment ablation: a [`ModelVerdict::Panic`] completes the op
    /// *without* releasing the earlier-resumed prefix of the chain —
    /// modeling an implementation that catches the unwind but skips the
    /// Abort-path compensation. The leaked reservations strand every
    /// waiter guarded by them, which the checker reports as
    /// [`Outcome::Deadlock`] with the stranding trace.
    #[must_use]
    pub fn leak_on_panic(mut self) -> Self {
        self.leak_on_panic = true;
        self
    }

    /// Ablation reconstructing the PR-2 latent seed bug: completion
    /// and rollback notifications skip the *self-wake* — a waiter
    /// parked on its own method's active flag is never woken by a
    /// same-method peer's completion, because only the wired wake
    /// targets are notified. With wake wiring that omits the method
    /// itself, the second caller parks forever; the deadlock detector
    /// reports it with a minimal schedule.
    #[must_use]
    pub fn seed_deadlock(mut self) -> Self {
        self.seed_deadlock = true;
        self
    }

    /// Declares `method`'s fast lane open for two-phase admission: a
    /// `Ready` thread that is not a ticketed waiter may skip the chain
    /// entirely — one CAS-admit step, the body, one CAS-release step —
    /// exactly like the implementation's fast path for a
    /// capability-declared row. The model does not re-verify the purity
    /// declaration (that is the implementation contract); it proves the
    /// lane *discipline*: combine with [`Checker::fifo`] +
    /// [`Checker::check_fairness`] for no-overtake (the lane must be
    /// closed whenever a waiter is queued), and rely on deadlock
    /// detection for no-lost-wake (a fast release notifies nobody,
    /// which is sound only while the wake wiring is `Wired` and empty —
    /// a precondition the modeled lane enforces, like the
    /// implementation's eligibility predicate). Both successors are
    /// always offered while the lane is open, so exploration also
    /// covers the CAS-contention fallback onto the locked path.
    #[must_use]
    pub fn fast_lane(mut self, method: MethodIx) -> Self {
        self.fast_lanes.insert(method.0);
        self
    }

    /// Fast-lane ablation: the lane stays open while waiters are still
    /// queued — an implementation that forgets to close the lane before
    /// enqueueing, or re-opens it while tickets survive. A newcomer
    /// then CAS-admits straight past the queue;
    /// [`Checker::check_fairness`] reports the overtake with a shrunk
    /// trace. Only meaningful with at least one [`Checker::fast_lane`].
    #[must_use]
    pub fn leaky_fast_path(mut self) -> Self {
        self.leaky_fast_path = true;
        self
    }

    /// Fast-lane ablation: a contained chain panic fails to revoke the
    /// method's fast-path eligibility — the lane keeps admitting on the
    /// stale capability contract, so later invocations skip aspects the
    /// panic just proved are load-bearing. Caught by a state invariant
    /// over what the skipped aspects should have recorded. Only
    /// meaningful with at least one [`Checker::fast_lane`].
    #[must_use]
    pub fn stale_eligibility(mut self) -> Self {
        self.stale_eligibility = true;
        self
    }

    fn phase_for(&self, thread: usize, pc: usize) -> Phase {
        if pc >= self.scripts[thread].len() {
            Phase::Done
        } else {
            Phase::Ready
        }
    }

    /// The phase a blocking thread enters: parked directly, or — in
    /// racy-park mode — an intermediate "decided but not yet parked"
    /// phase in which notifications are missed.
    fn park_phase(&self, method: usize) -> Phase {
        if self.racy_park {
            Phase::WillBlock(method)
        } else {
            Phase::Blocked(method)
        }
    }

    /// Evaluates the chain of `method` atomically; returns the
    /// ("resumed"/"blocked"/"aborted") label and the successor phase
    /// (`None` = the op completes aborted).
    fn chain_step(&self, method: usize, shared: &mut S) -> (&'static str, Option<Phase>) {
        let chain = &self.system.methods[method].chain;
        let n = chain.len();
        for pos in 0..n {
            let idx = n - 1 - pos; // nested: newest-first
            match chain[idx].1.pre(shared) {
                ModelVerdict::Resume => {}
                ModelVerdict::Block => {
                    if self.sharded && self.system.rollback && pos > 0 {
                        // Sharded: the rollback is a later, separate
                        // step — the reservations stay visible.
                        return (
                            "blocked",
                            Some(Phase::Unwind {
                                method,
                                evaluated: pos,
                                then_block: true,
                            }),
                        );
                    }
                    if self.system.rollback {
                        for rpos in (0..pos).rev() {
                            let ridx = n - 1 - rpos;
                            chain[ridx].1.release(shared);
                        }
                    }
                    return ("blocked", Some(self.park_phase(method)));
                }
                ModelVerdict::Abort => {
                    if self.sharded && self.system.rollback && pos > 0 {
                        return (
                            "aborted",
                            Some(Phase::Unwind {
                                method,
                                evaluated: pos,
                                then_block: false,
                            }),
                        );
                    }
                    if self.system.rollback {
                        for rpos in (0..pos).rev() {
                            let ridx = n - 1 - rpos;
                            chain[ridx].1.release(shared);
                        }
                    }
                    return ("aborted", None); // op completes (failed)
                }
                ModelVerdict::Panic => {
                    if self.leak_on_panic {
                        // Ablation: the panic is caught but the
                        // earlier-resumed prefix is never released.
                        return ("panicked", None);
                    }
                    // Contained panic: same compensation as a
                    // mid-chain Abort.
                    if self.sharded && self.system.rollback && pos > 0 {
                        return (
                            "panicked",
                            Some(Phase::Unwind {
                                method,
                                evaluated: pos,
                                then_block: false,
                            }),
                        );
                    }
                    if self.system.rollback {
                        for rpos in (0..pos).rev() {
                            let ridx = n - 1 - rpos;
                            chain[ridx].1.release(shared);
                        }
                    }
                    return ("panicked", None); // op completes (failed)
                }
            }
        }
        ("resumed", Some(Phase::Body(method)))
    }

    /// Whether `method`'s fast lane is open at `w`: declared via
    /// [`Checker::fast_lane`], wake wiring `Wired` and empty (a fast
    /// release notifies nobody, so there must be nobody to notify —
    /// the model counterpart of the implementation's eligibility
    /// predicate), no waiter queued, and no chain panic on record. The
    /// two ablations each drop exactly one conjunct: `leaky_fast_path`
    /// ignores the queue, `stale_eligibility` ignores the revocation.
    fn lane_open(&self, w: &World<S>, method: usize) -> bool {
        if !self.fast_lanes.contains(&method) {
            return false;
        }
        let wired_empty = matches!(
            &self.system.methods[method].wakes,
            WakeSet::Wired(t) if t.is_empty()
        );
        if !wired_empty {
            return false;
        }
        let quiet = w.order[method].is_empty() && w.elig[method].is_empty();
        if !(quiet || self.leaky_fast_path) {
            return false;
        }
        !w.panic_seen[method] || self.stale_eligibility
    }

    /// The methods whose queues `method` notifies.
    fn wake_set(&self, method: usize) -> Vec<usize> {
        match &self.system.methods[method].wakes {
            WakeSet::All => (0..self.system.method_count()).collect(),
            WakeSet::Wired(t) => t.iter().map(|ix| ix.0).collect(),
        }
    }

    /// Applies postactions and computes the set of notified methods:
    /// the wake wiring plus the method itself (self-wake — postactions
    /// mutate the state the method's own waiters are guarded by, so
    /// they must re-evaluate regardless of wiring).
    fn post_step(&self, method: usize, shared: &mut S) -> Vec<usize> {
        let m = &self.system.methods[method];
        for (_, aspect) in &m.chain {
            // post order = registration order under nesting
            aspect.post(shared);
        }
        let mut notified = self.wake_set(method);
        if !self.seed_deadlock && !notified.contains(&method) {
            // The self-wake the seed-deadlock ablation forgets.
            notified.push(method);
        }
        notified
    }

    /// Wakes waiters on the `notified` queues. Notify-all readies every
    /// parked waiter; notify-one branches over which single waiter each
    /// queue wakes. Threads in `WillBlock` (racy-park mode) are missed
    /// by design. In fifo mode wake permits are persistent queue state
    /// in the implementation (a pending signal survives until a waiter
    /// consumes it), so both wake modes ready every parked waiter here
    /// and the eligibility queue serializes who actually evaluates.
    /// Removes `thread` from `method`'s queues when its op resumes,
    /// aborts, or cancels.
    fn leave_queues(w: &mut World<S>, thread: usize, method: usize) {
        w.order[method].retain(|&t| t != thread);
        w.elig[method].retain(|&t| t != thread);
    }

    /// Records `thread` parking on `method` (idempotent across
    /// re-blocks: a woken waiter that blocks again keeps its place).
    /// Grant extension on departure (batched mode): the new front of
    /// `method`'s eligibility queue becomes runnable without a fresh
    /// notification pulse — the modeled counterpart of the cursor-ordered
    /// batched sweep. The split-batch ablation instead hands the freed
    /// capacity to the front *two* waiters as unordered permits, swapping
    /// their seniority (corrupting `elig` only, never `order`).
    fn extend_grant(&self, w: &mut World<S>, method: usize) {
        if !self.batched_grants {
            return;
        }
        if self.split_batch_overtake && w.elig[method].len() >= 2 {
            w.elig[method].swap(0, 1);
        }
        let take = if self.split_batch_overtake { 2 } else { 1 };
        let targets: Vec<usize> = w.elig[method].iter().take(take).copied().collect();
        for t in targets {
            if let (tpc, Phase::Blocked(m)) = w.threads[t].clone() {
                if m == method {
                    w.threads[t] = (tpc, Phase::Ready);
                }
            }
        }
    }

    fn join_queues(w: &mut World<S>, thread: usize, method: usize) {
        if !w.order[method].contains(&thread) {
            w.order[method].push(thread);
        }
        if !w.elig[method].contains(&thread) {
            w.elig[method].push(thread);
        }
    }

    fn apply_notifications(&self, w: World<S>, notified: &[usize]) -> Vec<World<S>> {
        if self.notify_one && !self.fifo {
            // Branch over which single waiter each target queue wakes
            // (Java notify()).
            let mut worlds = vec![w];
            for &target in notified {
                let mut next = Vec::new();
                for base in worlds {
                    let waiters: Vec<usize> = base
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, (_, p))| *p == Phase::Blocked(target))
                        .map(|(t, _)| t)
                        .collect();
                    if waiters.is_empty() {
                        next.push(base);
                    } else {
                        for waiter in waiters {
                            let mut b = base.clone();
                            let wpc = b.threads[waiter].0;
                            b.threads[waiter] = (wpc, Phase::Ready);
                            next.push(b);
                        }
                    }
                }
                worlds = next;
            }
            worlds
        } else {
            // Notify-all: every waiter on a notified queue becomes
            // ready to re-evaluate.
            let mut w = w;
            for t in 0..w.threads.len() {
                if let (tpc, Phase::Blocked(m)) = w.threads[t].clone() {
                    if notified.contains(&m) {
                        w.threads[t] = (tpc, Phase::Ready);
                    }
                }
            }
            vec![w]
        }
    }

    /// Successor worlds of `world` when `thread` takes its next step.
    fn successors(&self, world: &World<S>, thread: usize) -> Vec<(Step, World<S>)> {
        let (pc, phase) = world.threads[thread].clone();
        match phase {
            Phase::Done => Vec::new(),
            Phase::Blocked(method) => {
                if !self.timed[thread] {
                    return Vec::new();
                }
                // Timed wait: the thread may give up, surrendering its
                // place in the queue; the op completes timed-out.
                let mut w = world.clone();
                w.order[method].retain(|&t| t != thread);
                if self.overtake_on_timeout {
                    // Ablation: cancellation wipes the eligibility
                    // seniority of every waiter parked behind it.
                    if let Some(pos) = w.elig[method].iter().position(|&t| t == thread) {
                        w.elig[method].truncate(pos);
                    }
                } else {
                    w.elig[method].retain(|&t| t != thread);
                }
                // A cancellation is a departure too: in batched mode the
                // implementation's `TicketQueue::cancel` extends the
                // grant to the surviving front.
                self.extend_grant(&mut w, method);
                let npc = pc + 1;
                w.threads[thread] = (npc, self.phase_for(thread, npc));
                vec![(
                    Step::Timeout {
                        thread,
                        method: self.system.methods[method].name.clone(),
                    },
                    w,
                )]
            }
            Phase::Ready => {
                let method = self.scripts[thread][pc].0;
                let mut out = Vec::new();
                if self.lane_open(world, method) && !world.elig[method].contains(&thread) {
                    // Fast lane: one CAS admits without evaluating the
                    // chain or touching any queue. Ticketed waiters
                    // never re-try the fast path (the implementation
                    // parks them on the locked path), hence the `elig`
                    // exclusion. The slow-path successor below stays
                    // offered too: a failed CAS falls back to the lock.
                    let mut w = world.clone();
                    if self.check_fairness && !w.order[method].is_empty() {
                        // A fast admit past a still-queued earlier
                        // waiter is an overtake (reachable only under
                        // the leaky ablation).
                        w.violated = true;
                    }
                    w.threads[thread] = (pc, Phase::FastBody(method));
                    out.push((
                        Step::FastAdmit {
                            thread,
                            method: self.system.methods[method].name.clone(),
                        },
                        w,
                    ));
                }
                if self.fifo {
                    if let Some(&front) = world.elig[method].first() {
                        if world.elig[method].contains(&thread) {
                            // A woken waiter evaluates only at the
                            // front of the queue.
                            if front != thread {
                                return out;
                            }
                        } else if !self.racy_handoff {
                            // Barging prevention: a newcomer finding
                            // ticketed waiters joins the queue without
                            // evaluating. The racy-handoff ablation
                            // skips exactly this step.
                            let mut w = world.clone();
                            Self::join_queues(&mut w, thread, method);
                            w.threads[thread] = (pc, Phase::Blocked(method));
                            out.push((
                                Step::Chain {
                                    thread,
                                    method: self.system.methods[method].name.clone(),
                                    result: "queued",
                                },
                                w,
                            ));
                            return out;
                        }
                    }
                }
                let mut w = world.clone();
                let (label, next) = self.chain_step(method, &mut w.shared);
                if label == "panicked" {
                    // Record the contract revocation: from here the
                    // method's fast lane must never admit again (the
                    // stale-eligibility ablation ignores this).
                    w.panic_seen[method] = true;
                }
                match label {
                    "resumed" => {
                        if self.check_fairness
                            && w.order[method].first().is_some_and(|&t| t != thread)
                        {
                            // Overtake: an earlier-parked waiter of this
                            // method is still queued.
                            w.violated = true;
                        }
                        Self::leave_queues(&mut w, thread, method);
                        self.extend_grant(&mut w, method);
                    }
                    "blocked" => {
                        // Queue membership is taken at decision time,
                        // under the cell lock — before any Unwind or
                        // Park step — matching the implementation.
                        Self::join_queues(&mut w, thread, method);
                    }
                    _ => {
                        Self::leave_queues(&mut w, thread, method);
                        self.extend_grant(&mut w, method);
                    }
                }
                match next {
                    Some(phase) => w.threads[thread] = (pc, phase),
                    None => {
                        // Aborted: the op is over.
                        let npc = pc + 1;
                        w.threads[thread] = (npc, self.phase_for(thread, npc));
                    }
                }
                out.push((
                    Step::Chain {
                        thread,
                        method: self.system.methods[method].name.clone(),
                        result: label,
                    },
                    w,
                ));
                out
            }
            Phase::Body(method) => {
                let mut w = world.clone();
                if let Some(body) = &self.system.methods[method].body {
                    body(&mut w.shared);
                }
                w.threads[thread] = (pc, Phase::Post(method));
                vec![(
                    Step::Body {
                        thread,
                        method: self.system.methods[method].name.clone(),
                    },
                    w,
                )]
            }
            Phase::Post(method) => {
                let mut w = world.clone();
                let notified = self.post_step(method, &mut w.shared);
                let npc = pc + 1;
                w.threads[thread] = (npc, self.phase_for(thread, npc));
                let step = Step::Post {
                    thread,
                    method: self.system.methods[method].name.clone(),
                };
                self.apply_notifications(w, &notified)
                    .into_iter()
                    .map(|w| (step.clone(), w))
                    .collect()
            }
            Phase::Unwind {
                method,
                evaluated,
                then_block,
            } => {
                let mut w = world.clone();
                let chain = &self.system.methods[method].chain;
                let n = chain.len();
                for rpos in (0..evaluated).rev() {
                    let ridx = n - 1 - rpos;
                    chain[ridx].1.release(&mut w.shared);
                }
                let step = Step::Unwind {
                    thread,
                    method: self.system.methods[method].name.clone(),
                    result: if then_block { "parked" } else { "aborted" },
                };
                // Rollback notification (unless ablated). Sent before
                // this thread parks, like the implementation, so it
                // cannot wake itself. Includes the method's own queue
                // (self-wake): the released reservation may be what a
                // same-method peer blocks on.
                let worlds = if self.rollback_notify {
                    let mut notified = self.wake_set(method);
                    if !self.seed_deadlock && !notified.contains(&method) {
                        notified.push(method);
                    }
                    self.apply_notifications(w, &notified)
                } else {
                    vec![w]
                };
                worlds
                    .into_iter()
                    .map(|mut w| {
                        if then_block {
                            w.threads[thread] = (pc, self.park_phase(method));
                        } else {
                            let npc = pc + 1;
                            w.threads[thread] = (npc, self.phase_for(thread, npc));
                        }
                        (step.clone(), w)
                    })
                    .collect()
            }
            Phase::WillBlock(method) => {
                let mut w = world.clone();
                w.threads[thread] = (pc, Phase::Blocked(method));
                vec![(
                    Step::Park {
                        thread,
                        method: self.system.methods[method].name.clone(),
                    },
                    w,
                )]
            }
            Phase::FastBody(method) => {
                let mut w = world.clone();
                if let Some(body) = &self.system.methods[method].body {
                    body(&mut w.shared);
                }
                w.threads[thread] = (pc, Phase::FastPost(method));
                vec![(
                    Step::Body {
                        thread,
                        method: self.system.methods[method].name.clone(),
                    },
                    w,
                )]
            }
            Phase::FastPost(method) => {
                // The CAS release: no postactions, no notifications,
                // no self-wake — the entire point of the fast lane.
                // Soundness rests on `lane_open`'s preconditions
                // (empty wiring, waiter-free cell at admit time).
                let mut w = world.clone();
                let npc = pc + 1;
                w.threads[thread] = (npc, self.phase_for(thread, npc));
                vec![(
                    Step::FastRelease {
                        thread,
                        method: self.system.methods[method].name.clone(),
                    },
                    w,
                )]
            }
        }
    }

    /// Deterministic hash of a world (SipHash with fixed keys, so
    /// hashes — and with them exploration counts — are stable across
    /// processes). Pruning on hashes accepts the usual vanishingly
    /// small collision risk in exchange for not retaining every world.
    fn state_hash(world: &World<S>) -> u64 {
        let mut h = DefaultHasher::new();
        world.hash(&mut h);
        h.finish()
    }

    /// All enabled transitions of `world`, in deterministic order:
    /// ascending thread index, then branch index within that thread's
    /// successor list. The fixed order is what makes exhaustive
    /// exploration (and its schedule count) reproducible.
    fn transitions(&self, world: &World<S>) -> Vec<(Choice, Step, World<S>)> {
        let mut out = Vec::new();
        for thread in 0..self.scripts.len() {
            for (branch, (step, next)) in self.successors(world, thread).into_iter().enumerate() {
                out.push(((thread, branch), step, next));
            }
        }
        out
    }

    /// Classifies every thread's next action at `world` given its
    /// precomputed `transitions` — the live/blocked action sets. A
    /// world whose unfinished threads are all [`ActionResult::Blocked`]
    /// is deadlocked.
    fn action_results(
        &self,
        world: &World<S>,
        transitions: &[(Choice, Step, World<S>)],
    ) -> Vec<ActionResult> {
        (0..self.scripts.len())
            .map(|t| {
                if matches!(world.threads[t].1, Phase::Done) {
                    return ActionResult::Joined;
                }
                let mut any = false;
                let mut all_panic = true;
                for (choice, step, _) in transitions {
                    if choice.0 != t {
                        continue;
                    }
                    any = true;
                    all_panic &= matches!(
                        step,
                        Step::Chain {
                            result: "panicked",
                            ..
                        }
                    );
                }
                match (any, all_panic) {
                    (false, _) => ActionResult::Blocked,
                    (true, true) => ActionResult::Panicked,
                    (true, false) => ActionResult::Ran,
                }
            })
            .collect()
    }

    /// The shared-state resource `method`'s user code (aspect
    /// pre/post/release functions and the body) may touch: its declared
    /// region, or the whole registry when undeclared. Methods with no
    /// user code touch no shared state at all.
    fn shared_res(&self, method: usize) -> Option<Res> {
        let m = &self.system.methods[method];
        if m.chain.is_empty() && m.body.is_none() {
            return None;
        }
        Some(match m.region {
            Some(r) => Res::Region(r),
            None => Res::Shared,
        })
    }

    /// Declared dependency footprint of `thread`'s *next step* at `w`:
    /// the coordination cell, queue, lane word and shared-state
    /// resources the step may read or write. Conservative — a step's
    /// footprint covers every variant of the step (a chain evaluation
    /// that might block covers the queue join; a post covers every
    /// wake-target queue).
    fn step_footprint(&self, w: &World<S>, thread: usize) -> Vec<Res> {
        let (pc, phase) = &w.threads[thread];
        let mut fp = Vec::new();
        match phase {
            Phase::Done => {}
            Phase::Ready => {
                let m = self.scripts[thread][*pc].0;
                fp.push(Res::Cell(m));
                fp.push(Res::Queue(m));
                if self.fast_lanes.contains(&m) {
                    fp.push(Res::Lane(m));
                }
                fp.extend(self.shared_res(m));
            }
            Phase::Blocked(m) | Phase::WillBlock(m) => {
                // Timeout cancellation / the racy park: queue
                // membership and the parked phase itself.
                fp.push(Res::Cell(*m));
                fp.push(Res::Queue(*m));
            }
            Phase::Body(m) | Phase::FastBody(m) => {
                fp.extend(self.shared_res(*m));
            }
            Phase::Post(m) | Phase::Unwind { method: m, .. } => {
                fp.push(Res::Cell(*m));
                fp.push(Res::Queue(*m));
                fp.extend(self.shared_res(*m));
                for t in self.wake_set(*m) {
                    fp.push(Res::Queue(t));
                }
            }
            Phase::FastPost(m) => {
                fp.push(Res::Lane(*m));
            }
        }
        fp
    }

    /// Static footprint of `method`: the union of the step footprints
    /// of every phase an activation of it can pass through.
    fn method_footprint(&self, method: usize) -> Vec<Res> {
        let mut fp = vec![Res::Cell(method), Res::Queue(method)];
        if self.fast_lanes.contains(&method) {
            fp.push(Res::Lane(method));
        }
        fp.extend(self.shared_res(method));
        for t in self.wake_set(method) {
            if t != method {
                fp.push(Res::Queue(t));
            }
        }
        fp
    }

    /// Everything `thread` may still touch from `w` on: the footprint
    /// of its in-flight activation plus those of every script op not
    /// yet started. The persistent-set layer compares these to find
    /// threads whose entire futures are disjoint.
    fn remaining_footprint(&self, w: &World<S>, thread: usize) -> Vec<Res> {
        let (pc, phase) = &w.threads[thread];
        let mut fp = Vec::new();
        match phase {
            Phase::Done | Phase::Ready => {}
            Phase::Blocked(m)
            | Phase::WillBlock(m)
            | Phase::Body(m)
            | Phase::Post(m)
            | Phase::FastBody(m)
            | Phase::FastPost(m)
            | Phase::Unwind { method: m, .. } => fp.extend(self.method_footprint(*m)),
        }
        for op in &self.scripts[thread][(*pc).min(self.scripts[thread].len())..] {
            fp.extend(self.method_footprint(op.0));
        }
        fp
    }

    /// The successor world of `thread` at `w`, provided the step is
    /// *deterministic* (exactly one successor). Branching steps
    /// (notify-one wakes, an open fast lane's dual admit) are never
    /// treated as independent of anything.
    fn singleton_successor(&self, w: &World<S>, thread: usize) -> Option<World<S>> {
        let mut succ = self.successors(w, thread);
        if succ.len() == 1 {
            Some(succ.pop().expect("len checked").1)
        } else {
            None
        }
    }

    /// The replay-equivalence self-check: `a` and `b` commute at `w`
    /// iff both steps are deterministic, each remains deterministic
    /// after the other, and executing them in either order reaches the
    /// *bit-identical* world (shared state, phases, queues, panic
    /// flags, fairness flag). This is the proof obligation behind
    /// every sleep-set pruning decision — declared footprints propose,
    /// replay equivalence disposes.
    fn commutes(&self, w: &World<S>, a: usize, b: usize) -> bool {
        let (Some(wa), Some(wb)) = (
            self.singleton_successor(w, a),
            self.singleton_successor(w, b),
        ) else {
            return false;
        };
        let (Some(wab), Some(wba)) = (
            self.singleton_successor(&wa, b),
            self.singleton_successor(&wb, a),
        ) else {
            return false;
        };
        wab == wba
    }

    /// Memoized independence of two threads' next steps at `w`, keyed
    /// by the state hash and the (unordered) thread pair — shares the
    /// pruning layer's accepted hash-collision risk.
    ///
    /// Two tiers: when both steps' declared footprints are *purely
    /// structural* (cell, queue, lane — computed by the checker from
    /// the model, never claimed by the user) and disjoint, the steps
    /// operate on disjoint parts of the world and independence follows
    /// without running anything. Everything else — conflicting
    /// footprints that may still commute dynamically (the buffer
    /// protocol's bread and butter), or footprints resting on a
    /// user-declared region — is settled by the replay-equivalence
    /// self-check: declared footprints propose, replay equivalence
    /// disposes.
    fn independent(
        &self,
        w: &World<S>,
        wh: u64,
        a: usize,
        b: usize,
        cache: &mut CommuteCache,
    ) -> bool {
        let key = (wh, a.min(b), a.max(b));
        if let Some(&v) = cache.get(&key) {
            return v;
        }
        let fa = self.step_footprint(w, a);
        let fb = self.step_footprint(w, b);
        let structural = fa
            .iter()
            .chain(fb.iter())
            .all(|r| !matches!(r, Res::Region(_)));
        let v = (structural && !footprints_conflict(&fa, &fb)) || self.commutes(w, a, b);
        cache.insert(key, v);
        v
    }

    /// The persistent-set layer: restricts `succs` to a conflict-closed
    /// subset of the enabled threads whose remaining footprints are
    /// disjoint from every thread left out, so the deferred threads'
    /// steps commute with everything explored first. Returns `succs`
    /// unchanged whenever no reduction is provable: a per-step
    /// invariant is configured (it reads all of `S`, so everything
    /// conflicts), a *blocked* thread conflicts with the set (waking it
    /// needs a conflicting step), or the closure swallows every enabled
    /// thread. Declared regions are spot-checked: each deferred thread
    /// must pass the replay-equivalence self-check against the chosen
    /// set at this state, else the declaration is distrusted and no
    /// reduction happens.
    fn persistent_filter(
        &self,
        w: &World<S>,
        succs: Vec<(Choice, Step, World<S>)>,
        cache: &mut CommuteCache,
    ) -> Vec<(Choice, Step, World<S>)> {
        if self.invariant.is_some() {
            return succs;
        }
        let n = self.scripts.len();
        let mut enabled = vec![false; n];
        for ((t, _), _, _) in &succs {
            enabled[*t] = true;
        }
        let first = match (0..n).find(|&t| enabled[t]) {
            Some(t) => t,
            None => return succs,
        };
        if enabled.iter().filter(|&&e| e).count() <= 1 {
            return succs;
        }
        let unfinished: Vec<bool> = (0..n)
            .map(|t| !matches!(w.threads[t].1, Phase::Done))
            .collect();
        let rf: Vec<Vec<Res>> = (0..n).map(|t| self.remaining_footprint(w, t)).collect();
        let mut in_set = vec![false; n];
        in_set[first] = true;
        loop {
            let mut changed = false;
            for u in 0..n {
                if in_set[u] || !unfinished[u] {
                    continue;
                }
                let conflicts = (0..n).any(|p| in_set[p] && footprints_conflict(&rf[u], &rf[p]));
                if conflicts {
                    if !enabled[u] {
                        // A blocked thread conflicts with the set:
                        // whoever wakes it would have to be included,
                        // so give up on reducing here.
                        return succs;
                    }
                    in_set[u] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if (0..n).all(|t| !enabled[t] || in_set[t]) {
            return succs;
        }
        // Spot-check the declarations: every deferred enabled thread
        // must actually commute, here and now, with every member.
        let wh = Self::state_hash(w);
        for u in 0..n {
            if !enabled[u] || in_set[u] {
                continue;
            }
            for p in 0..n {
                if in_set[p] && enabled[p] && !self.independent(w, wh, u, p, cache) {
                    return succs;
                }
            }
        }
        succs
            .into_iter()
            .filter(|((t, _), _, _)| in_set[*t])
            .collect()
    }

    fn initial_world(&self, initial: S) -> World<S> {
        World {
            shared: initial,
            threads: (0..self.scripts.len())
                .map(|t| (0, self.phase_for(t, 0)))
                .collect(),
            order: vec![Vec::new(); self.system.method_count()],
            elig: vec![Vec::new(); self.system.method_count()],
            panic_seen: vec![false; self.system.method_count()],
            violated: false,
        }
    }

    fn invariant_fails(&self, shared: &S) -> bool {
        self.invariant.as_ref().is_some_and(|inv| !inv(shared))
    }

    fn final_invariant_fails(&self, shared: &S) -> bool {
        self.final_invariant
            .as_ref()
            .is_some_and(|inv| !inv(shared))
    }

    /// Replays an explicit schedule from `initial`, re-deriving every
    /// step. Returns `None` if some choice is invalid at its state
    /// (the schedule does not parse — shrinking candidates often
    /// aren't valid schedules); otherwise the steps taken up to the
    /// first failure, and the failure if one fired. Replay is the
    /// ground truth the explorer's counterexamples are validated
    /// against: a reported trace is always re-derived here, never
    /// read back from exploration bookkeeping.
    fn replay(
        &self,
        initial: &World<S>,
        schedule: &[Choice],
    ) -> Option<(Vec<Step>, Option<Failure>)> {
        let mut world = initial.clone();
        let mut steps = Vec::new();
        if self.invariant_fails(&world.shared) {
            return Some((steps, Some(Failure::Invariant)));
        }
        for &(thread, branch) in schedule {
            let (step, next) = self.successors(&world, thread).into_iter().nth(branch)?;
            steps.push(step);
            world = next;
            if world.violated {
                return Some((steps, Some(Failure::Fairness)));
            }
            if self.invariant_fails(&world.shared) {
                return Some((steps, Some(Failure::Invariant)));
            }
        }
        if world.threads.iter().all(|(_, p)| matches!(p, Phase::Done)) {
            if self.final_invariant_fails(&world.shared) {
                return Some((steps, Some(Failure::FinalInvariant)));
            }
            return Some((steps, None));
        }
        let deadlocked = (0..self.scripts.len()).all(|t| self.successors(&world, t).is_empty());
        if deadlocked {
            return Some((steps, Some(Failure::Deadlock)));
        }
        Some((steps, None))
    }

    /// Minimizes a failing schedule by greedy prefix elision (drop the
    /// longest prefix that still reproduces), then greedy single-step
    /// elision, to a fixpoint. Every candidate is validated by replay
    /// reproducing the same failure discriminant; the returned trace is
    /// the replay of the shrunk schedule, truncated at the step where
    /// the failure fires.
    fn shrink(&self, initial: &World<S>, mut schedule: Vec<Choice>, target: Failure) -> Vec<Step> {
        let reproduces = |cand: &[Choice]| matches!(self.replay(initial, cand), Some((_, Some(f))) if f == target);
        loop {
            let mut improved = false;
            for k in (1..schedule.len()).rev() {
                if reproduces(&schedule[k..]) {
                    schedule.drain(..k);
                    improved = true;
                    break;
                }
            }
            let mut i = 0;
            while i < schedule.len() {
                let mut cand = schedule.clone();
                cand.remove(i);
                if reproduces(&cand) {
                    schedule = cand;
                    improved = true;
                } else {
                    i += 1;
                }
            }
            if !improved {
                break;
            }
        }
        match self.replay(initial, &schedule) {
            Some((steps, Some(f))) if f == target => steps,
            _ => unreachable!("shrunk schedule no longer reproduces its failure"),
        }
    }

    /// One depth-bounded DFS pass over explicit schedules, pruning on
    /// state hashes. `min_depth` maps each hash to the shallowest depth
    /// it was reached at: a state reached again at the same or greater
    /// depth is pruned; reached *shallower*, it is re-expanded so the
    /// depth bound never hides schedules (the invariant that makes
    /// iterative deepening sound with pruning).
    ///
    /// Under [`ReductionPolicy::Dpor`] each frame additionally carries
    /// a *sleep set*: threads whose steps were already explored from an
    /// earlier sibling branch and have commuted (proved by the
    /// replay-equivalence self-check) with every step taken since.
    /// Their branches are skipped — any schedule starting with them is
    /// a reordering of one already explored. Because sleep sets change
    /// what is explored *from* a state, the pruning key widens to
    /// (state, sleep set): a revisit is pruned only when an earlier
    /// expansion covered at least as many transitions (its sleep set
    /// was a subset) at least as shallow.
    fn dfs_pass(
        &self,
        initial: &World<S>,
        limit: usize,
        all_states: &mut HashSet<u64>,
        stats: &mut PassStats,
        cache: &mut CommuteCache,
    ) -> PassEnd {
        struct Frame<S> {
            world: World<S>,
            /// Hash of `world`, computed once at push.
            hash: u64,
            succs: Vec<(Choice, Step, World<S>)>,
            next: usize,
            /// Dpor: sleeping threads, as a bitmask over thread ids
            /// (the reduction caps out at 64 threads — far beyond any
            /// enumerable scenario).
            sleep: u64,
            /// Dpor: some schedule below this frame hit the depth
            /// bound, so its subtree is *not* completely explored.
            dirty: bool,
            /// Dpor: the `(state hash, index)` of this expansion's
            /// entry in `visits`, to mark clean once the frame pops.
            record: Option<(u64, usize)>,
        }
        /// One recorded expansion of a state: the depth it happened
        /// at, the sleep mask it happened with, and whether the subtree
        /// was explored to completion (no descendant hit the depth
        /// bound). A clean expansion covers revisits at *any* depth —
        /// completeness is depth-independent: every schedule below it
        /// ended naturally, so it also fits under any later budget.
        type Record = (usize, u64, bool);
        let dpor = self.reduction == ReductionPolicy::Dpor && self.scripts.len() <= 64;
        let mut min_depth: HashMap<u64, usize> = HashMap::new();
        // Dpor bookkeeping per state: the mask of threads enabled there
        // (after the persistent filter — a pure function of the state,
        // so safe to cache by hash) and every expansion on record.
        let mut visits: HashMap<u64, (u64, Vec<Record>)> = HashMap::new();
        let mut cutoff = false;
        let mut schedule: Vec<Choice> = Vec::new();
        let root_succs = if dpor {
            self.persistent_filter(initial, self.transitions(initial), cache)
        } else {
            self.transitions(initial)
        };
        let root_hash = Self::state_hash(initial);
        if dpor {
            let mut enabled = 0u64;
            for ((t, _), _, _) in &root_succs {
                enabled |= 1 << t;
            }
            visits.insert(root_hash, (enabled, vec![(0, 0, false)]));
        } else {
            min_depth.insert(root_hash, 0);
        }
        let mut stack = vec![Frame {
            world: initial.clone(),
            hash: root_hash,
            succs: root_succs,
            next: 0,
            sleep: 0,
            dirty: false,
            record: if dpor { Some((root_hash, 0)) } else { None },
        }];
        while !stack.is_empty() {
            let (choice, world, child_sleep) = {
                let frame = stack.last_mut().expect("non-empty stack");
                if frame.next >= frame.succs.len() {
                    let frame = stack.pop().expect("non-empty stack");
                    schedule.pop();
                    if dpor {
                        if frame.dirty {
                            if let Some(parent) = stack.last_mut() {
                                parent.dirty = true;
                            }
                        } else if let Some((h, idx)) = frame.record {
                            if let Some((_, records)) = visits.get_mut(&h) {
                                records[idx].2 = true;
                            }
                        }
                    }
                    continue;
                }
                let (choice, _, world) = frame.succs[frame.next].clone();
                let thread = choice.0;
                if dpor && frame.sleep >> thread & 1 == 1 {
                    // Asleep: every schedule beginning with this step
                    // reorders one an earlier sibling already covered.
                    frame.next += 1;
                    continue;
                }
                frame.next += 1;
                let child_sleep = if dpor {
                    let fh = frame.hash;
                    // A sleeping thread stays asleep past this step
                    // only while the commutation proof holds here.
                    let mut filtered = 0u64;
                    let mut rest = frame.sleep;
                    while rest != 0 {
                        let u = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        if self.independent(&frame.world, fh, u, thread, cache) {
                            filtered |= 1 << u;
                        }
                    }
                    // Once past the thread's last branch, later
                    // siblings may treat its step as covered.
                    let done_with_thread =
                        frame.next >= frame.succs.len() || frame.succs[frame.next].0 .0 != thread;
                    if done_with_thread {
                        frame.sleep |= 1 << thread;
                    }
                    filtered
                } else {
                    0
                };
                (choice, world, child_sleep)
            };
            schedule.push(choice);
            if world.violated {
                return PassEnd::Failed {
                    schedule,
                    failure: Failure::Fairness,
                };
            }
            if self.invariant_fails(&world.shared) {
                return PassEnd::Failed {
                    schedule,
                    failure: Failure::Invariant,
                };
            }
            let h = Self::state_hash(&world);
            all_states.insert(h);
            if all_states.len() > self.max_states {
                return PassEnd::StateLimit;
            }
            let depth = schedule.len();
            let mut needs_insert = false;
            let mut frame_record = None;
            let frame_sleep = if dpor {
                match visits.get_mut(&h) {
                    Some((enabled, records)) => {
                        // An earlier expansion covers this revisit if
                        // it was *clean* (its whole subtree fit under
                        // the bound — depth-independent) or happened at
                        // least this shallow (at least this much
                        // remaining budget). A thread needs expansion
                        // here only if it is awake now and *every*
                        // covering expansion had it asleep — anything
                        // else was already explored from this state
                        // with enough budget (difference exploration,
                        // the state-caching refinement of sleep sets).
                        let mut missed = !0u64;
                        let mut any_eligible = false;
                        for (d, z, clean) in records.iter() {
                            if *clean || *d <= depth {
                                any_eligible = true;
                                missed &= z;
                            }
                        }
                        if !any_eligible {
                            // Only deeper, cut-off expansions on
                            // record: the depth bound may have hidden
                            // schedules, so re-expand in full (the
                            // deepening invariant, as in the unreduced
                            // explorer).
                            frame_record = Some((h, records.len()));
                            records.push((depth, child_sleep, false));
                            child_sleep
                        } else {
                            let explore = *enabled & !child_sleep & missed;
                            if explore == 0 {
                                stats.schedules += 1;
                                schedule.pop();
                                continue;
                            }
                            // Everything not expanded goes to sleep
                            // for the children.
                            let extended = child_sleep | (*enabled & !explore);
                            frame_record = Some((h, records.len()));
                            records.push((depth, extended, false));
                            extended
                        }
                    }
                    None => {
                        // Fresh state: the enabled set is recorded once
                        // the persistent filter has run, below.
                        needs_insert = true;
                        child_sleep
                    }
                }
            } else {
                if min_depth.get(&h).is_some_and(|&d| d <= depth) {
                    // Already explored from here at least this shallow:
                    // this schedule ends in known territory.
                    stats.schedules += 1;
                    schedule.pop();
                    continue;
                }
                min_depth.insert(h, depth);
                0
            };
            let succs = self.transitions(&world);
            let results = self.action_results(&world, &succs);
            let succs = if dpor {
                self.persistent_filter(&world, succs, cache)
            } else {
                succs
            };
            if needs_insert {
                let mut enabled = 0u64;
                for ((t, _), _, _) in &succs {
                    enabled |= 1 << t;
                }
                frame_record = Some((h, 0));
                visits.insert(h, (enabled, vec![(depth, frame_sleep, false)]));
            }
            if results.iter().all(|r| *r == ActionResult::Joined) {
                stats.terminals += 1;
                stats.schedules += 1;
                if self.final_invariant_fails(&world.shared) {
                    return PassEnd::Failed {
                        schedule,
                        failure: Failure::FinalInvariant,
                    };
                }
                schedule.pop();
                continue;
            }
            let any_live = results
                .iter()
                .any(|r| matches!(r, ActionResult::Ran | ActionResult::Panicked));
            if !any_live {
                // Every unfinished action is blocked: deadlock.
                return PassEnd::Failed {
                    schedule,
                    failure: Failure::Deadlock,
                };
            }
            if depth >= limit {
                cutoff = true;
                stats.schedules += 1;
                schedule.pop();
                if dpor {
                    // The parent's subtree is incomplete: its state
                    // must not be marked clean when it pops.
                    if let Some(parent) = stack.last_mut() {
                        parent.dirty = true;
                    }
                }
                continue;
            }
            stack.push(Frame {
                world,
                hash: h,
                succs,
                next: 0,
                sleep: frame_sleep,
                dirty: false,
                record: frame_record,
            });
        }
        if cutoff {
            PassEnd::Cutoff
        } else {
            PassEnd::Complete
        }
    }

    fn exploration(
        &self,
        outcome: Outcome,
        all_states: &HashSet<u64>,
        stats: &PassStats,
    ) -> Exploration {
        Exploration {
            outcome,
            states: all_states.len(),
            terminals: stats.terminals,
            schedules: stats.schedules,
        }
    }

    /// Iterative-deepening exhaustive exploration: DFS passes with a
    /// doubling depth bound, re-replayed from the initial state, until
    /// a pass completes without cutoff (or fails, or runs out of
    /// budget). Failing schedules are shrunk before reporting.
    fn run_exhaustive(&self, initial_world: World<S>) -> Exploration {
        let mut all_states: HashSet<u64> = HashSet::new();
        all_states.insert(Self::state_hash(&initial_world));
        let mut stats = PassStats::default();

        let root_succs = self.transitions(&initial_world);
        let results = self.action_results(&initial_world, &root_succs);
        if results.iter().all(|r| *r == ActionResult::Joined) {
            stats.terminals = 1;
            stats.schedules = 1;
            let outcome = if self.final_invariant_fails(&initial_world.shared) {
                Outcome::FinalInvariantViolation(Vec::new())
            } else {
                Outcome::Ok
            };
            return self.exploration(outcome, &all_states, &stats);
        }
        if !results
            .iter()
            .any(|r| matches!(r, ActionResult::Ran | ActionResult::Panicked))
        {
            return self.exploration(Outcome::Deadlock(Vec::new()), &all_states, &stats);
        }

        let cap = self.max_depth.unwrap_or(usize::MAX);
        let mut limit = 8_usize.min(cap);
        let mut cache = CommuteCache::new();
        loop {
            stats = PassStats::default();
            match self.dfs_pass(
                &initial_world,
                limit,
                &mut all_states,
                &mut stats,
                &mut cache,
            ) {
                PassEnd::Failed { schedule, failure } => {
                    let trace = self.shrink(&initial_world, schedule, failure);
                    return self.exploration(failure.into_outcome(trace), &all_states, &stats);
                }
                PassEnd::StateLimit => {
                    return self.exploration(Outcome::StateLimit, &all_states, &stats);
                }
                PassEnd::Complete => {
                    return self.exploration(Outcome::Ok, &all_states, &stats);
                }
                PassEnd::Cutoff => {
                    if limit >= cap {
                        return self.exploration(Outcome::DepthLimit, &all_states, &stats);
                    }
                    limit = limit.saturating_mul(2).min(cap);
                }
            }
        }
    }

    /// Seeded random walks through the schedule space. Failing walks
    /// are shrunk exactly like exhaustive counterexamples.
    fn run_randomized(&self, initial_world: World<S>, seed: u64) -> Exploration {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all_states: HashSet<u64> = HashSet::new();
        all_states.insert(Self::state_hash(&initial_world));
        let mut stats = PassStats::default();
        let walk_cap = self.max_depth.unwrap_or(10_000);
        for _ in 0..self.samples {
            let mut world = initial_world.clone();
            let mut schedule: Vec<Choice> = Vec::new();
            loop {
                let succs = self.transitions(&world);
                let results = self.action_results(&world, &succs);
                if results.iter().all(|r| *r == ActionResult::Joined) {
                    stats.terminals += 1;
                    stats.schedules += 1;
                    if self.final_invariant_fails(&world.shared) {
                        let trace = self.shrink(&initial_world, schedule, Failure::FinalInvariant);
                        return self.exploration(
                            Outcome::FinalInvariantViolation(trace),
                            &all_states,
                            &stats,
                        );
                    }
                    break;
                }
                if !results
                    .iter()
                    .any(|r| matches!(r, ActionResult::Ran | ActionResult::Panicked))
                {
                    let trace = self.shrink(&initial_world, schedule, Failure::Deadlock);
                    return self.exploration(Outcome::Deadlock(trace), &all_states, &stats);
                }
                if schedule.len() >= walk_cap {
                    // Inconclusive walk: give up on it, count it.
                    stats.schedules += 1;
                    break;
                }
                let pick = rng.gen_range(0..succs.len());
                let (choice, _, next) = succs[pick].clone();
                schedule.push(choice);
                world = next;
                all_states.insert(Self::state_hash(&world));
                if world.violated {
                    let trace = self.shrink(&initial_world, schedule, Failure::Fairness);
                    return self.exploration(
                        Outcome::FairnessViolation(trace),
                        &all_states,
                        &stats,
                    );
                }
                if self.invariant_fails(&world.shared) {
                    let trace = self.shrink(&initial_world, schedule, Failure::Invariant);
                    return self.exploration(
                        Outcome::InvariantViolation(trace),
                        &all_states,
                        &stats,
                    );
                }
                if all_states.len() > self.max_states {
                    return self.exploration(Outcome::StateLimit, &all_states, &stats);
                }
            }
        }
        self.exploration(Outcome::Ok, &all_states, &stats)
    }

    /// Explores the schedule space starting from `initial` shared
    /// state, per the configured [`Strategy`].
    pub fn run(&self, initial: S) -> Exploration {
        let initial_world = self.initial_world(initial);
        if self.invariant_fails(&initial_world.shared) {
            return Exploration {
                outcome: Outcome::InvariantViolation(Vec::new()),
                states: 1,
                terminals: 0,
                schedules: 0,
            };
        }
        match self.strategy {
            Strategy::Exhaustive => self.run_exhaustive(initial_world),
            Strategy::Randomized { seed } => self.run_randomized(initial_world, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspects;

    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Excl {
        busy: bool,
        inside: usize,
        max_inside: usize,
    }

    fn exclusion_system() -> (ModelSystem<Excl>, MethodIx) {
        let mut sys = ModelSystem::new();
        let op = sys.method("op");
        sys.add_aspect(
            op,
            "mutex",
            aspects::reserve(
                |s: &Excl| !s.busy,
                |s: &mut Excl| {
                    s.busy = true;
                    s.inside += 1;
                    s.max_inside = s.max_inside.max(s.inside);
                },
                |s: &mut Excl| {
                    s.busy = false;
                    s.inside -= 1;
                },
            ),
        );
        (sys, op)
    }

    #[test]
    fn exclusion_holds_in_every_interleaving() {
        let (sys, op) = exclusion_system();
        let result = Checker::new(sys)
            .thread(vec![op, op])
            .thread(vec![op, op])
            .invariant(|s: &Excl| s.max_inside <= 1)
            .run(Excl::default());
        assert_eq!(result.outcome, Outcome::Ok);
        assert!(result.states > 10);
        assert!(result.terminals >= 1);
    }

    #[test]
    fn broken_exclusion_is_caught() {
        // A "mutex" that forgets to set the flag.
        let mut sys = ModelSystem::new();
        let op = sys.method("op");
        sys.add_aspect(
            op,
            "broken-mutex",
            aspects::from_fns(
                |s: &mut Excl| {
                    // BUG: no busy check, no flag set.
                    s.inside += 1;
                    s.max_inside = s.max_inside.max(s.inside);
                    crate::ModelVerdict::Resume
                },
                |s: &mut Excl| s.inside -= 1,
                |_| (),
            ),
        );
        let result = Checker::new(sys)
            .thread(vec![op])
            .thread(vec![op])
            .invariant(|s: &Excl| s.max_inside <= 1)
            .run(Excl::default());
        match result.outcome {
            Outcome::InvariantViolation(trace) => {
                assert!(trace.len() >= 2, "trace: {trace:?}");
                // The counterexample must show two chain evaluations
                // before any post.
                let chains = trace
                    .iter()
                    .filter(|s| matches!(s, Step::Chain { .. }))
                    .count();
                assert!(chains >= 2);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn single_waiter_deadlocks_without_producer() {
        #[derive(Clone, PartialEq, Eq, Hash, Default)]
        struct S {
            open: bool,
        }
        let mut sys = ModelSystem::new();
        let gated = sys.method("gated");
        sys.add_aspect(gated, "gate", aspects::guard(|s: &S| s.open));
        let result = Checker::new(sys).thread(vec![gated]).run(S::default());
        match result.outcome {
            Outcome::Deadlock(trace) => {
                assert_eq!(trace.len(), 1);
                assert!(trace[0].to_string().contains("blocked"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn abort_completes_the_op() {
        #[derive(Clone, PartialEq, Eq, Hash, Default)]
        struct S;
        let mut sys = ModelSystem::new();
        let op = sys.method("op");
        sys.add_aspect(op, "deny", aspects::abort_unless(|_s: &S| false));
        let result = Checker::new(sys).thread(vec![op, op]).run(S);
        assert_eq!(result.outcome, Outcome::Ok, "aborted ops terminate");
    }

    #[test]
    fn state_limit_reports() {
        let (sys, op) = exclusion_system();
        let result = Checker::new(sys)
            .thread(vec![op; 4])
            .thread(vec![op; 4])
            .max_states(5)
            .run(Excl::default());
        assert_eq!(result.outcome, Outcome::StateLimit);
    }

    #[test]
    fn initially_violated_invariant_is_reported() {
        let (sys, op) = exclusion_system();
        let result = Checker::new(sys)
            .thread(vec![op])
            .invariant(|s: &Excl| s.inside == 99)
            .run(Excl::default());
        assert!(matches!(result.outcome, Outcome::InvariantViolation(_)));
    }

    #[test]
    fn final_invariant_checks_quiescence() {
        let (sys, op) = exclusion_system();
        // Correct system: busy flag clear at every terminal state.
        let ok = Checker::new(sys)
            .thread(vec![op, op])
            .thread(vec![op])
            .final_invariant(|s: &Excl| !s.busy && s.inside == 0)
            .run(Excl::default());
        assert_eq!(ok.outcome, Outcome::Ok);

        // Impossible quiescence demand: caught with a trace.
        let (sys, op) = exclusion_system();
        let bad = Checker::new(sys)
            .thread(vec![op])
            .final_invariant(|s: &Excl| s.max_inside == 0)
            .run(Excl::default());
        match bad.outcome {
            Outcome::FinalInvariantViolation(trace) => assert!(!trace.is_empty()),
            other => panic!("expected final violation, got {other:?}"),
        }
    }

    #[test]
    fn dpor_preserves_verdicts_and_reduces_schedules() {
        let (sys, op) = exclusion_system();
        let base = || {
            Checker::new(sys.clone())
                .thread(vec![op, op])
                .thread(vec![op, op])
                .thread(vec![op])
                .final_invariant(|s: &Excl| !s.busy && s.inside == 0)
        };
        let full = base().run(Excl::default());
        let reduced = base().reduction(ReductionPolicy::Dpor).run(Excl::default());
        assert_eq!(full.outcome, Outcome::Ok);
        assert_eq!(reduced.outcome, Outcome::Ok);
        assert!(
            reduced.schedules < full.schedules,
            "dpor must explore strictly fewer schedules: {} vs {}",
            reduced.schedules,
            full.schedules
        );
    }

    #[test]
    fn dpor_still_finds_the_deadlock() {
        #[derive(Clone, PartialEq, Eq, Hash, Default)]
        struct S {
            open: bool,
        }
        let mut sys = ModelSystem::new();
        let gated = sys.method("gated");
        sys.add_aspect(gated, "gate", aspects::guard(|s: &S| s.open));
        let result = Checker::new(sys)
            .reduction(ReductionPolicy::Dpor)
            .thread(vec![gated])
            .thread(vec![gated])
            .run(S::default());
        match result.outcome {
            Outcome::Deadlock(trace) => assert!(!trace.is_empty()),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn declared_regions_enable_persistent_reduction() {
        // Two fully independent "nodes": disjoint counters, disjoint
        // methods, wired-empty wakes, disjoint declared regions. The
        // persistent-set layer should explore them compositionally.
        #[derive(Clone, PartialEq, Eq, Hash, Default)]
        struct S {
            a: usize,
            b: usize,
        }
        let mut sys = ModelSystem::new();
        let op_a = sys.method("op_a");
        let op_b = sys.method("op_b");
        sys.add_aspect(
            op_a,
            "bump",
            aspects::from_fns(
                |s: &mut S| {
                    s.a += 1;
                    ModelVerdict::Resume
                },
                |_| (),
                |_| (),
            ),
        );
        sys.add_aspect(
            op_b,
            "bump",
            aspects::from_fns(
                |s: &mut S| {
                    s.b += 1;
                    ModelVerdict::Resume
                },
                |_| (),
                |_| (),
            ),
        );
        sys.wire_wakes(op_a, vec![op_a]);
        sys.wire_wakes(op_b, vec![op_b]);
        sys.set_region(op_a, 0);
        sys.set_region(op_b, 1);
        let base = || {
            Checker::new(sys.clone())
                .thread(vec![op_a, op_a, op_a])
                .thread(vec![op_b, op_b, op_b])
                .final_invariant(|s: &S| s.a == 3 && s.b == 3)
        };
        let full = base().run(S::default());
        let reduced = base().reduction(ReductionPolicy::Dpor).run(S::default());
        assert_eq!(full.outcome, Outcome::Ok);
        assert_eq!(reduced.outcome, Outcome::Ok);
        assert!(
            reduced.schedules * 4 <= full.schedules,
            "independent nodes should reduce heavily: {} vs {}",
            reduced.schedules,
            full.schedules
        );
    }

    #[test]
    fn notify_one_explores_wakeup_choices() {
        // Two consumers wait; one producer supplies one item. Under
        // notify-one semantics exactly one consumer can ever proceed,
        // so the run deadlocks (the other consumer waits forever).
        #[derive(Clone, PartialEq, Eq, Hash, Default)]
        struct S {
            items: usize,
        }
        let mut sys = ModelSystem::new();
        let put = sys.method("put");
        let take = sys.method("take");
        sys.add_aspect(
            put,
            "sync",
            aspects::from_fns(
                |s: &mut S| {
                    s.items += 1;
                    crate::ModelVerdict::Resume
                },
                |_| (),
                |_| (),
            ),
        );
        // The consumer consumes *permanently*: postaction keeps the
        // item (unlike `reserve`, whose post hands the resource back).
        sys.add_aspect(
            take,
            "sync",
            aspects::from_fns(
                |s: &mut S| {
                    if s.items > 0 {
                        s.items -= 1;
                        crate::ModelVerdict::Resume
                    } else {
                        crate::ModelVerdict::Block
                    }
                },
                |_| (),
                |s: &mut S| s.items += 1,
            ),
        );
        let result = Checker::new(sys)
            .wake_one()
            .thread(vec![put])
            .thread(vec![take])
            .thread(vec![take])
            .run(S::default());
        // One consumer must starve in every interleaving: deadlock.
        assert!(matches!(result.outcome, Outcome::Deadlock(_)));
    }
}

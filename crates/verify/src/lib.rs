//! # Model checking aspect compositions
//!
//! The paper closes by asking whether an aspect-oriented architecture
//! "should further enable formal verification of system properties".
//! This crate answers with a working tool: an **exhaustive explorer**
//! over a faithful model of the Aspect Moderator protocol.
//!
//! You describe a composition — methods, each with an ordered chain of
//! [`ModelAspect`]s over an explicit shared state `S` — and a set of
//! thread scripts (sequences of method invocations). The checker then
//! explores **every interleaving** of the protocol's atomic steps
//! (chain evaluation, method body, post-activation + notification),
//! verifying:
//!
//! * a user **invariant** over `S` after every atomic step,
//! * absence of **deadlock** (some thread unfinished, none runnable),
//! * termination of every script.
//!
//! The protocol model matches `amf-core`'s moderator: preconditions of
//! one activation evaluate atomically under the method's coordination
//! cell (newest-first, the `Nested` policy), `Block` parks the thread on
//! the method's queue, post-activations run postactions (oldest-first)
//! and notify a wake set, and the rollback policy decides whether
//! earlier-resumed aspects are released when a later one blocks or
//! aborts.
//!
//! Since the moderator was sharded into per-method cells, the checker
//! also models the finer atomicity of that protocol and its failure
//! ablations ([`Checker::sharded`]): a blocked-after-releasing chain
//! unwinds as its own atomic step, sends the rollback notification
//! before parking ([`Checker::without_rollback_notify`] ablates it), and
//! parks-while-holding-its-cell ([`Checker::racy_park`] ablates that,
//! exhibiting the classic lost-wakeup deadlock the notify-while-locking
//! discipline prevents). See `tests/sharded.rs` for both ablations as
//! machine-checked counterexamples.
//!
//! Wake-order **fairness** is likewise a checked property
//! ([`Checker::check_fairness`]): with [`Checker::fifo`] the model
//! serves each cell's queue strictly first-parked-first-served
//! (`FairnessPolicy::Fifo`), and the checker proves that no activation
//! ever resumes past a still-queued earlier waiter — while the barging
//! model and two seeded defects ([`Checker::racy_handoff`],
//! [`Checker::overtake_on_timeout`]) are each caught with a concrete
//! overtake trace (`tests/fairness.rs`). Timed waits are modeled by
//! [`Checker::timed_thread`].
//!
//! **Fault containment** is the newest checked dimension: an aspect
//! precondition may *panic* ([`ModelVerdict::Panic`]), and the faithful
//! model compensates exactly like a mid-chain abort — the
//! earlier-resumed prefix of the chain is released (as its own
//! observable step under [`Checker::sharded`], with the rollback
//! notification) and the op completes failed. The checker proves the
//! containment invariant: no interleaving with a panicking transition
//! leaks a reservation or strands a waiter, and under
//! [`Checker::fifo`] no-overtake survives the panic. The
//! [`Checker::leak_on_panic`] ablation — catch the unwind but skip the
//! prefix rollback — is caught with a concrete stranded-waiter
//! deadlock trace (`tests/containment.rs`).
//!
//! # Exploration strategies
//!
//! [`Checker::run`] covers the schedule space per the configured
//! [`Strategy`]:
//!
//! * [`Strategy::Exhaustive`] (default) — a havoc-style DFS over
//!   explicit `(thread, branch)` action schedules: live/blocked action
//!   sets ([`ActionResult`]), state-hash pruning, iterative-deepening
//!   replay of the depth bound, deadlock detection (every unfinished
//!   action blocked ⇒ the schedule is reported), and
//!   minimal-counterexample output — failing schedules are shrunk by
//!   greedy prefix/step elision before the trace is re-derived by
//!   replay. Every schedule of a bounded scenario is checked and the
//!   explored-schedule count ([`Exploration::schedules`]) is stable
//!   across runs.
//! * [`Strategy::Randomized`] — seeded random walks for scenarios too
//!   large to enumerate; failures shrink the same way.
//!
//! Exhaustive exploration optionally applies **partial-order
//! reduction** ([`Checker::reduction`], default
//! [`ReductionPolicy::None`]): under [`ReductionPolicy::Dpor`] the DFS
//! carries sleep sets (a step already explored from a state is skipped
//! by sibling branches while every step taken since provably commutes
//! with it) and persistent sets (threads whose declared dependency
//! footprints — coordination cell, queue, lane word, shared-state
//! region — are disjoint from everyone else's remaining work are
//! deferred). Commutation is proved per state by a replay-equivalence
//! self-check, never assumed from the declarations, so the verdict and
//! its counterexamples are identical under both policies — only
//! [`Exploration::schedules`] (and wall-clock time) shrinks. See
//! `DESIGN.md` ("Schedule reduction") for the footprint table and the
//! sleep-set invariant.
//!
//! # Seed & environment knobs
//!
//! Every randomized battery in the workspace derives its determinism
//! from one seed, read by [`seed_from_env`]. The complete list:
//!
//! | Variable | Consumer | Default |
//! |---|---|---|
//! | `AMF_CHAOS_SEED` | `tests/chaos.rs` panic-injection storms and the bench harness `chaos` section (via `amf_aspects::fault::chaos_seed`) | `0xC4A0_5BA7` (tests) |
//! | `AMF_FAIRNESS_SEED` | `tests/properties_fairness.rs` randomized fairness battery | `0x5eed_fa18` |
//! | `AMF_FAST_PATH_SEED` | `tests/fast_path.rs` mixed fast/slow admission storm | `0xFA57_1A4E` |
//!
//! CI pins all three. [`Strategy::Randomized`] and `amf-sim` take their
//! seeds as explicit values, never from the environment — exhaustive
//! exploration needs no seed at all.
//!
//! # Example: proving the composition anomaly
//!
//! ```
//! use amf_verify::{aspects, Checker, ModelSystem, Outcome};
//!
//! // Shared state: a capacity-1 pool flag and a gate bit.
//! #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
//! struct S { pool_busy: bool, gate_open: bool }
//!
//! let mut sys = ModelSystem::<S>::new();
//! let a = sys.method("a");
//! let b = sys.method("b");
//! // `a`: gate (inner) + pool (outer; evaluated first under nesting).
//! sys.add_aspect(a, "gate", aspects::guard(|s: &S| s.gate_open));
//! sys.add_aspect(a, "pool", aspects::reserve(
//!     |s: &S| !s.pool_busy,
//!     |s: &mut S| s.pool_busy = true,
//!     |s: &mut S| s.pool_busy = false,
//! ));
//! sys.add_aspect(b, "pool", aspects::reserve(
//!     |s: &S| !s.pool_busy,
//!     |s: &mut S| s.pool_busy = true,
//!     |s: &mut S| s.pool_busy = false,
//! ));
//! // `b`'s body opens the gate, so a well-behaved system always finishes.
//! sys.set_body(b, |s: &mut S| s.gate_open = true);
//!
//! // With rollback (the framework default): every interleaving completes.
//! let ok = Checker::new(sys.clone().rollback(true))
//!     .thread(vec![a])
//!     .thread(vec![b])
//!     .run(S::default());
//! assert_eq!(ok.outcome, Outcome::Ok);
//!
//! // Without rollback (the paper's literal semantics): a deadlock exists.
//! let bad = Checker::new(sys.rollback(false))
//!     .thread(vec![a])
//!     .thread(vec![b])
//!     .run(S::default());
//! match bad.outcome {
//!     Outcome::Deadlock(trace) => assert!(!trace.is_empty()),
//!     other => panic!("expected deadlock, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod aspects;
mod checker;
mod model;

pub use checker::{ActionResult, Checker, Exploration, Outcome, ReductionPolicy, Step, Strategy};
pub use model::{MethodIx, ModelAspect, ModelSystem, ModelVerdict, WakeSet};

/// Reads a deterministic seed from the environment variable `var`,
/// falling back to `default` when the variable is unset or does not
/// parse as a `u64`. The single entry point for the workspace's seed
/// plumbing — see the crate docs ("Seed & environment knobs") for the
/// complete list of variables and their consumers.
pub fn seed_from_env(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

//! Ready-made model aspects: the pure-function counterparts of the
//! `amf-aspects` library, over an explicit shared state.

use std::sync::Arc;

use crate::model::{ModelAspect, ModelVerdict};

struct FnModelAspect<Pre, Post, Release> {
    pre: Pre,
    post: Post,
    release: Release,
}

impl<S, Pre, Post, Release> ModelAspect<S> for FnModelAspect<Pre, Post, Release>
where
    Pre: Fn(&mut S) -> ModelVerdict + Send + Sync,
    Post: Fn(&mut S) + Send + Sync,
    Release: Fn(&mut S) + Send + Sync,
{
    fn pre(&self, s: &mut S) -> ModelVerdict {
        (self.pre)(s)
    }

    fn post(&self, s: &mut S) {
        (self.post)(s)
    }

    fn release(&self, s: &mut S) {
        (self.release)(s)
    }
}

/// Builds a model aspect from three closures.
pub fn from_fns<S>(
    pre: impl Fn(&mut S) -> ModelVerdict + Send + Sync + 'static,
    post: impl Fn(&mut S) + Send + Sync + 'static,
    release: impl Fn(&mut S) + Send + Sync + 'static,
) -> Arc<dyn ModelAspect<S>> {
    Arc::new(FnModelAspect { pre, post, release })
}

/// An aspect that always resumes and does nothing.
pub fn always_resume<S: 'static>() -> Arc<dyn ModelAspect<S>> {
    from_fns(|_| ModelVerdict::Resume, |_| (), |_| ())
}

/// A read-only guard: resume when `cond` holds, block otherwise. No
/// reservation, so nothing to release.
pub fn guard<S: 'static>(
    cond: impl Fn(&S) -> bool + Send + Sync + 'static,
) -> Arc<dyn ModelAspect<S>> {
    from_fns(
        move |s: &mut S| {
            if cond(s) {
                ModelVerdict::Resume
            } else {
                ModelVerdict::Block
            }
        },
        |_| (),
        |_| (),
    )
}

/// A reserving aspect in the paper's style: when `can` holds, `take`
/// the reservation and resume; otherwise block. `undo` releases the
/// reservation — called at postaction *and* on rollback (matching the
/// usual "post frees what pre took" pattern, e.g. a mutual-exclusion
/// flag).
pub fn reserve<S: 'static>(
    can: impl Fn(&S) -> bool + Send + Sync + 'static,
    take: impl Fn(&mut S) + Send + Sync + 'static,
    undo: impl Fn(&mut S) + Send + Sync + 'static,
) -> Arc<dyn ModelAspect<S>> {
    let undo = Arc::new(undo);
    let undo2 = Arc::clone(&undo);
    from_fns(
        move |s: &mut S| {
            if can(s) {
                take(s);
                ModelVerdict::Resume
            } else {
                ModelVerdict::Block
            }
        },
        move |s: &mut S| undo(s),
        move |s: &mut S| undo2(s),
    )
}

/// A security-style aspect: resume when `cond` holds, abort otherwise.
pub fn abort_unless<S: 'static>(
    cond: impl Fn(&S) -> bool + Send + Sync + 'static,
) -> Arc<dyn ModelAspect<S>> {
    from_fns(
        move |s: &mut S| {
            if cond(s) {
                ModelVerdict::Resume
            } else {
                ModelVerdict::Abort
            }
        },
        |_| (),
        |_| (),
    )
}

/// A one-shot faulty aspect: the precondition *panics* while the
/// `armed` flag in `S` is set, clearing it as it fires — so exactly one
/// activation panics and every other evaluation resumes. The fuse
/// lives in the shared state (not in the aspect) so the checker can
/// hash and memoize worlds; it models a deterministic fault injection
/// like `amf_aspects::fault::PanicInjectionAspect` with a one-panic
/// budget.
pub fn panic_fuse<S: 'static>(
    armed: impl Fn(&mut S) -> &mut bool + Send + Sync + 'static,
) -> Arc<dyn ModelAspect<S>> {
    from_fns(
        move |s: &mut S| {
            let fuse = armed(s);
            if *fuse {
                *fuse = false;
                ModelVerdict::Panic
            } else {
                ModelVerdict::Resume
            }
        },
        |_| (),
        |_| (),
    )
}

/// A counting gate (the model twin of
/// `amf_aspects::sync::ConcurrencyLimitAspect`): at most `limit`
/// activations hold the gate; the counter lives in `S` behind the
/// `running` lens.
pub fn counting_gate<S: 'static>(
    limit: usize,
    running: impl Fn(&mut S) -> &mut usize + Send + Sync + Clone + 'static,
) -> Arc<dyn ModelAspect<S>> {
    let r2 = running.clone();
    let r3 = running.clone();
    from_fns(
        move |s: &mut S| {
            if *running(s) < limit {
                *running(s) += 1;
                ModelVerdict::Resume
            } else {
                ModelVerdict::Block
            }
        },
        move |s: &mut S| *r2(s) -= 1,
        move |s: &mut S| *r3(s) -= 1,
    )
}

/// The bounded-buffer producer aspect over counter fields selected by
/// accessors (the model twin of `amf_aspects::sync::ProducerSync`).
///
/// The caller supplies lenses onto `S` for `reserved`, `produced` and
/// the `producing` flag, plus the capacity.
pub fn buffer_producer<S: 'static>(
    capacity: usize,
    reserved: impl Fn(&mut S) -> &mut usize + Send + Sync + Clone + 'static,
    produced: impl Fn(&mut S) -> &mut usize + Send + Sync + Clone + 'static,
    producing: impl Fn(&mut S) -> &mut bool + Send + Sync + Clone + 'static,
) -> Arc<dyn ModelAspect<S>> {
    let (r2, p2, f2) = (reserved.clone(), produced.clone(), producing.clone());
    let (r3, f3) = (reserved.clone(), producing.clone());
    from_fns(
        move |s: &mut S| {
            if *reserved(s) < capacity && !*producing(s) {
                *producing(s) = true;
                *reserved(s) += 1;
                ModelVerdict::Resume
            } else {
                ModelVerdict::Block
            }
        },
        move |s: &mut S| {
            *f2(s) = false;
            *p2(s) += 1;
            let _ = &r2;
        },
        move |s: &mut S| {
            *f3(s) = false;
            *r3(s) -= 1;
        },
    )
}

/// The bounded-buffer consumer aspect (twin of `ConsumerSync`).
pub fn buffer_consumer<S: 'static>(
    reserved: impl Fn(&mut S) -> &mut usize + Send + Sync + Clone + 'static,
    produced: impl Fn(&mut S) -> &mut usize + Send + Sync + Clone + 'static,
    consuming: impl Fn(&mut S) -> &mut bool + Send + Sync + Clone + 'static,
) -> Arc<dyn ModelAspect<S>> {
    let (r2, f2) = (reserved.clone(), consuming.clone());
    let (p3, f3) = (produced.clone(), consuming.clone());
    from_fns(
        move |s: &mut S| {
            if *produced(s) > 0 && !*consuming(s) {
                *consuming(s) = true;
                *produced(s) -= 1;
                ModelVerdict::Resume
            } else {
                ModelVerdict::Block
            }
        },
        move |s: &mut S| {
            *f2(s) = false;
            *r2(s) -= 1;
        },
        move |s: &mut S| {
            *f3(s) = false;
            *p3(s) += 1;
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct S {
        busy: bool,
        ok: bool,
    }

    #[test]
    fn guard_blocks_and_resumes() {
        let a = guard(|s: &S| s.ok);
        let mut s = S::default();
        assert_eq!(a.pre(&mut s), ModelVerdict::Block);
        s.ok = true;
        assert_eq!(a.pre(&mut s), ModelVerdict::Resume);
    }

    #[test]
    fn reserve_takes_and_undoes() {
        let a = reserve(
            |s: &S| !s.busy,
            |s: &mut S| s.busy = true,
            |s: &mut S| s.busy = false,
        );
        let mut s = S::default();
        assert_eq!(a.pre(&mut s), ModelVerdict::Resume);
        assert!(s.busy);
        assert_eq!(a.pre(&mut s), ModelVerdict::Block);
        a.release(&mut s);
        assert!(!s.busy);
        a.pre(&mut s);
        a.post(&mut s);
        assert!(!s.busy);
    }

    #[test]
    fn abort_unless_aborts() {
        let a = abort_unless(|s: &S| s.ok);
        let mut s = S::default();
        assert_eq!(a.pre(&mut s), ModelVerdict::Abort);
        s.ok = true;
        assert_eq!(a.pre(&mut s), ModelVerdict::Resume);
    }

    #[test]
    fn panic_fuse_fires_once() {
        #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
        struct F {
            armed: bool,
        }
        let a = panic_fuse(|s: &mut F| &mut s.armed);
        let mut s = F { armed: true };
        assert_eq!(a.pre(&mut s), ModelVerdict::Panic);
        assert!(!s.armed, "firing consumes the fuse");
        assert_eq!(a.pre(&mut s), ModelVerdict::Resume);
    }

    #[test]
    fn counting_gate_bounds() {
        #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
        struct G {
            running: usize,
        }
        let a = counting_gate(2, |s: &mut G| &mut s.running);
        let mut s = G::default();
        assert_eq!(a.pre(&mut s), ModelVerdict::Resume);
        assert_eq!(a.pre(&mut s), ModelVerdict::Resume);
        assert_eq!(a.pre(&mut s), ModelVerdict::Block);
        a.post(&mut s);
        assert_eq!(a.pre(&mut s), ModelVerdict::Resume);
        a.release(&mut s);
        assert_eq!(s.running, 1);
    }

    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Buf {
        reserved: usize,
        produced: usize,
        producing: bool,
        consuming: bool,
    }

    #[test]
    fn buffer_pair_mirrors_real_aspects() {
        let p = buffer_producer(
            1,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        );
        let c = buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        );
        let mut s = Buf::default();
        assert_eq!(c.pre(&mut s), ModelVerdict::Block);
        assert_eq!(p.pre(&mut s), ModelVerdict::Resume);
        assert_eq!(p.pre(&mut s), ModelVerdict::Block); // serialized + full
        p.post(&mut s);
        assert_eq!(s.produced, 1);
        assert_eq!(c.pre(&mut s), ModelVerdict::Resume);
        c.post(&mut s);
        assert_eq!(s, Buf::default());
    }
}

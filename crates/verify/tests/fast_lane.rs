//! Two-phase admission under the model checker: the lock-free fast
//! lane as a *declaration* whose discipline is proved by enumeration.
//!
//! The modeled lane admits a thread in one CAS step — no chain
//! evaluation, no queue interaction — and releases it in one CAS step —
//! no postactions, no notifications. The checker does not re-verify the
//! purity contract (that is the implementation's capability check); it
//! proves the two properties the lane's *protocol* must uphold across
//! every open/close transition:
//!
//! * **no-overtake** — the lane is closed whenever a waiter is queued,
//!   so a fast admit never passes a ticketed thread
//!   ([`Checker::check_fairness`] over every schedule);
//! * **no-lost-wake** — a fast release notifies nobody, which is sound
//!   only because the lane opens solely for waiter-free, empty-wired
//!   methods (deadlock detection over every schedule).
//!
//! Each property has a matching ablation that drops exactly one
//! conjunct of the lane predicate and is caught exhaustively with a
//! shrunk trace: [`Checker::leaky_fast_path`] (lane open while the
//! queue is non-empty) and [`Checker::stale_eligibility`] (a contained
//! panic fails to revoke the eligibility).

use amf_verify::{aspects, Checker, MethodIx, ModelSystem, ModelVerdict, Outcome, Strategy};

/// A token gate: `open` consumes a token or parks, `tick` mints one
/// and notifies `open`'s queue. `open` is empty-wired (its completion
/// wakes nobody), which is precisely the lane-eligibility shape.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Tokens {
    avail: usize,
}

fn gated() -> (ModelSystem<Tokens>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let open = sys.method("open");
    let tick = sys.method("tick");
    sys.add_aspect(
        open,
        "gate",
        aspects::from_fns(
            |s: &mut Tokens| {
                if s.avail > 0 {
                    s.avail -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |s: &mut Tokens| s.avail += 1,
        ),
    );
    sys.add_aspect(
        tick,
        "mint",
        aspects::from_fns(
            |s: &mut Tokens| {
                s.avail += 1;
                ModelVerdict::Resume
            },
            |_| (),
            |_| (),
        ),
    );
    sys.wire_wakes(tick, vec![open]);
    sys.wire_wakes(open, vec![]);
    (sys, open, tick)
}

/// No-overtake across lane transitions, proved exhaustively: with the
/// fast lane declared on `open`, every schedule — fast admits, slow
/// admits, parks, timeouts, and every interleaving of lane closes and
/// reopens around them — preserves wake order. The checker offers the
/// fast successor *alongside* the locked path wherever the lane is
/// open, so the enumeration also covers the CAS-contention fallback.
#[test]
fn fast_lane_preserves_fifo_order_exhaustively() {
    let (sys, open, tick) = gated();
    let explored = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .fast_lane(open)
        .timed_thread(vec![open])
        .timed_thread(vec![tick, open])
        .run(Tokens::default());
    assert_eq!(explored.outcome, Outcome::Ok);
    assert!(explored.terminals >= 1, "{explored:?}");

    // Same property under notify-one wakeups: the lane discipline is
    // wake-mode independent, like the implementation's two `WakeMode`s.
    let (sys, open, tick) = gated();
    let explored = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .wake_one()
        .fast_lane(open)
        .timed_thread(vec![open])
        .timed_thread(vec![tick, open])
        .run(Tokens::default());
    assert_eq!(explored.outcome, Outcome::Ok);
}

/// No-lost-wake, proved exhaustively: a fast-lane method (`log`, no
/// aspects, empty-wired) interleaves with a capacity-1 buffer protocol
/// whose liveness depends on every completion notification arriving.
/// The fast release sends none — and no schedule strands a waiter,
/// because the lane only ever opens for a method nobody can be parked
/// on. The quiescence invariant additionally proves the silent release
/// leaked nothing.
#[test]
fn fast_lane_releases_lose_no_wakes() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Buf {
        reserved: usize,
        produced: usize,
        producing: bool,
        consuming: bool,
    }
    let mut sys = ModelSystem::new();
    let log = sys.method("log");
    let put = sys.method("put");
    let take = sys.method("take");
    sys.add_aspect(
        put,
        "sync",
        aspects::buffer_producer(
            1,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        ),
    );
    sys.add_aspect(
        take,
        "sync",
        aspects::buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        ),
    );
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    sys.wire_wakes(log, vec![]);
    let explored = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fast_lane(log)
        .thread(vec![log, put, put])
        .thread(vec![take, log, take])
        .final_invariant(|s: &Buf| s.reserved == 0 && s.produced == 0)
        .run(Buf::default());
    assert_eq!(explored.outcome, Outcome::Ok);
}

/// The leaky-lane ablation at its 2-thread minimum: thread 0 parks on
/// `open` (no tokens), and because the lane failed to close before the
/// enqueue, thread 1 CAS-admits straight past the queued waiter. The
/// shrunk trace is exactly the park followed by the overtaking
/// fast admit. (Both threads are timed so no schedule dead-ends in a
/// tokenless deadlock and the one bad outcome is the overtake itself.)
#[test]
fn leaky_fast_path_overtake_caught_exhaustively() {
    let (sys, open, _tick) = gated();
    let ablated = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .fast_lane(open)
        .leaky_fast_path()
        .timed_thread(vec![open])
        .timed_thread(vec![open])
        .run(Tokens::default());
    match ablated.outcome {
        Outcome::FairnessViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            let overtake = rendered.last().unwrap();
            assert!(overtake.contains("fast-admit(open)"), "{rendered:?}");
            let parked = rendered
                .iter()
                .find(|s| s.contains("chain(open) -> blocked"))
                .unwrap_or_else(|| panic!("{rendered:?}"));
            let tid = |s: &str| s.split(':').next().unwrap().to_string();
            assert_ne!(tid(parked), tid(overtake), "{rendered:?}");
            // Minimality: the shrunk schedule is the park and the
            // overtaking admit, nothing else.
            assert!(rendered.len() <= 3, "{rendered:?}");
        }
        other => panic!("expected fast-lane overtake, got {other:?}"),
    }
}

/// The stale-eligibility ablation: `audit`'s aspect panics once (the
/// contained fault that falsifies the purity contract) and from then
/// on *counts* every chain evaluation. Faithfully, the panic closes
/// the lane for good, so every later invocation is audited before its
/// body runs; under the ablation a later caller CAS-admits on the
/// stale contract and the body executes unaudited — caught by the
/// state invariant with the panic visible in the shrunk trace. The
/// scenario is a single thread of sequential calls: the defect is a
/// *sequencing* defect (an admit after the revocation), and a second
/// concurrent caller would only add benign straddles — invocations
/// fast-admitted before the fault whose bodies run after it — that no
/// shared-state invariant can tell apart from the bug.
#[test]
fn stale_eligibility_admit_after_panic_caught_exhaustively() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Audit {
        panicked: bool,
        audited_after: usize,
        entered_after: usize,
    }
    let build = || {
        let mut sys = ModelSystem::new();
        let audit = sys.method("audit");
        sys.add_aspect(
            audit,
            "audit",
            aspects::from_fns(
                |s: &mut Audit| {
                    if s.panicked {
                        s.audited_after += 1;
                        ModelVerdict::Resume
                    } else {
                        s.panicked = true;
                        ModelVerdict::Panic
                    }
                },
                |_| (),
                |_| (),
            ),
        );
        sys.set_body(audit, |s: &mut Audit| {
            if s.panicked {
                s.entered_after += 1;
            }
        });
        sys.wire_wakes(audit, vec![]);
        (sys, audit)
    };
    let post_panic_audited = |s: &Audit| !s.panicked || s.entered_after <= s.audited_after;

    let (sys, audit) = build();
    let ablated = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fast_lane(audit)
        .stale_eligibility()
        .invariant(post_panic_audited)
        .thread(vec![audit, audit])
        .run(Audit::default());
    match ablated.outcome {
        Outcome::InvariantViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            let panicked = rendered
                .iter()
                .position(|s| s.contains("chain(audit) -> panicked"))
                .unwrap_or_else(|| panic!("{rendered:?}"));
            let admitted = rendered
                .iter()
                .position(|s| s.contains("fast-admit(audit)"))
                .unwrap_or_else(|| panic!("{rendered:?}"));
            assert!(panicked < admitted, "{rendered:?}");
            assert!(
                rendered.last().unwrap().contains("body(audit)"),
                "{rendered:?}"
            );
        }
        other => panic!("expected unaudited fast admit, got {other:?}"),
    }

    // Faithfully, the panic revokes the lane: every schedule keeps the
    // body behind a fresh chain evaluation once the fault is on record.
    let (sys, audit) = build();
    let faithful = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fast_lane(audit)
        .invariant(post_panic_audited)
        .thread(vec![audit, audit])
        .run(Audit::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

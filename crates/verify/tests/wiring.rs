//! Verifying wake-graph wiring: the model checker catches lost-wakeup
//! bugs that hand-wired notification graphs (the paper's Figure 11
//! style) can introduce.

use amf_verify::{aspects, Checker, ModelSystem, Outcome};

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Buf {
    reserved: usize,
    produced: usize,
    producing: bool,
    consuming: bool,
}

fn buffer(
    sys: &mut ModelSystem<Buf>,
    capacity: usize,
) -> (amf_verify::MethodIx, amf_verify::MethodIx) {
    let put = sys.method("put");
    let take = sys.method("take");
    sys.add_aspect(
        put,
        "sync",
        aspects::buffer_producer(
            capacity,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        ),
    );
    sys.add_aspect(
        take,
        "sync",
        aspects::buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        ),
    );
    (put, take)
}

/// The paper's wiring (put wakes take's queue and vice versa) is
/// verified correct for every interleaving.
#[test]
fn paper_wiring_is_live() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 1);
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    let result = Checker::new(sys)
        .thread(vec![put, put, put])
        .thread(vec![take, take, take])
        .run(Buf::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// Miswiring (put notifies only its own queue) loses the wakeup a
/// blocked consumer needs: the checker exhibits the deadlock.
#[test]
fn miswired_wakes_lose_wakeups() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 1);
    sys.wire_wakes(put, vec![put]); // BUG: consumer never notified
    sys.wire_wakes(take, vec![put]);
    let result = Checker::new(sys)
        .thread(vec![put])
        .thread(vec![take])
        .run(Buf::default());
    match result.outcome {
        Outcome::Deadlock(trace) => {
            // The consumer blocked and the producer completed without
            // waking it.
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            assert!(
                rendered
                    .iter()
                    .any(|s| s.contains("chain(take) -> blocked")),
                "{rendered:?}"
            );
            assert!(
                rendered.iter().any(|s| s.contains("post(put)")),
                "{rendered:?}"
            );
        }
        other => panic!("expected deadlock from lost wakeup, got {other:?}"),
    }
}

/// Wiring in only one direction deadlocks the other side: producers
/// blocked on a full buffer never learn of completions.
#[test]
fn one_directional_wiring_starves_producers() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 1);
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![take]); // BUG: producers never notified
    let result = Checker::new(sys)
        .thread(vec![put, put])
        .thread(vec![take, take])
        .run(Buf::default());
    assert!(matches!(result.outcome, Outcome::Deadlock(_)));
}

/// Regression (found by a stalled E2 run): with *two* callers per
/// method, a consumer can block on the `consuming` active flag while a
/// peer consumer is mid-activation. The peer's postaction clears the
/// flag, but `take`'s wiring names only `put` — so once every producer
/// has finished, nothing would ever wake the parked consumer. The
/// moderator's unconditional self-wake (a post-activation always
/// signals its own method's queue, regardless of wiring) is what keeps
/// this live; `paper_wiring_is_live` cannot see it because one thread
/// per method never contends on an active flag.
#[test]
fn paper_wiring_is_live_with_contending_peers() {
    // Capacity 2 lets both producers finish before either consumer
    // runs; capacity 1 would interleave put/take posts strictly, and a
    // trailing producer post would always deliver the wakeup anyway.
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 2);
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    let result = Checker::new(sys)
        .thread(vec![put])
        .thread(vec![put])
        .thread(vec![take])
        .thread(vec![take])
        .run(Buf::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// The same contending-peers shape stays live in the sharded model,
/// where chain evaluation and rollback interleave at finer grain.
#[test]
fn sharded_paper_wiring_is_live_with_contending_peers() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 2);
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    let result = Checker::new(sys)
        .sharded()
        .thread(vec![put])
        .thread(vec![put])
        .thread(vec![take])
        .thread(vec![take])
        .run(Buf::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// Broadcast (the moderator's default) is immune to wiring mistakes —
/// the safety/performance trade measured in experiment E4/E6.
#[test]
fn broadcast_wakes_are_always_live() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 1);
    // No wiring calls: WakeSet::All.
    let result = Checker::new(sys)
        .thread(vec![put, put])
        .thread(vec![take, take])
        .run(Buf::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

//! The exhaustive explorer at minimal bounds: every ablation the
//! randomized batteries catch is re-caught here *seed-free* — the DFS
//! enumerates every schedule of a deliberately tiny scenario (two
//! threads where the defect allows it), so the counterexample is found
//! by enumeration, not by luck, and the explored-schedule count is a
//! stable, reportable number.
//!
//! Bounds per ablation:
//!
//! * `racy_park`, `leak_on_panic`, `seed_deadlock` — 2 threads;
//! * `racy_handoff` — 2 threads (the overtaking newcomer shares a
//!   thread with the producer);
//! * `overtake_on_timeout` — 2 threads (the canceller returns as the
//!   overtaking newcomer);
//! * `split_batch_overtake` — 3 threads, provably its minimum: the
//!   defect is two *unordered* permits handed to the front two parked
//!   waiters, so it needs two parked takers plus one departing
//!   refiller.

use amf_verify::{aspects, Checker, MethodIx, ModelSystem, ModelVerdict, Outcome, Step, Strategy};

/// The canonical bounded scenario: a capacity-1 buffer, two producers'
/// worth of puts against the matching takes, 2 threads × 2 actions.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Buf {
    reserved: usize,
    produced: usize,
    producing: bool,
    consuming: bool,
}

fn buffer_2x2() -> (ModelSystem<Buf>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let put = sys.method("put");
    let take = sys.method("take");
    sys.add_aspect(
        put,
        "sync",
        aspects::buffer_producer(
            1,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        ),
    );
    sys.add_aspect(
        take,
        "sync",
        aspects::buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        ),
    );
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    (sys, put, take)
}

/// Exhaustive mode enumerates the whole schedule space of the 2×2
/// buffer: the run is `Ok`, and the explored-schedule count is a
/// deterministic property of the scenario — two independent runs
/// report the identical number.
#[test]
fn exhaustive_schedule_count_is_stable_on_the_2x2_buffer() {
    let explore = || {
        let (sys, put, take) = buffer_2x2();
        Checker::new(sys)
            .strategy(Strategy::Exhaustive)
            .thread(vec![put, put])
            .thread(vec![take, take])
            .final_invariant(|s: &Buf| s.reserved == 0 && s.produced == 0)
            .run(Buf::default())
    };
    let a = explore();
    let b = explore();
    assert_eq!(a.outcome, Outcome::Ok);
    assert!(a.terminals >= 1, "{a:?}");
    assert!(a.schedules >= a.terminals, "{a:?}");
    assert_eq!(a.schedules, b.schedules, "enumeration must be stable");
    assert_eq!(a.states, b.states);
    assert_eq!(a.terminals, b.terminals);
}

/// The same scenario under `Randomized` walks is seeded and
/// reproducible, but samples rather than enumerates: same seed, same
/// report.
#[test]
fn randomized_walks_reproduce_per_seed() {
    let walk = |seed| {
        let (sys, put, take) = buffer_2x2();
        Checker::new(sys)
            .strategy(Strategy::Randomized { seed })
            .samples(50)
            .thread(vec![put, put])
            .thread(vec![take, take])
            .run(Buf::default())
    };
    let a = walk(13);
    let b = walk(13);
    assert_eq!(a.outcome, Outcome::Ok);
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.states, b.states);
}

/// `racy_park` at its 2-thread minimum (the bound the sharded battery
/// already uses): one put against one take, notification landing in
/// the decide-to-park window, deadlock found by pure enumeration.
#[test]
fn racy_park_caught_exhaustively_at_two_threads() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct B {
        reserved: usize,
        produced: usize,
        producing: bool,
        consuming: bool,
    }
    let build = || {
        let mut sys = ModelSystem::new();
        let put = sys.method("put");
        let take = sys.method("take");
        sys.add_aspect(
            put,
            "sync",
            aspects::buffer_producer(
                1,
                |s: &mut B| &mut s.reserved,
                |s: &mut B| &mut s.produced,
                |s: &mut B| &mut s.producing,
            ),
        );
        sys.add_aspect(
            take,
            "sync",
            aspects::buffer_consumer(
                |s: &mut B| &mut s.reserved,
                |s: &mut B| &mut s.produced,
                |s: &mut B| &mut s.consuming,
            ),
        );
        sys.wire_wakes(put, vec![take]);
        sys.wire_wakes(take, vec![put]);
        (sys, put, take)
    };
    let (sys, put, take) = build();
    let ablated = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .sharded()
        .racy_park()
        .thread(vec![put])
        .thread(vec![take])
        .run(B::default());
    match ablated.outcome {
        Outcome::Deadlock(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            assert!(
                rendered.iter().any(|s| s.contains("park(take)")),
                "{rendered:?}"
            );
            assert!(
                rendered.iter().any(|s| s.contains("post(put)")),
                "{rendered:?}"
            );
        }
        other => panic!("expected missed-notification deadlock, got {other:?}"),
    }

    let (sys, put, take) = build();
    let faithful = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .sharded()
        .thread(vec![put])
        .thread(vec![take])
        .run(B::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

/// A token gate (from the fairness battery): `open` consumes a token
/// or blocks, `tick` mints one and notifies `open`'s queue.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Tokens {
    avail: usize,
}

fn gated() -> (ModelSystem<Tokens>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let open = sys.method("open");
    let tick = sys.method("tick");
    sys.add_aspect(
        open,
        "gate",
        aspects::from_fns(
            |s: &mut Tokens| {
                if s.avail > 0 {
                    s.avail -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |s: &mut Tokens| s.avail += 1,
        ),
    );
    sys.add_aspect(
        tick,
        "mint",
        aspects::from_fns(
            |s: &mut Tokens| {
                s.avail += 1;
                ModelVerdict::Resume
            },
            |_| (),
            |_| (),
        ),
    );
    sys.wire_wakes(tick, vec![open]);
    sys.wire_wakes(open, vec![]);
    (sys, open, tick)
}

/// `racy_handoff` at its 2-thread minimum: thread 0 parks on `open`,
/// thread 1 mints a token and then — as the overtaking newcomer —
/// `open`s past the parked waiter without consulting the queue. Both
/// threads are timed so no schedule dead-ends in a deadlock and the
/// one bad outcome is the overtake itself. The faithful fifo model on
/// the same 2-thread scenario is fair everywhere.
#[test]
fn racy_handoff_caught_exhaustively_at_two_threads() {
    let (sys, open, tick) = gated();
    let ablated = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .racy_handoff()
        .timed_thread(vec![open])
        .timed_thread(vec![tick, open])
        .run(Tokens::default());
    match ablated.outcome {
        Outcome::FairnessViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            let parked = rendered
                .iter()
                .find(|s| s.contains("chain(open) -> blocked"))
                .unwrap_or_else(|| panic!("{rendered:?}"));
            let resumed = rendered.last().unwrap();
            assert!(resumed.contains("chain(open) -> resumed"), "{rendered:?}");
            let tid = |s: &str| s.split(':').next().unwrap().to_string();
            assert_ne!(tid(parked), tid(resumed), "{rendered:?}");
        }
        other => panic!("expected fairness violation, got {other:?}"),
    }

    let (sys, open, tick) = gated();
    let faithful = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .timed_thread(vec![open])
        .timed_thread(vec![tick, open])
        .run(Tokens::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

/// `overtake_on_timeout` at its 2-thread minimum: thread 0's timed
/// `open` parks first and cancels — under the ablation the
/// cancellation wipes the seniority of thread 1 parked behind it —
/// then thread 0 mints a token and returns as the newcomer that
/// overtakes the still-queued thread 1. The faithful model (a
/// cancelled ticket removes only itself) is fair on the same scenario.
#[test]
fn overtake_on_timeout_caught_exhaustively_at_two_threads() {
    let (sys, open, tick) = gated();
    let ablated = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .overtake_on_timeout()
        .timed_thread(vec![open, tick, open])
        .timed_thread(vec![open])
        .run(Tokens::default());
    match ablated.outcome {
        Outcome::FairnessViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            assert!(
                rendered.iter().any(|s| s.contains("timeout(open)")),
                "{rendered:?}"
            );
            assert!(
                rendered.last().unwrap().contains("chain(open) -> resumed"),
                "{rendered:?}"
            );
        }
        other => panic!("expected fairness violation, got {other:?}"),
    }

    let (sys, open, tick) = gated();
    let faithful = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .timed_thread(vec![open, tick, open])
        .timed_thread(vec![open])
        .run(Tokens::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

/// `leak_on_panic` at 2 threads × 2 methods: `op`'s chain is
/// `[bomb, pool]` (nested order reserves the pool before the bomb
/// fires), `use` guards on the same pool. Leaking the reservation
/// strands the `use` caller — found exhaustively, with the causal
/// order (panic before the stranded block) in the trace.
#[test]
fn leak_on_panic_caught_exhaustively_at_two_threads_two_methods() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Pool {
        busy: bool,
        fuse: bool,
    }
    let build = || {
        let mut sys = ModelSystem::new();
        let op = sys.method("op");
        let user = sys.method("use");
        let pool = || {
            aspects::reserve(
                |s: &Pool| !s.busy,
                |s: &mut Pool| s.busy = true,
                |s: &mut Pool| s.busy = false,
            )
        };
        sys.add_aspect(op, "bomb", aspects::panic_fuse(|s: &mut Pool| &mut s.fuse));
        sys.add_aspect(op, "pool", pool());
        sys.add_aspect(user, "pool", pool());
        sys.wire_wakes(op, vec![user]);
        sys.wire_wakes(user, vec![op]);
        (sys, op, user)
    };
    let (sys, op, user) = build();
    let armed = Pool {
        busy: false,
        fuse: true,
    };
    let ablated = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .sharded()
        .leak_on_panic()
        .thread(vec![op])
        .thread(vec![user])
        .run(armed.clone());
    match ablated.outcome {
        Outcome::Deadlock(trace) => {
            let panicked = trace
                .iter()
                .position(|s| matches!(s, Step::Chain { result, .. } if *result == "panicked"))
                .expect("panicked step present");
            let blocked = trace
                .iter()
                .position(|s| matches!(s, Step::Chain { result, .. } if *result == "blocked"))
                .expect("blocked step present");
            assert!(panicked < blocked, "the leak strands the later caller");
        }
        other => panic!("expected stranded-waiter deadlock, got {other:?}"),
    }

    let (sys, op, user) = build();
    let faithful = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .sharded()
        .thread(vec![op])
        .thread(vec![user])
        .final_invariant(|s: &Pool| !s.busy)
        .run(armed);
    assert_eq!(faithful.outcome, Outcome::Ok);
}

/// `split_batch_overtake` at its 3-thread minimum. The defect fires
/// when a departure hands unordered permits to two *surviving* parked
/// waiters — so it needs two parked takers plus one departing thread,
/// and no 2-thread scenario can exhibit it. Here the third thread is
/// both the canceller (its timed `take` gives up, splitting the batch
/// across the two survivors) and the refiller that then lets the
/// swapped pair resume in corrupted order.
#[test]
fn split_batch_overtake_caught_exhaustively_at_three_threads() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Units {
        avail: usize,
    }
    let build = || {
        let mut sys = ModelSystem::new();
        let take = sys.method("take");
        let refill = sys.method("refill");
        sys.add_aspect(
            take,
            "gate",
            aspects::from_fns(
                |s: &mut Units| {
                    if s.avail > 0 {
                        s.avail -= 1;
                        ModelVerdict::Resume
                    } else {
                        ModelVerdict::Block
                    }
                },
                |_| (),
                |_| (),
            ),
        );
        sys.add_aspect(
            refill,
            "mint",
            aspects::from_fns(
                |_: &mut Units| ModelVerdict::Resume,
                |s: &mut Units| s.avail = 2,
                |_| (),
            ),
        );
        sys.wire_wakes(refill, vec![take]);
        sys.wire_wakes(take, vec![]);
        (sys, take, refill)
    };
    let (sys, take, refill) = build();
    let ablated = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .split_batch_overtake()
        .thread(vec![take])
        .thread(vec![take])
        .timed_thread(vec![take, refill])
        .run(Units::default());
    match ablated.outcome {
        Outcome::FairnessViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            let resumed = rendered.last().unwrap();
            assert!(resumed.contains("chain(take) -> resumed"), "{rendered:?}");
            let tid = |s: &str| s.split(':').next().unwrap().to_string();
            // The overtaken waiter — a *different* thread — parked
            // earlier in the trace and is still queued at the resume.
            assert!(
                rendered
                    .iter()
                    .any(|s| s.contains("chain(take) -> blocked") && tid(s) != tid(resumed)),
                "{rendered:?}"
            );
        }
        other => panic!("expected fairness violation, got {other:?}"),
    }

    let (sys, take, refill) = build();
    let faithful = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .fifo()
        .check_fairness()
        .batched_grants()
        .thread(vec![take])
        .thread(vec![take])
        .timed_thread(vec![take, refill])
        .run(Units::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

/// The `seed_deadlock` ablation: drop the unconditional self-wake the
/// protocol sends after postactions (and rollbacks). A capacity-1
/// reservation whose wake wiring names no other queue then strands the
/// second caller — its wake could only ever have come from the
/// self-wake. Found seed-free, with the minimal schedule: first caller
/// resumes, second blocks, first completes, nobody wakes the second.
#[test]
fn seed_deadlock_ablation_strands_the_self_waiter() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Pool {
        busy: bool,
    }
    let build = || {
        let mut sys = ModelSystem::new();
        let op = sys.method("op");
        sys.add_aspect(
            op,
            "pool",
            aspects::reserve(
                |s: &Pool| !s.busy,
                |s: &mut Pool| s.busy = true,
                |s: &mut Pool| s.busy = false,
            ),
        );
        // No cross-queue wiring: the second caller's only wake is the
        // moderator's own-queue notification after postactivation.
        sys.wire_wakes(op, vec![]);
        (sys, op)
    };
    let (sys, op) = build();
    let ablated = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .seed_deadlock()
        .thread(vec![op])
        .thread(vec![op])
        .run(Pool::default());
    match ablated.outcome {
        Outcome::Deadlock(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            assert!(
                rendered.iter().any(|s| s.contains("chain(op) -> resumed")),
                "{rendered:?}"
            );
            assert!(
                rendered.iter().any(|s| s.contains("chain(op) -> blocked")),
                "{rendered:?}"
            );
            // Minimality: the shrunk schedule is exactly the stranding
            // — the winner's resume, the loser's park, and the
            // winner's completion that fails to wake anyone.
            assert!(
                rendered.len() <= 4,
                "expected the minimal stranding trace, got {rendered:?}"
            );
        }
        other => panic!("expected self-wake deadlock, got {other:?}"),
    }

    // The faithful protocol (self-wake intact) is live on the same
    // scenario, with no wake wiring at all.
    let (sys, op) = build();
    let faithful = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .thread(vec![op])
        .thread(vec![op])
        .final_invariant(|s: &Pool| !s.busy)
        .run(Pool::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

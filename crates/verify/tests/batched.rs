//! Model-checking batched FIFO admission (grant extension on
//! departure, `ModeratorBuilder::grant_batching`): when a departure
//! frees capacity `k`, the front-`k` prefix of the queue drains in one
//! cursor-ordered sweep — each leaver hands the grant to the next
//! front, which re-evaluates *without a fresh notification pulse*,
//! possibly before the leaver's own postactivation has run. The claim
//! to verify is that this extra concurrency preserves no-overtake.
//!
//! Following the fairness battery's method, the proof is by ablation:
//!
//! * the faithful batched model (`batched_grants`) passes
//!   `check_fairness` across every interleaving, in both wake modes and
//!   with timed (cancelling) waiters — cursor ordering means only the
//!   queue front ever becomes eligible;
//! * the **split-batch** ablation (`split_batch_overtake`) hands the
//!   freed capacity to the front two waiters as *unordered* permits —
//!   the second-in-line can evaluate first — and is caught with a
//!   concrete overtake trace.

use amf_verify::{aspects, Checker, MethodIx, ModelSystem, ModelVerdict, Outcome};

/// A capacity-`k` gate: `take` consumes a unit or blocks; `refill`
/// restores the full capacity in one postaction — the shape in which a
/// single departure (the refiller) frees multiple units at once, so
/// batched admission is observable.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Units {
    avail: usize,
}

fn capacity_gate(k: usize) -> (ModelSystem<Units>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let take = sys.method("take");
    let refill = sys.method("refill");
    sys.add_aspect(
        take,
        "gate",
        aspects::from_fns(
            |s: &mut Units| {
                if s.avail > 0 {
                    s.avail -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |_| (),
        ),
    );
    sys.add_aspect(
        refill,
        "mint",
        aspects::from_fns(
            |_: &mut Units| ModelVerdict::Resume,
            move |s: &mut Units| s.avail = k,
            |_| (),
        ),
    );
    sys.wire_wakes(refill, vec![take]);
    sys.wire_wakes(take, vec![]);
    (sys, take, refill)
}

/// The batched model proves no-overtake: two contending takers park on
/// an empty gate and a refiller frees two units in one postaction —
/// across every interleaving, including those where a grant extension
/// lets the second taker evaluate before the first's postactivation has
/// run, no activation resumes past a still-queued earlier waiter, and
/// every schedule drains to completion.
#[test]
fn batched_grants_preserve_no_overtake() {
    let (sys, take, refill) = capacity_gate(2);
    let result = Checker::new(sys)
        .fifo()
        .check_fairness()
        .batched_grants()
        .thread(vec![take])
        .thread(vec![take])
        .thread(vec![refill])
        .run(Units::default());
    assert_eq!(result.outcome, Outcome::Ok);
    assert!(result.terminals >= 1);
}

/// Same property under `NotifyOne`: a batched sweep carries admissions
/// past the single signalled head, and order still holds.
#[test]
fn batched_grants_preserve_no_overtake_under_wake_one() {
    let (sys, take, refill) = capacity_gate(2);
    let result = Checker::new(sys)
        .fifo()
        .check_fairness()
        .batched_grants()
        .wake_one()
        .thread(vec![take])
        .thread(vec![take])
        .thread(vec![refill])
        .run(Units::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// Cancellation during a batched sweep: a timed waiter giving up is a
/// departure and extends the grant to the surviving front
/// (`TicketQueue::cancel`); seniority of everyone behind it is intact.
#[test]
fn batched_grants_stay_fair_with_cancelling_waiters() {
    let (sys, take, refill) = capacity_gate(2);
    let result = Checker::new(sys)
        .fifo()
        .check_fairness()
        .batched_grants()
        .timed_thread(vec![take])
        .timed_thread(vec![take])
        .timed_thread(vec![take])
        .thread(vec![refill])
        .run(Units::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// The split-batch ablation is caught: handing the freed capacity to
/// the front two waiters as unordered permits lets the second-in-line
/// resume while the first is still queued. The checker produces the
/// overtake trace — a parked taker and a *different* thread's `take`
/// resuming past it — and the faithful batched model on the exact same
/// scenario passes.
#[test]
fn split_batch_overtake_ablation_is_caught() {
    let (sys, take, refill) = capacity_gate(2);
    let ablated = Checker::new(sys)
        .fifo()
        .check_fairness()
        .split_batch_overtake()
        .timed_thread(vec![take])
        .timed_thread(vec![take])
        .timed_thread(vec![take])
        .thread(vec![refill])
        .run(Units::default());
    match ablated.outcome {
        Outcome::FairnessViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            let parked = rendered
                .iter()
                .find(|s| s.contains("chain(take) -> blocked"))
                .unwrap_or_else(|| panic!("{rendered:?}"));
            let resumed = rendered.last().unwrap();
            assert!(resumed.contains("chain(take) -> resumed"), "{rendered:?}");
            let tid = |s: &str| s.split(':').next().unwrap().to_string();
            assert_ne!(tid(parked), tid(resumed), "{rendered:?}");
        }
        other => panic!("expected fairness violation, got {other:?}"),
    }

    let (sys, take, refill) = capacity_gate(2);
    let faithful = Checker::new(sys)
        .fifo()
        .check_fairness()
        .batched_grants()
        .timed_thread(vec![take])
        .timed_thread(vec![take])
        .timed_thread(vec![take])
        .thread(vec![refill])
        .run(Units::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

/// Batching composes with the sharded protocol's transient
/// reservations: the rollback shape from `tests/sharded.rs` stays live
/// and fair when departures extend grants.
#[test]
fn batched_grants_compose_with_sharded_rollback() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Pool {
        busy: bool,
        gate: bool,
    }
    let mut sys = ModelSystem::new();
    let a = sys.method("a");
    let b = sys.method("b");
    let pool = || {
        aspects::reserve(
            |s: &Pool| !s.busy,
            |s: &mut Pool| s.busy = true,
            |s: &mut Pool| s.busy = false,
        )
    };
    sys.add_aspect(a, "gate", aspects::guard(|s: &Pool| s.gate));
    sys.add_aspect(a, "pool", pool());
    sys.add_aspect(b, "pool", pool());
    sys.set_body(b, |s: &mut Pool| s.gate = true);
    let result = Checker::new(sys)
        .sharded()
        .fifo()
        .check_fairness()
        .batched_grants()
        .thread(vec![a])
        .thread(vec![b])
        .final_invariant(|s: &Pool| !s.busy)
        .run(Pool::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

//! Model checking the fault-tolerant lease handoff — the exhaustive
//! twin of the recovery state machine in `crates/core/src/lease.rs`
//! (driven live by `amf_service::PeerNode` and under the virtual clock
//! by `amf-sim`'s recovery topology).
//!
//! One sender/receiver link is folded into a [`ModelSystem`] as a
//! stop-and-wait protocol with every mechanism the wire implementation
//! carries: `xmit` (grant + pending slot), `rexmit` (retransmission of
//! a lost frame), `expire` (deadline reclaim into degraded local
//! moderation), `deliver` (receiver dedup window + grant + ack), `ack`
//! (the reliable return plane), and `dup` (the network duplicating a
//! frame in flight). Each protocol action runs atomically in its
//! aspect *precondition* (mutate-on-resume, the `aspects::reserve`
//! idiom), because the race the real daemon guards against — expiry
//! firing while traffic is still in flight — must be a single atomic
//! step to model the "drain readable acks before poll" contract.
//!
//! Two properties, checked on every interleaving:
//!
//! * **no-double-grant** (step invariant): no ticket is ever granted
//!   twice, across receiver deliveries *and* sender reclaims;
//! * **no-lost-ticket** (final invariant): when every script
//!   terminates, every ticket was granted exactly once — somewhere.
//!
//! The faithful protocol passes under duplication, transient loss, and
//! a fully severed link. Three ablations are each caught with a shrunk
//! counterexample:
//!
//! * no dedup — a duplicated frame grants twice (invariant violation);
//! * no expiry — a severed link strands the pending slot and the
//!   sender deadlocks (the model twin of the sim's legacy `drop_nth`
//!   deadlock);
//! * reckless expiry — an expiry that ignores in-flight traffic
//!   (ablating the drain-acks-before-poll guard) reclaims a lease the
//!   receiver then also grants: double grant.

use std::mem::discriminant;

use amf_verify::{
    aspects, Checker, Exploration, ModelSystem, ModelVerdict, Outcome, ReductionPolicy, Step,
};

/// Tickets circulated over the link per run.
const TOTAL: u8 = 2;

/// How the link (mis)behaves.
#[derive(Clone, Copy, PartialEq)]
enum Link {
    /// Every frame arrives (possibly late).
    Clean,
    /// A `dup` step may copy a frame in flight.
    Duplicating,
    /// The first transmission is lost; retransmission works.
    Lossy,
    /// The first transmission is lost and so is every retransmission
    /// of it — the model of the sim's severed handoff.
    Severed,
}

/// How the sender's deadline behaves.
#[derive(Clone, Copy, PartialEq)]
enum Expiry {
    /// Fires only when no copy of the pending grant and no ack for it
    /// is still in flight — the model of "the deadline exceeds the
    /// maximum network delay" plus the drain-acks-before-poll guard.
    Sound,
    /// Fires whenever a grant is pending, traffic or not: the ablation
    /// of the guard.
    Reckless,
    /// Never fires (the `expiry_ns == 0` legacy path).
    Disabled,
}

#[derive(Clone, Copy)]
struct Proto {
    dedup: bool,
    expiry: Expiry,
    link: Link,
}

/// The whole link folded into one shared model state.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Wire {
    /// Tickets not yet transmitted at the sender.
    tickets: u8,
    /// Next sequence number the sender stamps.
    next_seq: u8,
    /// Grant copies in flight: `(seq, ticket)`.
    inflight: Vec<(u8, u8)>,
    /// The sender's stop-and-wait pending slot.
    unacked: Option<(u8, u8)>,
    /// Acks in flight — delayed, never dropped (the declared fault
    /// model: acks ride the TCP return path).
    acks: Vec<u8>,
    /// The receiver's idempotent dedup window (seqs already granted).
    seen: Vec<u8>,
    /// Grant log across both sides: receiver deliveries and sender
    /// reclaims, in grant order. The invariants read this.
    granted: Vec<u8>,
    /// The first transmission, if the link lost it.
    dropped_seq: Option<u8>,
    /// The sender reclaimed at least once (degraded local moderation).
    degraded: bool,
}

/// The sender has nothing left outstanding; surplus courier/ack/timer
/// steps pass through instead of blocking a finished run.
fn settled(s: &Wire) -> bool {
    s.tickets == 0 && s.unacked.is_none()
}

/// No ticket granted twice, at every step.
fn no_double_grant(s: &Wire) -> bool {
    s.granted
        .iter()
        .enumerate()
        .all(|(i, t)| !s.granted[..i].contains(t))
}

/// Every ticket granted exactly once by the time all scripts finish.
fn no_lost_ticket(s: &Wire) -> bool {
    let mut g = s.granted.clone();
    g.sort_unstable();
    g == (0..TOTAL).collect::<Vec<_>>()
}

/// Builds the checker for one protocol configuration. Thread scripts
/// are sized to the largest frame/ack population the configuration can
/// produce; once the run is settled, surplus steps pass through.
fn link_model(proto: Proto) -> Checker<Wire> {
    let mut sys = ModelSystem::new();
    let xmit = sys.method("xmit");
    let dup = sys.method("dup");
    let rexmit = sys.method("rexmit");
    let expire = sys.method("expire");
    let deliver = sys.method("deliver");
    let ack = sys.method("ack");
    let all = [xmit, dup, rexmit, expire, deliver, ack];

    // Sender: take the next ticket, stamp a sequence number, put the
    // grant in flight and hold it in the pending slot. Stop-and-wait:
    // blocks while a grant is pending — which is exactly what deadlocks
    // when the link is severed and nothing can clear the slot.
    sys.add_aspect(
        xmit,
        "xmit",
        aspects::from_fns(
            move |s: &mut Wire| {
                if s.tickets == 0 || s.unacked.is_some() {
                    return ModelVerdict::Block;
                }
                let ticket = TOTAL - s.tickets;
                s.tickets -= 1;
                let seq = s.next_seq;
                s.next_seq += 1;
                s.unacked = Some((seq, ticket));
                if matches!(proto.link, Link::Lossy | Link::Severed) && s.dropped_seq.is_none() {
                    s.dropped_seq = Some(seq); // lost in flight
                } else {
                    s.inflight.push((seq, ticket));
                }
                ModelVerdict::Resume
            },
            |_| (),
            |_| (),
        ),
    );

    // The network duplicating a frame in flight.
    sys.add_aspect(
        dup,
        "dup",
        aspects::from_fns(
            move |s: &mut Wire| {
                if let Some(&f) = s.inflight.first() {
                    s.inflight.push(f);
                    ModelVerdict::Resume
                } else if settled(s) {
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |_| (),
        ),
    );

    // Retransmission: the pending grant has no copy in flight and no
    // ack on the way back — put a fresh copy on the wire. Into a
    // severed link the retransmission vanishes like the original.
    sys.add_aspect(
        rexmit,
        "rexmit",
        aspects::from_fns(
            move |s: &mut Wire| {
                if let Some((seq, ticket)) = s.unacked {
                    let lost = !s.inflight.iter().any(|f| f.0 == seq) && !s.acks.contains(&seq);
                    if lost {
                        if !(proto.link == Link::Severed && s.dropped_seq == Some(seq)) {
                            s.inflight.push((seq, ticket));
                        }
                        return ModelVerdict::Resume;
                    }
                }
                if settled(s) {
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |_| (),
        ),
    );

    // Expiry: reclaim the pending grant into degraded local
    // moderation. `Sound` refuses while any copy of the grant or its
    // ack is still in flight — the drain-acks-before-poll guard plus
    // the deadline-exceeds-max-delay timing assumption, stated as a
    // guard. `Reckless` ablates exactly that check.
    sys.add_aspect(
        expire,
        "expire",
        aspects::from_fns(
            move |s: &mut Wire| {
                if let Some((seq, ticket)) = s.unacked {
                    let traffic = s.inflight.iter().any(|f| f.0 == seq) || s.acks.contains(&seq);
                    if proto.expiry == Expiry::Reckless || !traffic {
                        s.granted.push(ticket);
                        s.unacked = None;
                        s.degraded = true;
                        return ModelVerdict::Resume;
                    }
                }
                if settled(s) {
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |_| (),
        ),
    );

    // Receiver: take the oldest frame; the dedup window discards a
    // sequence number it has already granted. Every delivery — fresh
    // or discarded — answers with an ack, so a lost ack is healed by
    // the next duplicate (idempotent re-ack).
    sys.add_aspect(
        deliver,
        "deliver",
        aspects::from_fns(
            move |s: &mut Wire| {
                if !s.inflight.is_empty() {
                    let (seq, ticket) = s.inflight.remove(0);
                    if !(proto.dedup && s.seen.contains(&seq)) {
                        s.seen.push(seq);
                        s.granted.push(ticket);
                    }
                    s.acks.push(seq);
                    ModelVerdict::Resume
                } else if settled(s) {
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |_| (),
        ),
    );

    // The return plane: deliver the oldest ack; clearing the pending
    // slot is what lets the sender transmit the next ticket.
    sys.add_aspect(
        ack,
        "ack",
        aspects::from_fns(
            move |s: &mut Wire| {
                if !s.acks.is_empty() {
                    let seq = s.acks.remove(0);
                    if s.unacked.map(|(q, _)| q) == Some(seq) {
                        s.unacked = None;
                    }
                    ModelVerdict::Resume
                } else if settled(s) {
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |_| (),
        ),
    );

    // Complete wake graph: every completed step re-evaluates every
    // blocked gate. Spurious wakes only re-run pure guards, and the
    // model stays faithful to the live system, where the io-tick
    // daemon re-polls every condition.
    for m in all {
        sys.wire_wakes(m, all.to_vec());
    }

    // Scripts sized to the configuration's maximum traffic: frames =
    // TOTAL transmissions, +1 for a duplicate; acks mirror deliveries.
    let frames = match proto.link {
        Link::Duplicating => TOTAL as usize + 1,
        _ => TOTAL as usize,
    };
    let mut checker = Checker::new(sys)
        .invariant(no_double_grant)
        .final_invariant(no_lost_ticket)
        .thread(vec![xmit; TOTAL as usize])
        .thread(vec![deliver; frames])
        .thread(vec![ack; frames]);
    if proto.link == Link::Duplicating {
        checker = checker.thread(vec![dup]);
    }
    if matches!(proto.link, Link::Lossy | Link::Severed) {
        checker = checker.thread(vec![rexmit]);
    }
    if proto.expiry != Expiry::Disabled {
        checker = checker.thread(vec![expire]);
    }
    checker
}

/// Runs a configuration under both reduction policies and asserts the
/// differential contract (same as `tests/multi_moderator.rs`).
fn differential(proto: Proto) -> (Exploration, Exploration) {
    let none = link_model(proto)
        .reduction(ReductionPolicy::None)
        .run(Wire {
            tickets: TOTAL,
            ..Wire::default()
        });
    let dpor = link_model(proto)
        .reduction(ReductionPolicy::Dpor)
        .run(Wire {
            tickets: TOTAL,
            ..Wire::default()
        });
    assert_eq!(
        discriminant(&none.outcome),
        discriminant(&dpor.outcome),
        "verdicts must agree: none={:?} dpor={:?}",
        none.outcome,
        dpor.outcome
    );
    assert!(
        dpor.schedules <= none.schedules,
        "reduction explored more schedules: none={} dpor={}",
        none.schedules,
        dpor.schedules
    );
    if none.outcome == Outcome::Ok {
        assert_eq!(
            none.states, dpor.states,
            "sleep sets must preserve state coverage on passing scenarios"
        );
    }
    (none, dpor)
}

/// The shrunk counterexample of a failing outcome, rendered.
fn counterexample(outcome: &Outcome) -> Vec<String> {
    let steps: &[Step] = match outcome {
        Outcome::Deadlock(t)
        | Outcome::InvariantViolation(t)
        | Outcome::FinalInvariantViolation(t)
        | Outcome::FairnessViolation(t) => t,
        other => panic!("expected a counterexample-bearing outcome, got {other:?}"),
    };
    assert!(!steps.is_empty(), "shrunk trace must be non-empty");
    steps.iter().map(ToString::to_string).collect()
}

// ------------------------------------------------------------------ //
// The faithful protocol.
// ------------------------------------------------------------------ //

/// Duplication is absorbed by the dedup window: every interleaving of
/// a duplicating link keeps both invariants, under both reduction
/// policies with identical state coverage.
#[test]
fn faithful_protocol_survives_duplication() {
    let (none, _dpor) = differential(Proto {
        dedup: true,
        expiry: Expiry::Sound,
        link: Link::Duplicating,
    });
    assert_eq!(none.outcome, Outcome::Ok, "{:?}", none.outcome);
}

/// A transiently lost frame is healed by retransmission — or, in the
/// schedules where the deadline wins the race, by a sound expiry
/// reclaim. Both recovery paths are explored exhaustively; no
/// interleaving loses or doubles a ticket.
#[test]
fn faithful_protocol_survives_transient_loss() {
    let (none, _dpor) = differential(Proto {
        dedup: true,
        expiry: Expiry::Sound,
        link: Link::Lossy,
    });
    assert_eq!(none.outcome, Outcome::Ok, "{:?}", none.outcome);
}

/// A severed link — the original and every retransmission lost — is
/// recovered by expiry alone: the sender reclaims the ticket into
/// degraded local moderation and the run still grants every ticket
/// exactly once. The DPOR differential runs on this, the richest
/// passing configuration.
#[test]
fn faithful_protocol_survives_a_severed_link() {
    let (none, dpor) = differential(Proto {
        dedup: true,
        expiry: Expiry::Sound,
        link: Link::Severed,
    });
    assert_eq!(none.outcome, Outcome::Ok, "{:?}", none.outcome);
    assert!(
        dpor.schedules < none.schedules,
        "recovery traffic must still reduce: none={} dpor={}",
        none.schedules,
        dpor.schedules
    );
}

// ------------------------------------------------------------------ //
// Ablations — each mechanism earns its keep with a counterexample.
// ------------------------------------------------------------------ //

/// Without the dedup window a duplicated frame grants its ticket
/// twice: caught as a step-invariant violation whose shrunk trace
/// contains the duplication and both deliveries.
#[test]
fn no_dedup_ablation_double_grants() {
    let (none, _dpor) = differential(Proto {
        dedup: false,
        expiry: Expiry::Sound,
        link: Link::Duplicating,
    });
    match &none.outcome {
        Outcome::InvariantViolation(_) => {}
        other => panic!("expected a double grant, got {other:?}"),
    }
    let trace = counterexample(&none.outcome);
    assert!(
        trace.iter().any(|s| s.contains("dup")),
        "the duplication must be in the shrunk trace: {trace:?}"
    );
    assert!(
        trace.iter().filter(|s| s.contains("deliver")).count() >= 2,
        "both deliveries of the duplicate must be in the trace: {trace:?}"
    );
}

/// Without expiry a severed link strands the pending slot forever: the
/// sender's next transmit blocks on the stop-and-wait gate and the
/// whole link deadlocks — the model twin of the sim's legacy
/// `drop_nth` detected deadlock.
#[test]
fn no_expiry_ablation_deadlocks_on_a_severed_link() {
    let (none, dpor) = differential(Proto {
        dedup: true,
        expiry: Expiry::Disabled,
        link: Link::Severed,
    });
    for (label, outcome) in [("none", &none.outcome), ("dpor", &dpor.outcome)] {
        match outcome {
            Outcome::Deadlock(_) => {}
            other => panic!("{label}: expected deadlock, got {other:?}"),
        }
    }
    let trace = counterexample(&dpor.outcome);
    assert!(
        trace.iter().any(|s| s.contains("xmit")),
        "the stranding transmit must be in the shrunk trace: {trace:?}"
    );
}

/// An expiry that ignores in-flight traffic — ablating the
/// drain-readable-acks-before-poll guard — reclaims a ticket the
/// receiver then also grants: double grant, with the premature expiry
/// and the late delivery both in the shrunk trace.
#[test]
fn reckless_expiry_ablation_double_grants() {
    let (none, _dpor) = differential(Proto {
        dedup: true,
        expiry: Expiry::Reckless,
        link: Link::Clean,
    });
    match &none.outcome {
        Outcome::InvariantViolation(_) => {}
        other => panic!("expected a double grant, got {other:?}"),
    }
    let trace = counterexample(&none.outcome);
    assert!(
        trace.iter().any(|s| s.contains("expire")),
        "the premature expiry must be in the shrunk trace: {trace:?}"
    );
    assert!(
        trace.iter().any(|s| s.contains("deliver")),
        "the late delivery must be in the shrunk trace: {trace:?}"
    );
}

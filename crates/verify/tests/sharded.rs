//! Model-checking the *sharded* moderator (per-method coordination
//! cells): under sharding a chain's rollback is no longer atomic with
//! its evaluation as seen from other methods, so another method can
//! block against a transient reservation that is later rolled back —
//! the E7 anomaly. These tests verify the two disciplines the
//! implementation relies on:
//!
//! * **Rollback notification**: a rollback that released reservations
//!   notifies the method's wake targets (ablate with
//!   `without_rollback_notify` → the checker exhibits the lost wakeup).
//! * **Notify-while-locking-target**: a blocking thread parks
//!   atomically with its decision (ablate with `racy_park` → the
//!   checker exhibits the missed-notification deadlock).

use amf_verify::{aspects, Checker, ModelSystem, Outcome};

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Buf {
    reserved: usize,
    produced: usize,
    producing: bool,
    consuming: bool,
}

fn buffer(
    sys: &mut ModelSystem<Buf>,
    capacity: usize,
) -> (amf_verify::MethodIx, amf_verify::MethodIx) {
    let put = sys.method("put");
    let take = sys.method("take");
    sys.add_aspect(
        put,
        "sync",
        aspects::buffer_producer(
            capacity,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        ),
    );
    sys.add_aspect(
        take,
        "sync",
        aspects::buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        ),
    );
    (put, take)
}

/// The E7 shape, modeled: method `a` reserves the capacity-1 pool and
/// then blocks on a gate; method `b` wants the same pool, and its body
/// opens the gate. Under nested ordering (newest-first) `a`'s chain is
/// registered gate-first so it *reserves, then blocks*.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Pool {
    busy: bool,
    gate: bool,
}

fn gated_system() -> (
    ModelSystem<Pool>,
    amf_verify::MethodIx,
    amf_verify::MethodIx,
) {
    let mut sys = ModelSystem::new();
    let a = sys.method("a");
    let b = sys.method("b");
    let pool = || {
        aspects::reserve(
            |s: &Pool| !s.busy,
            |s: &mut Pool| s.busy = true,
            |s: &mut Pool| s.busy = false,
        )
    };
    // Registered gate-first so evaluation (newest-first) reserves the
    // pool and then hits the closed gate.
    sys.add_aspect(a, "gate", aspects::guard(|s: &Pool| s.gate));
    sys.add_aspect(a, "pool", pool());
    sys.add_aspect(b, "pool", pool());
    sys.set_body(b, |s: &mut Pool| s.gate = true);
    (sys, a, b)
}

/// The paper's producer/consumer wiring stays live when the rollback
/// becomes a separately-observable step (the sharded moderator).
#[test]
fn sharded_paper_wiring_is_live() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 1);
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    let result = Checker::new(sys)
        .sharded()
        .thread(vec![put, put, put])
        .thread(vec![take, take, take])
        .run(Buf::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// The sharded protocol with rollback notifications passes the E7
/// shape: `b` blocks against `a`'s transient reservation, `a`'s
/// rollback wakes it, and every interleaving terminates with no leaked
/// reservation.
#[test]
fn rollback_notification_closes_the_transient_reservation_race() {
    let (sys, a, b) = gated_system();
    let result = Checker::new(sys)
        .sharded()
        .thread(vec![a])
        .thread(vec![b])
        .final_invariant(|s: &Pool| !s.busy)
        .run(Pool::default());
    assert_eq!(result.outcome, Outcome::Ok);
    // The transient-reservation interleaving is actually explored:
    // sharded mode visits strictly more states than the atomic model.
    let atomic = {
        let (sys, a, b) = gated_system();
        Checker::new(sys)
            .thread(vec![a])
            .thread(vec![b])
            .run(Pool::default())
    };
    assert_eq!(atomic.outcome, Outcome::Ok);
    assert!(result.states > atomic.states);
}

/// Ablation: silent rollback (no notification) loses the wakeup `b`
/// needs — the checker exhibits the deadlock, proving the rollback
/// notification is necessary, not defensive.
#[test]
fn silent_rollback_loses_wakeups() {
    let (sys, a, b) = gated_system();
    let result = Checker::new(sys)
        .sharded()
        .without_rollback_notify()
        .thread(vec![a])
        .thread(vec![b])
        .run(Pool::default());
    match result.outcome {
        Outcome::Deadlock(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            // `b` blocked against the transient reservation...
            assert!(
                rendered.iter().any(|s| s.contains("chain(b) -> blocked")),
                "{rendered:?}"
            );
            // ...and `a` rolled back without waking it.
            assert!(
                rendered.iter().any(|s| s.contains("unwind(a) -> parked")),
                "{rendered:?}"
            );
        }
        other => panic!("expected lost-wakeup deadlock, got {other:?}"),
    }
}

/// Ablation of the notify-while-locking-target discipline: if a thread
/// parks in a separate step from its decision to block, a notification
/// sent in the window is missed and the checker finds the deadlock.
#[test]
fn racy_park_loses_wakeups() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 1);
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    let result = Checker::new(sys)
        .sharded()
        .racy_park()
        .thread(vec![put])
        .thread(vec![take])
        .run(Buf::default());
    match result.outcome {
        Outcome::Deadlock(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            // The producer completed (post ran, notification sent)
            // strictly between the consumer's decision to block and its
            // actual park.
            assert!(
                rendered.iter().any(|s| s.contains("park(take)")),
                "{rendered:?}"
            );
            assert!(
                rendered.iter().any(|s| s.contains("post(put)")),
                "{rendered:?}"
            );
        }
        other => panic!("expected missed-notification deadlock, got {other:?}"),
    }
}

/// The disciplined implementation (park atomic with the blocking
/// decision) has no such window: same system, no ablation, all live.
#[test]
fn disciplined_park_is_live() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 1);
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    let result = Checker::new(sys)
        .sharded()
        .thread(vec![put])
        .thread(vec![take])
        .run(Buf::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// Sharding composes with `NotifyOne` (the paper's Java `notify()`):
/// the single-wake pipeline from experiment E6 stays live when the
/// rollback is a separate step.
#[test]
fn sharded_notify_one_buffer_is_live() {
    let mut sys = ModelSystem::new();
    let (put, take) = buffer(&mut sys, 1);
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    let result = Checker::new(sys)
        .sharded()
        .wake_one()
        .thread(vec![put, put])
        .thread(vec![take, take])
        .run(Buf::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

//! Model-checking panic containment: an aspect precondition that
//! panics must compensate exactly like a mid-chain abort — the
//! earlier-resumed prefix of the chain is released and the method's
//! waiters are re-notified — or the leaked reservation strands every
//! thread guarded by it. Following the fairness battery, the property
//! is verified *by ablation*: the faithful model passes the
//! containment invariant (every interleaving terminates, quiescence
//! holds, fifo order survives the panic), while `leak_on_panic` —
//! catch the unwind, skip the prefix rollback — is caught with a
//! concrete stranded-waiter deadlock trace.

use amf_verify::{aspects, Checker, MethodIx, ModelSystem, ModelVerdict, Outcome, Step};

/// A capacity-1 pool with a one-shot panic fuse. `op`'s chain is
/// `[bomb, pool]` in registration order, so under nested (newest-
/// first) evaluation the pool reserves *before* the bomb fires — the
/// panic always has a resumed prefix to unwind.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Pool {
    busy: bool,
    fuse: bool,
}

fn pooled() -> (ModelSystem<Pool>, MethodIx) {
    let mut sys = ModelSystem::new();
    let op = sys.method("op");
    sys.add_aspect(op, "bomb", aspects::panic_fuse(|s: &mut Pool| &mut s.fuse));
    sys.add_aspect(
        op,
        "pool",
        aspects::reserve(
            |s: &Pool| !s.busy,
            |s: &mut Pool| s.busy = true,
            |s: &mut Pool| s.busy = false,
        ),
    );
    (sys, op)
}

/// The containment invariant: with the fuse armed, exactly one of the
/// contending activations panics mid-chain, its pool reservation is
/// rolled back, the stranded-looking peer is re-notified, and every
/// interleaving terminates with the pool free. No leaked reservation,
/// no stranded waiter.
#[test]
fn contained_panic_releases_prefix_and_strands_nobody() {
    let (sys, op) = pooled();
    let result = Checker::new(sys)
        .sharded()
        .thread(vec![op])
        .thread(vec![op])
        .final_invariant(|s: &Pool| !s.busy)
        .run(Pool {
            busy: false,
            fuse: true,
        });
    assert_eq!(result.outcome, Outcome::Ok);
    assert!(result.terminals >= 1);
}

/// A panic with no resumed prefix (the bomb is the chain's sole,
/// outermost aspect) needs no unwind step: the op simply completes
/// failed and the system stays live.
#[test]
fn prefixless_panic_completes_the_op() {
    let mut sys = ModelSystem::new();
    let op = sys.method("op");
    sys.add_aspect(op, "bomb", aspects::panic_fuse(|s: &mut Pool| &mut s.fuse));
    let result = Checker::new(sys).sharded().thread(vec![op, op]).run(Pool {
        busy: false,
        fuse: true,
    });
    assert_eq!(result.outcome, Outcome::Ok);
}

/// Fifo no-overtake survives a panic: the head of the queue panics
/// mid-chain (after consuming the token), the rollback returns the
/// token and re-notifies the queue, and across every interleaving no
/// later waiter ever resumes past a still-queued earlier one.
#[test]
fn fifo_no_overtake_survives_a_panic() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Tokens {
        avail: usize,
        fuse: bool,
    }
    let mut sys = ModelSystem::new();
    let open = sys.method("open");
    let tick = sys.method("tick");
    sys.add_aspect(
        open,
        "bomb",
        aspects::panic_fuse(|s: &mut Tokens| &mut s.fuse),
    );
    sys.add_aspect(
        open,
        "gate",
        aspects::from_fns(
            |s: &mut Tokens| {
                if s.avail > 0 {
                    s.avail -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |s: &mut Tokens| s.avail += 1,
        ),
    );
    sys.add_aspect(
        tick,
        "mint",
        aspects::from_fns(
            |s: &mut Tokens| {
                s.avail += 1;
                ModelVerdict::Resume
            },
            |_| (),
            |_| (),
        ),
    );
    sys.wire_wakes(tick, vec![open]);
    sys.wire_wakes(open, vec![]);
    let result = Checker::new(sys)
        .sharded()
        .fifo()
        .check_fairness()
        .thread(vec![open])
        .thread(vec![open])
        .thread(vec![tick, tick])
        .run(Tokens {
            avail: 0,
            fuse: true,
        });
    assert_eq!(result.outcome, Outcome::Ok);
    assert!(result.terminals >= 1);
}

/// The ablation: catching the panic but skipping the prefix unwind
/// leaks the pool reservation, and the peer activation — blocked on
/// the pool that will never be freed — is stranded. The checker
/// produces the concrete trace: a `panicked` chain step followed by a
/// waiter blocking forever, reported as a deadlock.
#[test]
fn leak_on_panic_ablation_strands_a_waiter() {
    let (sys, op) = pooled();
    let ablated = Checker::new(sys)
        .sharded()
        .leak_on_panic()
        .thread(vec![op])
        .thread(vec![op])
        .run(Pool {
            busy: false,
            fuse: true,
        });
    match ablated.outcome {
        Outcome::Deadlock(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            assert!(
                rendered.iter().any(|s| s.contains("chain(op) -> panicked")),
                "the leak must be visible in the trace: {rendered:?}"
            );
            assert!(
                rendered.iter().any(|s| s.contains("chain(op) -> blocked")),
                "the stranded waiter must be visible in the trace: {rendered:?}"
            );
            // The stranding is causal: the panic leaks first, then the
            // peer parks against the leaked reservation.
            let panicked = trace
                .iter()
                .position(|s| matches!(s, Step::Chain { result, .. } if *result == "panicked"))
                .expect("panicked step present");
            let blocked = trace
                .iter()
                .position(|s| matches!(s, Step::Chain { result, .. } if *result == "blocked"))
                .expect("blocked step present");
            assert!(panicked < blocked, "{rendered:?}");
        }
        other => panic!("expected stranded-waiter deadlock, got {other:?}"),
    }

    // The faithful model on the exact same scenario stays live.
    let (sys, op) = pooled();
    let faithful = Checker::new(sys)
        .sharded()
        .thread(vec![op])
        .thread(vec![op])
        .final_invariant(|s: &Pool| !s.busy)
        .run(Pool {
            busy: false,
            fuse: true,
        });
    assert_eq!(faithful.outcome, Outcome::Ok);
}

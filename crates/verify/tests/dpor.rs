//! The differential DPOR battery: every ablation the exhaustive
//! explorer catches unreduced must be caught *identically* under
//! [`ReductionPolicy::Dpor`] — same verdict, a counterexample that
//! still replays to the violation, and never more explored schedules.
//!
//! The soundness argument being exercised: sleep sets (with difference
//! exploration and clean-record coverage) prune *transition orders*,
//! never *states*, and every verdict the checker reports — invariant
//! violation, deadlock, fairness flag, final-invariant check — is a
//! property of a reached state. So on passing scenarios the two
//! policies must agree on the exact state count, and on failing ones
//! they must agree on the verdict (the shrunk trace may differ: both
//! are re-derived by replay, which is what `trace_signature` checks).
//!
//! The file doubles as the CI schedule-count regression gate
//! ([`schedule_count_regression_gate`]): pinned `{states, schedules}`
//! constants for the canonical buffer under both policies, so any
//! change to the exploration order, the hash pruning, or the reduction
//! bookkeeping shows up as a diff against committed numbers instead of
//! a silent coverage loss.

use std::mem::discriminant;

use amf_verify::{
    aspects, Checker, Exploration, MethodIx, ModelSystem, ModelVerdict, Outcome, ReductionPolicy,
    Step, Strategy,
};

/// Runs the same scenario under both policies and asserts the
/// differential contract: identical verdict *kind*, no more schedules
/// under `Dpor`, and — when the scenario passes, so neither run aborts
/// early — identical state coverage.
fn differential<S, F>(build: F, initial: S) -> (Exploration, Exploration)
where
    S: Clone + Eq + std::hash::Hash,
    F: Fn() -> Checker<S>,
{
    let none = build()
        .reduction(ReductionPolicy::None)
        .run(initial.clone());
    let dpor = build().reduction(ReductionPolicy::Dpor).run(initial);
    assert_eq!(
        discriminant(&none.outcome),
        discriminant(&dpor.outcome),
        "verdicts must agree: none={:?} dpor={:?}",
        none.outcome,
        dpor.outcome
    );
    assert!(
        dpor.schedules <= none.schedules,
        "reduction explored more schedules: none={} dpor={}",
        none.schedules,
        dpor.schedules
    );
    if none.outcome == Outcome::Ok {
        assert_eq!(
            none.states, dpor.states,
            "sleep sets must preserve state coverage on passing scenarios"
        );
    }
    (none, dpor)
}

/// The counterexample carried by a failing outcome. Every trace the
/// checker reports is re-derived by replaying the shrunk schedule, so
/// a non-empty trace here *is* the "still replays" witness; callers
/// then assert the defect's signature steps are present.
fn counterexample(outcome: &Outcome) -> Vec<String> {
    let steps: &[Step] = match outcome {
        Outcome::Deadlock(t)
        | Outcome::InvariantViolation(t)
        | Outcome::FinalInvariantViolation(t)
        | Outcome::FairnessViolation(t) => t,
        other => panic!("expected a counterexample-bearing outcome, got {other:?}"),
    };
    assert!(!steps.is_empty(), "shrunk trace must be non-empty");
    steps.iter().map(ToString::to_string).collect()
}

fn tid(step: &str) -> &str {
    step.split(':').next().unwrap()
}

// ---------------------------------------------------------------- //
// Scenario builders (the same minimal shapes the per-ablation test
// files prove; kept here verbatim so the battery stays self-contained).
// ---------------------------------------------------------------- //

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Buf {
    reserved: usize,
    produced: usize,
    producing: bool,
    consuming: bool,
}

fn buffer(capacity: usize) -> (ModelSystem<Buf>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let put = sys.method("put");
    let take = sys.method("take");
    sys.add_aspect(
        put,
        "sync",
        aspects::buffer_producer(
            capacity,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        ),
    );
    sys.add_aspect(
        take,
        "sync",
        aspects::buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        ),
    );
    sys.wire_wakes(put, vec![take]);
    sys.wire_wakes(take, vec![put]);
    (sys, put, take)
}

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Tokens {
    avail: usize,
}

fn gated() -> (ModelSystem<Tokens>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let open = sys.method("open");
    let tick = sys.method("tick");
    sys.add_aspect(
        open,
        "gate",
        aspects::from_fns(
            |s: &mut Tokens| {
                if s.avail > 0 {
                    s.avail -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |s: &mut Tokens| s.avail += 1,
        ),
    );
    sys.add_aspect(
        tick,
        "mint",
        aspects::from_fns(
            |s: &mut Tokens| {
                s.avail += 1;
                ModelVerdict::Resume
            },
            |_| (),
            |_| (),
        ),
    );
    sys.wire_wakes(tick, vec![open]);
    sys.wire_wakes(open, vec![]);
    (sys, open, tick)
}

// ---------------------------------------------------------------- //
// The eight ablations, differentially.
// ---------------------------------------------------------------- //

/// `racy_park`: the missed-notification deadlock survives reduction
/// with its signature steps (the park and the notification that
/// missed it), and the faithful sharded model stays `Ok` with
/// identical state coverage.
#[test]
fn dpor_racy_park() {
    let (_, dpor) = differential(
        || {
            let (sys, put, take) = buffer(1);
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .sharded()
                .racy_park()
                .thread(vec![put])
                .thread(vec![take])
        },
        Buf::default(),
    );
    let trace = counterexample(&dpor.outcome);
    assert!(trace.iter().any(|s| s.contains("park(take)")), "{trace:?}");
    assert!(trace.iter().any(|s| s.contains("post(put)")), "{trace:?}");

    differential(
        || {
            let (sys, put, take) = buffer(1);
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .sharded()
                .thread(vec![put])
                .thread(vec![take])
        },
        Buf::default(),
    );
}

/// `racy_handoff`: the barging newcomer's overtake is still found, as
/// an overtake (the resume belongs to a different thread than the
/// still-queued park).
#[test]
fn dpor_racy_handoff() {
    let (_, dpor) = differential(
        || {
            let (sys, open, tick) = gated();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .racy_handoff()
                .timed_thread(vec![open])
                .timed_thread(vec![tick, open])
        },
        Tokens::default(),
    );
    let trace = counterexample(&dpor.outcome);
    let parked = trace
        .iter()
        .find(|s| s.contains("chain(open) -> blocked"))
        .unwrap_or_else(|| panic!("{trace:?}"));
    let resumed = trace.last().unwrap();
    assert!(resumed.contains("chain(open) -> resumed"), "{trace:?}");
    assert_ne!(tid(parked), tid(resumed), "{trace:?}");

    differential(
        || {
            let (sys, open, tick) = gated();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .timed_thread(vec![open])
                .timed_thread(vec![tick, open])
        },
        Tokens::default(),
    );
}

/// `overtake_on_timeout`: the seniority-wiping cancellation still
/// produces a fairness violation whose trace shows the timeout before
/// the overtaking resume.
#[test]
fn dpor_overtake_on_timeout() {
    let (_, dpor) = differential(
        || {
            let (sys, open, tick) = gated();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .overtake_on_timeout()
                .timed_thread(vec![open, tick, open])
                .timed_thread(vec![open])
        },
        Tokens::default(),
    );
    let trace = counterexample(&dpor.outcome);
    assert!(
        trace.iter().any(|s| s.contains("timeout(open)")),
        "{trace:?}"
    );
    assert!(
        trace.last().unwrap().contains("chain(open) -> resumed"),
        "{trace:?}"
    );

    differential(
        || {
            let (sys, open, tick) = gated();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .timed_thread(vec![open, tick, open])
                .timed_thread(vec![open])
        },
        Tokens::default(),
    );
}

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Pool {
    busy: bool,
    fuse: bool,
}

fn leaky_pool() -> (ModelSystem<Pool>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let op = sys.method("op");
    let user = sys.method("use");
    let pool = || {
        aspects::reserve(
            |s: &Pool| !s.busy,
            |s: &mut Pool| s.busy = true,
            |s: &mut Pool| s.busy = false,
        )
    };
    sys.add_aspect(op, "bomb", aspects::panic_fuse(|s: &mut Pool| &mut s.fuse));
    sys.add_aspect(op, "pool", pool());
    sys.add_aspect(user, "pool", pool());
    sys.wire_wakes(op, vec![user]);
    sys.wire_wakes(user, vec![op]);
    (sys, op, user)
}

/// `leak_on_panic`: the stranded-waiter deadlock survives reduction
/// with the causal order intact (panic strictly before the stranded
/// block).
#[test]
fn dpor_leak_on_panic() {
    let armed = Pool {
        busy: false,
        fuse: true,
    };
    let (_, dpor) = differential(
        || {
            let (sys, op, user) = leaky_pool();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .sharded()
                .leak_on_panic()
                .thread(vec![op])
                .thread(vec![user])
        },
        armed.clone(),
    );
    let trace = counterexample(&dpor.outcome);
    let panicked = trace
        .iter()
        .position(|s| s.contains("-> panicked"))
        .unwrap_or_else(|| panic!("{trace:?}"));
    let blocked = trace
        .iter()
        .position(|s| s.contains("-> blocked"))
        .unwrap_or_else(|| panic!("{trace:?}"));
    assert!(panicked < blocked, "the leak strands the later caller");

    differential(
        || {
            let (sys, op, user) = leaky_pool();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .sharded()
                .thread(vec![op])
                .thread(vec![user])
                .final_invariant(|s: &Pool| !s.busy)
        },
        armed,
    );
}

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Units {
    avail: usize,
}

fn units() -> (ModelSystem<Units>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let take = sys.method("take");
    let refill = sys.method("refill");
    sys.add_aspect(
        take,
        "gate",
        aspects::from_fns(
            |s: &mut Units| {
                if s.avail > 0 {
                    s.avail -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |_| (),
        ),
    );
    sys.add_aspect(
        refill,
        "mint",
        aspects::from_fns(
            |_: &mut Units| ModelVerdict::Resume,
            |s: &mut Units| s.avail = 2,
            |_| (),
        ),
    );
    sys.wire_wakes(refill, vec![take]);
    sys.wire_wakes(take, vec![]);
    (sys, take, refill)
}

/// `split_batch_overtake` at its 3-thread minimum: the unordered
/// split-batch permits still corrupt the resume order under reduction.
#[test]
fn dpor_split_batch_overtake() {
    let (_, dpor) = differential(
        || {
            let (sys, take, refill) = units();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .split_batch_overtake()
                .thread(vec![take])
                .thread(vec![take])
                .timed_thread(vec![take, refill])
        },
        Units::default(),
    );
    let trace = counterexample(&dpor.outcome);
    let resumed = trace.last().unwrap();
    assert!(resumed.contains("chain(take) -> resumed"), "{trace:?}");
    assert!(
        trace
            .iter()
            .any(|s| s.contains("chain(take) -> blocked") && tid(s) != tid(resumed)),
        "{trace:?}"
    );

    differential(
        || {
            let (sys, take, refill) = units();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .batched_grants()
                .thread(vec![take])
                .thread(vec![take])
                .timed_thread(vec![take, refill])
        },
        Units::default(),
    );
}

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct SelfPool {
    busy: bool,
}

fn self_pool() -> (ModelSystem<SelfPool>, MethodIx) {
    let mut sys = ModelSystem::new();
    let op = sys.method("op");
    sys.add_aspect(
        op,
        "pool",
        aspects::reserve(
            |s: &SelfPool| !s.busy,
            |s: &mut SelfPool| s.busy = true,
            |s: &mut SelfPool| s.busy = false,
        ),
    );
    sys.wire_wakes(op, vec![]);
    (sys, op)
}

/// `seed_deadlock`: dropping the self-wake strands the second caller,
/// and the shrunk trace keeps its minimality under reduction.
#[test]
fn dpor_seed_deadlock() {
    let (_, dpor) = differential(
        || {
            let (sys, op) = self_pool();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .seed_deadlock()
                .thread(vec![op])
                .thread(vec![op])
        },
        SelfPool::default(),
    );
    let trace = counterexample(&dpor.outcome);
    assert!(
        trace.iter().any(|s| s.contains("chain(op) -> resumed")),
        "{trace:?}"
    );
    assert!(
        trace.iter().any(|s| s.contains("chain(op) -> blocked")),
        "{trace:?}"
    );
    assert!(
        trace.len() <= 4,
        "shrunk trace must stay minimal: {trace:?}"
    );

    differential(
        || {
            let (sys, op) = self_pool();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .thread(vec![op])
                .thread(vec![op])
                .final_invariant(|s: &SelfPool| !s.busy)
        },
        SelfPool::default(),
    );
}

/// `leaky_fast_path`: the fast admit past a queued waiter survives
/// reduction as the trace's final step, still shrunk to the park plus
/// the overtake.
#[test]
fn dpor_leaky_fast_path() {
    let (_, dpor) = differential(
        || {
            let (sys, open, _tick) = gated();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .fast_lane(open)
                .leaky_fast_path()
                .timed_thread(vec![open])
                .timed_thread(vec![open])
        },
        Tokens::default(),
    );
    let trace = counterexample(&dpor.outcome);
    let overtake = trace.last().unwrap();
    assert!(overtake.contains("fast-admit(open)"), "{trace:?}");
    let parked = trace
        .iter()
        .find(|s| s.contains("chain(open) -> blocked"))
        .unwrap_or_else(|| panic!("{trace:?}"));
    assert_ne!(tid(parked), tid(overtake), "{trace:?}");
    assert!(trace.len() <= 3, "{trace:?}");

    // Faithful lane discipline, including the notify-one wake mode —
    // the branching (multi-successor) steps that stress the reduction's
    // requirement that only *deterministic* steps ever commute.
    differential(
        || {
            let (sys, open, tick) = gated();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .fast_lane(open)
                .timed_thread(vec![open])
                .timed_thread(vec![tick, open])
        },
        Tokens::default(),
    );
    differential(
        || {
            let (sys, open, tick) = gated();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fifo()
                .check_fairness()
                .wake_one()
                .fast_lane(open)
                .timed_thread(vec![open])
                .timed_thread(vec![tick, open])
        },
        Tokens::default(),
    );
}

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Audit {
    panicked: bool,
    audited_after: usize,
    entered_after: usize,
}

fn audited() -> (ModelSystem<Audit>, MethodIx) {
    let mut sys = ModelSystem::new();
    let audit = sys.method("audit");
    sys.add_aspect(
        audit,
        "audit",
        aspects::from_fns(
            |s: &mut Audit| {
                if s.panicked {
                    s.audited_after += 1;
                    ModelVerdict::Resume
                } else {
                    s.panicked = true;
                    ModelVerdict::Panic
                }
            },
            |_| (),
            |_| (),
        ),
    );
    sys.set_body(audit, |s: &mut Audit| {
        if s.panicked {
            s.entered_after += 1;
        }
    });
    sys.wire_wakes(audit, vec![]);
    (sys, audit)
}

/// `stale_eligibility`: the post-panic fast admit is still caught by
/// the state invariant, with the panic before the admit in the trace.
#[test]
fn dpor_stale_eligibility() {
    let post_panic_audited = |s: &Audit| !s.panicked || s.entered_after <= s.audited_after;
    let (_, dpor) = differential(
        || {
            let (sys, audit) = audited();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fast_lane(audit)
                .stale_eligibility()
                .invariant(post_panic_audited)
                .thread(vec![audit, audit])
        },
        Audit::default(),
    );
    let trace = counterexample(&dpor.outcome);
    let panicked = trace
        .iter()
        .position(|s| s.contains("chain(audit) -> panicked"))
        .unwrap_or_else(|| panic!("{trace:?}"));
    let admitted = trace
        .iter()
        .position(|s| s.contains("fast-admit(audit)"))
        .unwrap_or_else(|| panic!("{trace:?}"));
    assert!(panicked < admitted, "{trace:?}");

    differential(
        || {
            let (sys, audit) = audited();
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .fast_lane(audit)
                .invariant(post_panic_audited)
                .thread(vec![audit, audit])
        },
        Audit::default(),
    );
}

// ---------------------------------------------------------------- //
// Reduction effectiveness + the CI regression gate.
// ---------------------------------------------------------------- //

/// On the canonical E13/E15 workload (capacity-1 buffer, step
/// invariant, broadcast wakes) the reduction must actually reduce —
/// not merely "not explore more".
#[test]
fn dpor_reduces_the_buffer_schedule_space() {
    let scenario = |pairs: usize| {
        move || {
            let mut sys = ModelSystem::new();
            let put = sys.method("put");
            let take = sys.method("take");
            sys.add_aspect(
                put,
                "sync",
                aspects::buffer_producer(
                    1,
                    |s: &mut Buf| &mut s.reserved,
                    |s: &mut Buf| &mut s.produced,
                    |s: &mut Buf| &mut s.producing,
                ),
            );
            sys.add_aspect(
                take,
                "sync",
                aspects::buffer_consumer(
                    |s: &mut Buf| &mut s.reserved,
                    |s: &mut Buf| &mut s.produced,
                    |s: &mut Buf| &mut s.consuming,
                ),
            );
            let mut checker = Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .invariant(|s: &Buf| s.reserved <= 1 && s.produced <= s.reserved);
            for _ in 0..pairs {
                checker = checker.thread(vec![put, put]);
                checker = checker.thread(vec![take, take]);
            }
            checker
        }
    };
    let (none, dpor) = differential(scenario(2), Buf::default());
    assert_eq!(none.outcome, Outcome::Ok);
    assert!(
        dpor.schedules * 5 <= none.schedules,
        "expected >=5x fewer schedules at 4x2: none={} dpor={}",
        none.schedules,
        dpor.schedules
    );
}

/// The CI gate: pinned exploration counts for the 2×2 buffer under
/// both policies. These constants change only when the exploration
/// order, the pruning, or the reduction bookkeeping changes — any such
/// change must re-justify verdict preservation and update them here.
#[test]
fn schedule_count_regression_gate() {
    let (none, dpor) = differential(
        || {
            let mut sys = ModelSystem::new();
            let put = sys.method("put");
            let take = sys.method("take");
            sys.add_aspect(
                put,
                "sync",
                aspects::buffer_producer(
                    1,
                    |s: &mut Buf| &mut s.reserved,
                    |s: &mut Buf| &mut s.produced,
                    |s: &mut Buf| &mut s.producing,
                ),
            );
            sys.add_aspect(
                take,
                "sync",
                aspects::buffer_consumer(
                    |s: &mut Buf| &mut s.reserved,
                    |s: &mut Buf| &mut s.produced,
                    |s: &mut Buf| &mut s.consuming,
                ),
            );
            Checker::new(sys)
                .strategy(Strategy::Exhaustive)
                .invariant(|s: &Buf| s.reserved <= 1 && s.produced <= s.reserved)
                .thread(vec![put, put])
                .thread(vec![take, take])
        },
        Buf::default(),
    );
    assert_eq!(none.outcome, Outcome::Ok);
    assert_eq!((none.states, none.schedules), (27, 14), "{none:?}");
    assert_eq!((dpor.states, dpor.schedules), (27, 5), "{dpor:?}");
}

//! Model-checking wake-order fairness (`FairnessPolicy::Fifo`): each
//! coordination cell serves parked waiters strictly first-parked-first-
//! served, and a newcomer cannot overtake a ticketed waiter whose
//! precondition would now resume. Following PR 2's wiring tests, the
//! discipline is verified *by ablation*: the faithful model passes the
//! `check_fairness` property, while
//!
//! * the default **barging** model (no `fifo()`),
//! * the **racy-handoff** ablation (newcomers bypass the queue check),
//! * the **overtake-on-timeout** ablation (a cancelled ticket wipes its
//!   successors' seniority)
//!
//! are each caught with a concrete overtake trace. Ablation scenarios
//! use timed threads throughout so no interleaving can end in
//! `Deadlock` — the only reportable defect is the fairness violation.

use amf_verify::{aspects, Checker, MethodIx, ModelSystem, ModelVerdict, Outcome};

/// A token gate: `open` consumes a token or blocks; `tick` mints one
/// and notifies `open`'s queue — the minimal shape in which wake order
/// is observable (one token, many parked openers).
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Tokens {
    avail: usize,
}

fn gated() -> (ModelSystem<Tokens>, MethodIx, MethodIx) {
    let mut sys = ModelSystem::new();
    let open = sys.method("open");
    let tick = sys.method("tick");
    sys.add_aspect(
        open,
        "gate",
        aspects::from_fns(
            |s: &mut Tokens| {
                if s.avail > 0 {
                    s.avail -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |s: &mut Tokens| s.avail += 1,
        ),
    );
    sys.add_aspect(
        tick,
        "mint",
        aspects::from_fns(
            |s: &mut Tokens| {
                s.avail += 1;
                ModelVerdict::Resume
            },
            |_| (),
            |_| (),
        ),
    );
    sys.wire_wakes(tick, vec![open]);
    sys.wire_wakes(open, vec![]);
    (sys, open, tick)
}

/// The fifo model proves no-overtake: across every interleaving of two
/// contending openers and a producer, no activation ever resumes past a
/// still-queued earlier waiter.
#[test]
fn fifo_proves_no_overtake() {
    let (sys, open, tick) = gated();
    let result = Checker::new(sys)
        .fifo()
        .check_fairness()
        .thread(vec![open])
        .thread(vec![open])
        .thread(vec![tick, tick])
        .run(Tokens::default());
    assert_eq!(result.outcome, Outcome::Ok);
    assert!(result.terminals >= 1);
}

/// No-overtake also holds under `NotifyOne` semantics: fifo wake
/// permits are persistent queue state, so the single-wake mode changes
/// nothing about order.
#[test]
fn fifo_proves_no_overtake_under_wake_one() {
    let (sys, open, tick) = gated();
    let result = Checker::new(sys)
        .fifo()
        .check_fairness()
        .wake_one()
        .thread(vec![open])
        .thread(vec![open])
        .thread(vec![tick, tick])
        .run(Tokens::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// Timed waiters cancel without ever enabling an overtake: a
/// surrendered ticket's successors keep their seniority.
#[test]
fn fifo_with_timed_waiters_stays_fair() {
    let (sys, open, tick) = gated();
    let result = Checker::new(sys)
        .fifo()
        .check_fairness()
        .timed_thread(vec![open])
        .timed_thread(vec![open])
        .thread(vec![tick])
        .run(Tokens::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// The default barging model is *caught* by the same property: a woken
/// later waiter (or newcomer) can grab the token ahead of the queue
/// front, and the checker produces the overtake trace. This is the
/// behavior `FairnessPolicy::Barging` admits and `Fifo` forbids.
#[test]
fn barging_model_is_caught() {
    let (sys, open, tick) = gated();
    let result = Checker::new(sys)
        .check_fairness()
        .thread(vec![open])
        .thread(vec![open])
        .thread(vec![tick, tick])
        .run(Tokens::default());
    match result.outcome {
        Outcome::FairnessViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            // An opener parked, and a *different* thread's `open`
            // resumed past it.
            let parked = rendered
                .iter()
                .find(|s| s.contains("chain(open) -> blocked"))
                .unwrap_or_else(|| panic!("{rendered:?}"));
            let resumed = rendered.last().unwrap();
            assert!(resumed.contains("chain(open) -> resumed"), "{rendered:?}");
            let tid = |s: &str| s.split(':').next().unwrap().to_string();
            assert_ne!(tid(parked), tid(resumed), "{rendered:?}");
        }
        other => panic!("expected fairness violation, got {other:?}"),
    }
}

/// Racy-handoff ablation: a newcomer evaluates its chain without
/// consulting the queue, takes the freshly minted token, and overtakes
/// the parked waiter — caught. The un-ablated fifo model on the exact
/// same scenario passes.
#[test]
fn racy_handoff_ablation_is_caught() {
    let (sys, open, tick) = gated();
    let ablated = Checker::new(sys)
        .fifo()
        .check_fairness()
        .racy_handoff()
        .timed_thread(vec![open])
        .timed_thread(vec![open])
        .thread(vec![tick])
        .run(Tokens::default());
    match ablated.outcome {
        Outcome::FairnessViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            assert!(
                rendered.last().unwrap().contains("chain(open) -> resumed"),
                "{rendered:?}"
            );
        }
        other => panic!("expected fairness violation, got {other:?}"),
    }

    let (sys, open, tick) = gated();
    let faithful = Checker::new(sys)
        .fifo()
        .check_fairness()
        .timed_thread(vec![open])
        .timed_thread(vec![open])
        .thread(vec![tick])
        .run(Tokens::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

/// Overtake-on-timeout ablation: a timed waiter that gives up wipes the
/// eligibility seniority of the waiter parked behind it, so a newcomer
/// barges ahead of a still-queued earlier waiter — caught, with the
/// cancellation visible in the trace. The un-ablated model, where a
/// cancelled ticket removes only itself, passes.
#[test]
fn overtake_on_timeout_ablation_is_caught() {
    let (sys, open, tick) = gated();
    let ablated = Checker::new(sys)
        .fifo()
        .check_fairness()
        .overtake_on_timeout()
        .timed_thread(vec![open])
        .timed_thread(vec![open])
        .timed_thread(vec![open])
        .thread(vec![tick])
        .run(Tokens::default());
    match ablated.outcome {
        Outcome::FairnessViolation(trace) => {
            let rendered: Vec<String> = trace.iter().map(ToString::to_string).collect();
            assert!(
                rendered.iter().any(|s| s.contains("timeout(open)")),
                "{rendered:?}"
            );
            assert!(
                rendered.last().unwrap().contains("chain(open) -> resumed"),
                "{rendered:?}"
            );
        }
        other => panic!("expected fairness violation, got {other:?}"),
    }

    let (sys, open, tick) = gated();
    let faithful = Checker::new(sys)
        .fifo()
        .check_fairness()
        .timed_thread(vec![open])
        .timed_thread(vec![open])
        .timed_thread(vec![open])
        .thread(vec![tick])
        .run(Tokens::default());
    assert_eq!(faithful.outcome, Outcome::Ok);
}

/// Fifo composes with the sharded protocol: the transient-reservation
/// shape from `tests/sharded.rs` (reserve, then block on a gate, then
/// roll back as a separate observable step) stays live and fair when
/// waiters are queued at decision time.
#[test]
fn fifo_composes_with_sharded_rollback() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Pool {
        busy: bool,
        gate: bool,
    }
    let mut sys = ModelSystem::new();
    let a = sys.method("a");
    let b = sys.method("b");
    let pool = || {
        aspects::reserve(
            |s: &Pool| !s.busy,
            |s: &mut Pool| s.busy = true,
            |s: &mut Pool| s.busy = false,
        )
    };
    sys.add_aspect(a, "gate", aspects::guard(|s: &Pool| s.gate));
    sys.add_aspect(a, "pool", pool());
    sys.add_aspect(b, "pool", pool());
    sys.set_body(b, |s: &mut Pool| s.gate = true);
    let result = Checker::new(sys)
        .sharded()
        .fifo()
        .check_fairness()
        .thread(vec![a])
        .thread(vec![b])
        .final_invariant(|s: &Pool| !s.busy)
        .run(Pool::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// The paper's wired producer/consumer pipeline stays live under fifo
/// in both wake modes — queueing newcomers must not introduce a
/// deadlock the barging model does not have.
#[test]
fn fifo_pipeline_is_live() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct Buf {
        reserved: usize,
        produced: usize,
        producing: bool,
        consuming: bool,
    }
    let build = || {
        let mut sys = ModelSystem::new();
        let put = sys.method("put");
        let take = sys.method("take");
        sys.add_aspect(
            put,
            "sync",
            aspects::buffer_producer(
                1,
                |s: &mut Buf| &mut s.reserved,
                |s: &mut Buf| &mut s.produced,
                |s: &mut Buf| &mut s.producing,
            ),
        );
        sys.add_aspect(
            take,
            "sync",
            aspects::buffer_consumer(
                |s: &mut Buf| &mut s.reserved,
                |s: &mut Buf| &mut s.produced,
                |s: &mut Buf| &mut s.consuming,
            ),
        );
        sys.wire_wakes(put, vec![take]);
        sys.wire_wakes(take, vec![put]);
        (sys, put, take)
    };
    let (sys, put, take) = build();
    let all = Checker::new(sys)
        .fifo()
        .check_fairness()
        .thread(vec![put, put])
        .thread(vec![take, take])
        .run(Buf::default());
    assert_eq!(all.outcome, Outcome::Ok);

    let (sys, put, take) = build();
    let one = Checker::new(sys)
        .fifo()
        .check_fairness()
        .wake_one()
        .thread(vec![put, put])
        .thread(vec![take, take])
        .run(Buf::default());
    assert_eq!(one.outcome, Outcome::Ok);
}

//! Model checking the multi-moderator lease handoff — the exhaustive
//! twin of `amf-sim`'s `MultiModeratorTopology` scenario (a ring of
//! independent moderators joined by reorderable, droppable handoff
//! channels; see `crates/sim/src/scenario.rs`).
//!
//! The model folds two nodes and the channel between them into one
//! [`ModelSystem`]: node A's worker `send`s leases into the channel,
//! a courier `deliver`s them to node B, and node B's worker `recv`s
//! each granted lease. The property under check is cross-node **FIFO
//! no-overtake**: node B receives leases in exactly the order node A
//! sent them, stated as the invariant `b_recv == sent[..b_recv.len()]`
//! after every atomic step.
//!
//! Three model variants, each run under *both* reduction policies so
//! the DPOR layer is differential-tested on cross-moderator traffic:
//!
//! * faithful — the courier delivers in sequence order (what the sim
//!   courier's reassembly cursor enforces): every interleaving keeps
//!   the invariant and terminates.
//! * LIFO ablation — the courier delivers the *newest* in-flight
//!   message first (a transport that reorders without reassembly):
//!   caught as an invariant violation with a shrunk overtake trace.
//! * dropped-handoff ablation — one message vanishes in flight (the
//!   sim's `drop_nth`): node B's worker waits for a grant that never
//!   comes, caught as a deadlock with a shrunk trace.
//!
//! The last test is the persistent-set showcase the reduction earns
//! its keep on: two *disjoint* handoff rings declared via
//! [`ModelSystem::set_region`] explore compositionally under
//! [`ReductionPolicy::Dpor`] instead of multiplicatively.

use std::mem::discriminant;

use amf_verify::{
    aspects, Checker, Exploration, ModelSystem, ModelVerdict, Outcome, ReductionPolicy, Step,
};

/// Runs the same scenario under both policies and asserts the
/// differential contract (same as `tests/dpor.rs`): identical verdict
/// kind, never more schedules under Dpor, and identical state coverage
/// when the scenario passes.
fn differential<S, F>(build: F, initial: S) -> (Exploration, Exploration)
where
    S: Clone + Eq + std::hash::Hash,
    F: Fn() -> Checker<S>,
{
    let none = build()
        .reduction(ReductionPolicy::None)
        .run(initial.clone());
    let dpor = build().reduction(ReductionPolicy::Dpor).run(initial);
    assert_eq!(
        discriminant(&none.outcome),
        discriminant(&dpor.outcome),
        "verdicts must agree: none={:?} dpor={:?}",
        none.outcome,
        dpor.outcome
    );
    assert!(
        dpor.schedules <= none.schedules,
        "reduction explored more schedules: none={} dpor={}",
        none.schedules,
        dpor.schedules
    );
    if none.outcome == Outcome::Ok {
        assert_eq!(
            none.states, dpor.states,
            "sleep sets must preserve state coverage on passing scenarios"
        );
    }
    (none, dpor)
}

/// The shrunk counterexample of a failing outcome, rendered.
fn counterexample(outcome: &Outcome) -> Vec<String> {
    let steps: &[Step] = match outcome {
        Outcome::Deadlock(t)
        | Outcome::InvariantViolation(t)
        | Outcome::FinalInvariantViolation(t)
        | Outcome::FairnessViolation(t) => t,
        other => panic!("expected a counterexample-bearing outcome, got {other:?}"),
    };
    assert!(!steps.is_empty(), "shrunk trace must be non-empty");
    steps.iter().map(ToString::to_string).collect()
}

// ------------------------------------------------------------------ //
// The 2-node handoff model.
// ------------------------------------------------------------------ //

/// How the handoff transport (mis)behaves.
#[derive(Clone, Copy, PartialEq)]
enum Courier {
    /// The courier holds a reassembly cursor and delivers strictly in
    /// sequence order — what the sim courier enforces.
    Fifo,
    /// Newest-first — a reordering transport with no reassembly.
    Lifo,
    /// Reassembly cursor, but the first message vanishes in flight
    /// (the sim's `drop_nth`): the cursor starves.
    DropFirst,
}

/// Two moderator nodes and the channel from A to B, folded into one
/// shared model state.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Net {
    /// Leases ready at node A's worker (decremented by `send`).
    a_ready: u8,
    /// Next lease id node A stamps.
    next_id: u8,
    /// Send order, append-only (the FIFO reference).
    sent: Vec<u8>,
    /// In flight, sender order.
    channel: Vec<u8>,
    /// Delivery order at node B — the invariant compares this against
    /// `sent`.
    b_recv: Vec<u8>,
    /// Granted-but-unconsumed leases at node B.
    b_avail: u8,
    /// `DropFirst` fuse: the drop fires once.
    dropped: bool,
}

/// No overtake: at every step, what B has received is exactly the
/// prefix of what A sent.
fn fifo_invariant(s: &Net) -> bool {
    s.b_recv.len() <= s.sent.len() && s.b_recv[..] == s.sent[..s.b_recv.len()]
}

fn handoff(courier: Courier, leases: u8) -> Checker<Net> {
    let mut sys = ModelSystem::new();
    let send = sys.method("send");
    let deliver = sys.method("deliver");
    let recv = sys.method("recv");

    // Node A's worker: take a ready lease, stamp and send it.
    sys.add_aspect(
        send,
        "lease-gate",
        aspects::from_fns(
            |s: &mut Net| {
                if s.a_ready > 0 {
                    s.a_ready -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |s: &mut Net| s.a_ready += 1,
        ),
    );
    sys.set_body(send, move |s: &mut Net| {
        let id = s.next_id;
        s.next_id += 1;
        s.sent.push(id);
        if courier == Courier::DropFirst && !s.dropped {
            s.dropped = true;
            return; // lost in flight: sent, never arrives
        }
        s.channel.push(id);
    });

    // The courier: wait for deliverable traffic, then deliver per the
    // variant. Under reassembly, "deliverable" means the next expected
    // sequence number has arrived — exactly the sim courier's cursor.
    let deliverable = move |s: &Net| match courier {
        Courier::Fifo | Courier::DropFirst => s.channel.contains(&(s.b_recv.len() as u8)),
        Courier::Lifo => !s.channel.is_empty(),
    };
    sys.add_aspect(deliver, "channel-gate", aspects::guard(deliverable));
    sys.set_body(deliver, move |s: &mut Net| {
        let lease = match courier {
            Courier::Fifo | Courier::DropFirst => {
                let want = s.b_recv.len() as u8;
                let pos = s
                    .channel
                    .iter()
                    .position(|&l| l == want)
                    .expect("guarded deliverable");
                s.channel.remove(pos)
            }
            Courier::Lifo => s.channel.pop().expect("guarded non-empty"),
        };
        s.b_recv.push(lease);
        s.b_avail += 1;
    });

    // Node B's worker: consume a granted lease.
    sys.add_aspect(
        recv,
        "grant-gate",
        aspects::from_fns(
            |s: &mut Net| {
                if s.b_avail > 0 {
                    s.b_avail -= 1;
                    ModelVerdict::Resume
                } else {
                    ModelVerdict::Block
                }
            },
            |_| (),
            |s: &mut Net| s.b_avail += 1,
        ),
    );

    sys.wire_wakes(send, vec![deliver]);
    sys.wire_wakes(deliver, vec![recv]);
    sys.wire_wakes(recv, vec![]);

    let n = leases as usize;
    Checker::new(sys)
        .invariant(fifo_invariant)
        .thread(vec![send; n])
        .thread(vec![deliver; n])
        .thread(vec![recv; n])
}

fn initial(leases: u8) -> Net {
    Net {
        a_ready: leases,
        ..Net::default()
    }
}

/// Faithful handoff: FIFO no-overtake holds on *every* interleaving of
/// both nodes' protocol steps, under both reduction policies, with
/// identical state coverage — the model-checked mirror of the sim's
/// byte-identical record→replay run.
#[test]
fn fifo_handoff_has_no_overtake() {
    let (none, dpor) = differential(|| handoff(Courier::Fifo, 2), initial(2));
    assert_eq!(none.outcome, Outcome::Ok, "{:?}", none.outcome);
    assert!(
        dpor.schedules < none.schedules,
        "cross-node traffic must still reduce: none={} dpor={}",
        none.schedules,
        dpor.schedules
    );
}

/// A courier that delivers newest-first overtakes: caught as an
/// invariant violation, same verdict under both policies, and the
/// shrunk trace pins the offense on a `deliver` step.
#[test]
fn lifo_courier_overtakes() {
    let (none, _dpor) = differential(|| handoff(Courier::Lifo, 2), initial(2));
    match &none.outcome {
        Outcome::InvariantViolation(_) => {}
        other => panic!("expected overtake, got {other:?}"),
    }
    let trace = counterexample(&none.outcome);
    assert!(
        trace.iter().any(|s| s.contains("deliver")),
        "the overtaking delivery must be in the shrunk trace: {trace:?}"
    );
    // Overtaking needs both sends before the first delivery.
    assert!(
        trace.iter().filter(|s| s.contains("send")).count() >= 2,
        "{trace:?}"
    );
}

/// A dropped handoff starves the courier's reassembly cursor and with
/// it node B's worker — never an overtake (the invariant holds in
/// every reached state), but a deadlock with a shrunk trace: the model
/// twin of the sim's `drop_nth` ablation ending in a detected
/// scheduler deadlock.
#[test]
fn dropped_handoff_deadlocks_the_receiver() {
    let (none, dpor) = differential(|| handoff(Courier::DropFirst, 2), initial(2));
    for (label, outcome) in [("none", &none.outcome), ("dpor", &dpor.outcome)] {
        match outcome {
            Outcome::Deadlock(_) => {}
            other => panic!("{label}: expected deadlock, got {other:?}"),
        }
    }
    let trace = counterexample(&dpor.outcome);
    assert!(
        trace.iter().any(|s| s.contains("send")),
        "the dropping send must be in the shrunk trace: {trace:?}"
    );
}

// ------------------------------------------------------------------ //
// Persistent sets across disjoint rings.
// ------------------------------------------------------------------ //

/// Two independent handoff pipelines in one model, with every method's
/// shared-state footprint declared via `set_region`.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct TwoRings {
    a: u8,
    b: u8,
}

/// Disjoint rings explore compositionally: with the two pipelines
/// declared region-disjoint (the model-level `AspectCapabilities`
/// contract), the persistent-set layer defers the whole second ring
/// while the first runs, so Dpor explores a fraction of the
/// interleaving product. No invariant is configured — a step
/// invariant has to observe every intermediate state, which is
/// exactly when the persistent filter stays inert — so here, unlike
/// the sleep-set-only scenarios, the *state* count legitimately
/// shrinks too (cross-ring product states are never materialized);
/// the differential contract is verdict equality and schedule
/// reduction, asserted directly.
#[test]
fn disjoint_rings_reduce_compositionally() {
    let build = || {
        let mut sys = ModelSystem::new();
        let put_a = sys.method("put_a");
        let get_a = sys.method("get_a");
        let put_b = sys.method("put_b");
        let get_b = sys.method("get_b");
        sys.set_body(put_a, |s: &mut TwoRings| s.a += 1);
        sys.add_aspect(
            get_a,
            "gate",
            aspects::from_fns(
                |s: &mut TwoRings| {
                    if s.a > 0 {
                        s.a -= 1;
                        ModelVerdict::Resume
                    } else {
                        ModelVerdict::Block
                    }
                },
                |_| (),
                |s: &mut TwoRings| s.a += 1,
            ),
        );
        sys.set_body(put_b, |s: &mut TwoRings| s.b += 1);
        sys.add_aspect(
            get_b,
            "gate",
            aspects::from_fns(
                |s: &mut TwoRings| {
                    if s.b > 0 {
                        s.b -= 1;
                        ModelVerdict::Resume
                    } else {
                        ModelVerdict::Block
                    }
                },
                |_| (),
                |s: &mut TwoRings| s.b += 1,
            ),
        );
        sys.wire_wakes(put_a, vec![get_a]);
        sys.wire_wakes(get_a, vec![]);
        sys.wire_wakes(put_b, vec![get_b]);
        sys.wire_wakes(get_b, vec![]);
        sys.set_region(put_a, 0);
        sys.set_region(get_a, 0);
        sys.set_region(put_b, 1);
        sys.set_region(get_b, 1);
        Checker::new(sys)
            .thread(vec![put_a, put_a])
            .thread(vec![get_a, get_a])
            .thread(vec![put_b, put_b])
            .thread(vec![get_b, get_b])
    };
    let none = build()
        .reduction(ReductionPolicy::None)
        .run(TwoRings::default());
    let dpor = build()
        .reduction(ReductionPolicy::Dpor)
        .run(TwoRings::default());
    assert_eq!(none.outcome, Outcome::Ok);
    assert_eq!(dpor.outcome, Outcome::Ok);
    assert!(
        dpor.states <= none.states,
        "persistent sets never add states: none={} dpor={}",
        none.states,
        dpor.states
    );
    assert!(
        dpor.schedules * 4 <= none.schedules,
        "region-disjoint rings must reduce at least 4x: none={} dpor={}",
        none.schedules,
        dpor.schedules
    );
}

//! Probe for the DPOR reduction factor on the canonical capacity-1
//! producer/consumer scenario (the E13/E15 workload), at bounds given
//! on the command line:
//!
//! ```text
//! cargo run -p amf-verify --release --example reduction_probe -- \
//!     <pairs> <ops> [max-states-log2 (default 23)] [none|dpor|both]
//! ```
//!
//! prints states / schedules / terminals / wall for the selected
//! [`ReductionPolicy`] values at `pairs`×`ops`.

use std::time::Instant;

use amf_verify::{aspects, Checker, ModelSystem, ReductionPolicy, Strategy};

#[derive(Clone, PartialEq, Eq, Hash, Default)]
struct Buf {
    reserved: usize,
    produced: usize,
    producing: bool,
    consuming: bool,
}

fn explore(pairs: usize, ops: usize, policy: ReductionPolicy, max_states: usize) {
    let capacity = 1;
    let mut sys = ModelSystem::new();
    let put = sys.method("put");
    let take = sys.method("take");
    sys.add_aspect(
        put,
        "sync",
        aspects::buffer_producer(
            capacity,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        ),
    );
    sys.add_aspect(
        take,
        "sync",
        aspects::buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        ),
    );
    let mut checker = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .reduction(policy)
        .max_states(max_states)
        .invariant(move |s: &Buf| s.reserved <= capacity && s.produced <= s.reserved);
    for _ in 0..pairs {
        checker = checker.thread(vec![put; ops]);
        checker = checker.thread(vec![take; ops]);
    }
    let start = Instant::now();
    let r = checker.run(Buf::default());
    println!(
        "{policy:?}: states={} schedules={} terminals={} outcome={:?} wall={:.2}s",
        r.states,
        r.schedules,
        r.terminals,
        r.outcome,
        start.elapsed().as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let num = |i: usize, d: usize| args.get(i).and_then(|a| a.parse().ok()).unwrap_or(d);
    let (pairs, ops, bits) = (num(0, 2), num(1, 2), num(2, 23));
    let which = args.get(3).map(String::as_str).unwrap_or("both");
    println!(
        "bounds: {}x{} ({} threads, {} ops each), max_states 2^{bits}",
        2 * pairs,
        ops,
        2 * pairs,
        ops
    );
    if which != "dpor" {
        explore(pairs, ops, ReductionPolicy::None, 1 << bits);
    }
    if which != "none" {
        explore(pairs, ops, ReductionPolicy::Dpor, 1 << bits);
    }
}

//! The tangled *secure* bounded buffer: authentication, audit and
//! synchronization braided through the functional methods.
//!
//! Compare with the framework version: extending
//! [`TangledBuffer`](crate::TangledBuffer) with authentication required
//! **rewriting the whole monitor** — none of it could be reused —
//! whereas the moderated
//! system added one factory and two registrations (see experiment E8).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use parking_lot::{Condvar, Mutex};

/// Failures of the tangled secure buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TangledError {
    /// Credentials rejected at login.
    BadCredentials,
    /// The token presented to `put`/`take` is not a live session.
    InvalidToken,
}

impl fmt::Display for TangledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TangledError::BadCredentials => f.write_str("bad credentials"),
            TangledError::InvalidToken => f.write_str("invalid token"),
        }
    }
}

impl Error for TangledError {}

#[derive(Debug)]
struct State<T> {
    // Functional state...
    items: std::collections::VecDeque<T>,
    capacity: usize,
    // ...tangled with security state...
    passwords: HashMap<String, String>,
    sessions: HashMap<u64, String>,
    next_token: u64,
    // ...tangled with audit state.
    audit: Vec<String>,
}

/// Bounded buffer with authentication and audit checks written inline —
/// the "composition anomaly" exhibit.
pub struct TangledSecureBuffer<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> fmt::Debug for TangledSecureBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("TangledSecureBuffer")
            .field("len", &st.items.len())
            .field("sessions", &st.sessions.len())
            .field("audit_entries", &st.audit.len())
            .finish()
    }
}

impl<T> TangledSecureBuffer<T> {
    /// Creates a buffer of `capacity` slots with an empty user registry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: std::collections::VecDeque::with_capacity(capacity),
                capacity,
                passwords: HashMap::new(),
                sessions: HashMap::new(),
                next_token: 1,
                audit: Vec::new(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Registers a user (plaintext storage — part of the exhibit).
    pub fn add_user(&self, name: &str, password: &str) {
        let mut st = self.state.lock();
        st.passwords.insert(name.to_string(), password.to_string());
    }

    /// Verifies credentials and opens a session.
    ///
    /// # Errors
    ///
    /// [`TangledError::BadCredentials`].
    pub fn login(&self, name: &str, password: &str) -> Result<u64, TangledError> {
        let mut st = self.state.lock();
        if st.passwords.get(name).map(String::as_str) != Some(password) {
            return Err(TangledError::BadCredentials);
        }
        let token = st.next_token;
        st.next_token += 1;
        st.sessions.insert(token, name.to_string());
        Ok(token)
    }

    /// Authenticated blocking insert: token check, wait-while-full,
    /// insert and audit — all in one method body.
    ///
    /// # Errors
    ///
    /// [`TangledError::InvalidToken`].
    pub fn put(&self, token: u64, value: T) -> Result<(), TangledError> {
        let mut st = self.state.lock();
        // Security concern, inline:
        let Some(user) = st.sessions.get(&token).cloned() else {
            st.audit.push(format!("DENIED put token={token}"));
            return Err(TangledError::InvalidToken);
        };
        // Synchronization concern, inline:
        while st.items.len() == st.capacity {
            self.not_full.wait(&mut st);
            // Re-validate after waking: the session may have been revoked.
            if !st.sessions.contains_key(&token) {
                st.audit.push(format!("DENIED put token={token} (revoked)"));
                return Err(TangledError::InvalidToken);
            }
        }
        // Functional concern, finally:
        st.items.push_back(value);
        // Audit concern, inline:
        st.audit.push(format!("put by {user}"));
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Authenticated blocking removal.
    ///
    /// # Errors
    ///
    /// [`TangledError::InvalidToken`].
    pub fn take(&self, token: u64) -> Result<T, TangledError> {
        let mut st = self.state.lock();
        let Some(user) = st.sessions.get(&token).cloned() else {
            st.audit.push(format!("DENIED take token={token}"));
            return Err(TangledError::InvalidToken);
        };
        loop {
            if let Some(v) = st.items.pop_front() {
                st.audit.push(format!("take by {user}"));
                drop(st);
                self.not_full.notify_one();
                return Ok(v);
            }
            self.not_empty.wait(&mut st);
            if !st.sessions.contains_key(&token) {
                st.audit
                    .push(format!("DENIED take token={token} (revoked)"));
                return Err(TangledError::InvalidToken);
            }
        }
    }

    /// Revokes a session, waking any of its blocked calls.
    pub fn logout(&self, token: u64) {
        let mut st = self.state.lock();
        st.sessions.remove(&token);
        drop(st);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the inline audit trail.
    pub fn audit(&self) -> Vec<String> {
        self.state.lock().audit.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn secured() -> (TangledSecureBuffer<u32>, u64) {
        let b = TangledSecureBuffer::new(2);
        b.add_user("alice", "pw");
        let token = b.login("alice", "pw").unwrap();
        (b, token)
    }

    #[test]
    fn authenticated_roundtrip() {
        let (b, token) = secured();
        b.put(token, 7).unwrap();
        assert_eq!(b.take(token), Ok(7));
        let audit = b.audit();
        assert_eq!(audit, vec!["put by alice", "take by alice"]);
    }

    #[test]
    fn bad_login_and_bad_token() {
        let (b, _token) = secured();
        assert_eq!(b.login("alice", "xx"), Err(TangledError::BadCredentials));
        assert_eq!(b.login("eve", "pw"), Err(TangledError::BadCredentials));
        assert_eq!(b.put(999, 1), Err(TangledError::InvalidToken));
        assert_eq!(b.take(999).unwrap_err(), TangledError::InvalidToken);
        assert!(b.audit().iter().any(|l| l.starts_with("DENIED")));
    }

    #[test]
    fn logout_revokes() {
        let (b, token) = secured();
        b.put(token, 1).unwrap();
        b.logout(token);
        assert_eq!(b.put(token, 2), Err(TangledError::InvalidToken));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn blocked_put_fails_after_revocation() {
        let (b, token) = secured();
        let b = Arc::new(b);
        b.put(token, 1).unwrap();
        b.put(token, 2).unwrap(); // full
        let blocked = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.put(token, 3))
        };
        thread::sleep(Duration::from_millis(10));
        b.logout(token);
        assert_eq!(blocked.join().unwrap(), Err(TangledError::InvalidToken));
    }

    #[test]
    fn concurrent_traffic_balances() {
        let (b, token) = secured();
        let b = Arc::new(b);
        let n = 500;
        let producer = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                for i in 0..n {
                    b.put(token, i).unwrap();
                }
            })
        };
        let consumer = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                for _ in 0..n {
                    b.take(token).unwrap();
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert_eq!(b.len(), 0);
        assert_eq!(b.audit().len() as u32, n * 2);
    }
}

//! # Hand-tangled baselines
//!
//! The paper's argument is that interaction concerns (synchronization,
//! security, audits, ...) written *inline* with functional code —
//! "code-tangling" — destroy modularity and reuse. This crate is the
//! "before" picture: the same components the framework builds from
//! separated concerns, written the tangled way.
//!
//! They serve two purposes:
//!
//! 1. **Correctness oracles** — differential tests check the moderated
//!    systems against these under identical workloads.
//! 2. **Performance baselines** — experiments E1/E2/E8 measure what the
//!    framework's indirection costs relative to a hand-fused monitor.
//!
//! Note what the tangling *looks like* here: [`TangledSecureBuffer`]
//! re-implements the same monitor as [`TangledBuffer`] because the
//! security checks are braided through `put`/`take` and cannot be
//! composed in — exactly the reuse failure the paper describes.

#![warn(missing_docs)]

pub mod auth_buffer;
pub mod buffer;

pub use auth_buffer::{TangledError, TangledSecureBuffer};
pub use buffer::TangledBuffer;

//! The tangled bounded buffer: a classic hand-written monitor where the
//! producer/consumer synchronization is fused into the functional code.

use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

#[derive(Debug)]
struct State<T> {
    items: std::collections::VecDeque<T>,
    capacity: usize,
    total_put: u64,
    total_taken: u64,
}

/// Blocking bounded buffer with synchronization tangled into `put` and
/// `take` — the monitor a careful engineer writes without the framework.
///
/// ```
/// use amf_baseline::TangledBuffer;
///
/// let b = TangledBuffer::new(2);
/// b.put(1);
/// assert_eq!(b.take(), 1);
/// ```
pub struct TangledBuffer<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> fmt::Debug for TangledBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("TangledBuffer")
            .field("len", &st.items.len())
            .field("capacity", &st.capacity)
            .finish()
    }
}

impl<T> TangledBuffer<T> {
    /// Creates a buffer of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: std::collections::VecDeque::with_capacity(capacity),
                capacity,
                total_put: 0,
                total_taken: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocking insert; waits while full.
    pub fn put(&self, value: T) {
        let mut st = self.state.lock();
        while st.items.len() == st.capacity {
            self.not_full.wait(&mut st);
        }
        st.items.push_back(value);
        st.total_put += 1;
        drop(st);
        self.not_empty.notify_one();
    }

    /// Blocking removal; waits while empty.
    pub fn take(&self) -> T {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.items.pop_front() {
                st.total_taken += 1;
                drop(st);
                self.not_full.notify_one();
                return v;
            }
            self.not_empty.wait(&mut st);
        }
    }

    /// Insert with a bounded wait; hands the value back on timeout.
    pub fn put_timeout(&self, value: T, timeout: Duration) -> Result<(), T> {
        let mut st = self.state.lock();
        while st.items.len() == st.capacity {
            if self.not_full.wait_for(&mut st, timeout).timed_out() && st.items.len() == st.capacity
            {
                return Err(value);
            }
        }
        st.items.push_back(value);
        st.total_put += 1;
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Removal with a bounded wait.
    pub fn take_timeout(&self, timeout: Duration) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.items.pop_front() {
                st.total_taken += 1;
                drop(st);
                self.not_full.notify_one();
                return Some(v);
            }
            if self.not_empty.wait_for(&mut st, timeout).timed_out() && st.items.is_empty() {
                return None;
            }
        }
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (total put, total taken) since construction.
    pub fn totals(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.total_put, st.total_taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let b = TangledBuffer::new(4);
        for i in 0..4 {
            b.put(i);
        }
        for i in 0..4 {
            assert_eq!(b.take(), i);
        }
    }

    #[test]
    fn put_blocks_when_full() {
        let b = Arc::new(TangledBuffer::new(1));
        b.put(1);
        let p = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.put(2))
        };
        thread::sleep(Duration::from_millis(10));
        assert_eq!(b.len(), 1);
        assert_eq!(b.take(), 1);
        p.join().unwrap();
        assert_eq!(b.take(), 2);
    }

    #[test]
    fn timeouts() {
        let b = TangledBuffer::new(1);
        assert_eq!(b.take_timeout(Duration::from_millis(10)), None);
        b.put(1);
        assert_eq!(b.put_timeout(2, Duration::from_millis(10)), Err(2));
        assert_eq!(b.take_timeout(Duration::from_millis(10)), Some(1));
        assert_eq!(b.put_timeout(2, Duration::from_millis(10)), Ok(()));
    }

    #[test]
    fn concurrent_totals_balance() {
        let b = Arc::new(TangledBuffer::new(8));
        let n: u64 = 2_000;
        let producer = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                for i in 0..n {
                    b.put(i);
                }
            })
        };
        let consumer = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let mut sum = 0_u64;
                for _ in 0..n {
                    sum += b.take();
                }
                sum
            })
        };
        producer.join().unwrap();
        let sum = consumer.join().unwrap();
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(b.totals(), (n, n));
        assert!(b.is_empty());
    }
}

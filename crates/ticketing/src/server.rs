//! The functional component: a **sequential** ticket server.
//!
//! Faithful to the paper's Figure 7 shape: a bounded buffer addressed by
//! explicit `open_ptr`/`assign_ptr` cursors plus a `no_items` count. The
//! type contains *zero* synchronization — all concurrency constraints
//! live in the synchronization aspects — so misuse (opening when full)
//! is a programming error surfaced by `Result`, never a wait.

use crate::ticket::Ticket;

/// Error from using the sequential server outside its preconditions —
/// only reachable when the server is driven *without* its guarding
/// aspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerError {
    /// `open` on a full buffer.
    Full,
    /// `assign` on an empty buffer.
    Empty,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Full => f.write_str("ticket buffer is full"),
            ServerError::Empty => f.write_str("ticket buffer is empty"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Bounded ticket store with the paper's cursor layout.
#[derive(Debug, Clone)]
pub struct TicketServer {
    slots: Vec<Option<Ticket>>,
    capacity: usize,
    no_items: usize,
    open_ptr: usize,
    assign_ptr: usize,
    total_opened: u64,
    total_assigned: u64,
}

impl TicketServer {
    /// Creates a server holding at most `capacity` open tickets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ticket server capacity must be positive");
        Self {
            slots: vec![None; capacity],
            capacity,
            no_items: 0,
            open_ptr: 0,
            assign_ptr: 0,
            total_opened: 0,
            total_assigned: 0,
        }
    }

    /// Maximum number of simultaneously open tickets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently open (unassigned) tickets — the paper's `noItems`.
    pub fn len(&self) -> usize {
        self.no_items
    }

    /// Whether no tickets are waiting.
    pub fn is_empty(&self) -> bool {
        self.no_items == 0
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.no_items == self.capacity
    }

    /// Tickets ever opened.
    pub fn total_opened(&self) -> u64 {
        self.total_opened
    }

    /// Tickets ever assigned.
    pub fn total_assigned(&self) -> u64 {
        self.total_assigned
    }

    /// Places a ticket — the paper's `open(ticket)` participating method.
    ///
    /// # Errors
    ///
    /// [`ServerError::Full`] when the buffer is at capacity (unreachable
    /// under aspect guarding).
    pub fn open(&mut self, ticket: Ticket) -> Result<(), ServerError> {
        if self.is_full() {
            return Err(ServerError::Full);
        }
        debug_assert!(self.slots[self.open_ptr].is_none(), "cursor invariant");
        self.slots[self.open_ptr] = Some(ticket);
        self.open_ptr = (self.open_ptr + 1) % self.capacity;
        self.no_items += 1;
        self.total_opened += 1;
        Ok(())
    }

    /// Retrieves the oldest ticket — the paper's `assign()` participating
    /// method.
    ///
    /// # Errors
    ///
    /// [`ServerError::Empty`] when no ticket is waiting (unreachable
    /// under aspect guarding).
    pub fn assign(&mut self) -> Result<Ticket, ServerError> {
        if self.is_empty() {
            return Err(ServerError::Empty);
        }
        let ticket = self.slots[self.assign_ptr]
            .take()
            .expect("non-empty buffer has a ticket at assign_ptr");
        self.assign_ptr = (self.assign_ptr + 1) % self.capacity;
        self.no_items -= 1;
        self.total_assigned += 1;
        Ok(ticket)
    }

    /// Peeks at the ticket `assign` would return next.
    pub fn peek(&self) -> Option<&Ticket> {
        self.slots[self.assign_ptr].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64) -> Ticket {
        Ticket::new(id, format!("issue {id}"))
    }

    #[test]
    fn open_then_assign_is_fifo() {
        let mut s = TicketServer::new(3);
        s.open(t(1)).unwrap();
        s.open(t(2)).unwrap();
        assert_eq!(s.assign().unwrap().id.0, 1);
        s.open(t(3)).unwrap();
        assert_eq!(s.assign().unwrap().id.0, 2);
        assert_eq!(s.assign().unwrap().id.0, 3);
    }

    #[test]
    fn full_and_empty_errors() {
        let mut s = TicketServer::new(1);
        assert_eq!(s.assign(), Err(ServerError::Empty));
        s.open(t(1)).unwrap();
        assert_eq!(s.open(t(2)), Err(ServerError::Full));
        assert!(s.is_full());
        s.assign().unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn cursors_wrap_around() {
        let mut s = TicketServer::new(2);
        for round in 0..10 {
            s.open(t(round)).unwrap();
            assert_eq!(s.assign().unwrap().id.0, round);
        }
        assert_eq!(s.total_opened(), 10);
        assert_eq!(s.total_assigned(), 10);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut s = TicketServer::new(2);
        s.open(t(9)).unwrap();
        assert_eq!(s.peek().unwrap().id.0, 9);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn error_display() {
        assert_eq!(ServerError::Full.to_string(), "ticket buffer is full");
        assert_eq!(ServerError::Empty.to_string(), "ticket buffer is empty");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TicketServer::new(0);
    }
}

//! `TicketServerProxy`: the component proxy of the paper's Figures 5
//! and 10.
//!
//! Construction follows Figure 5 exactly: the proxy asks the factory to
//! *create* the two synchronization aspects and the moderator to
//! *register* them, then wires the paper's notification graph (open's
//! completion wakes assign's queue and vice versa). Invocation follows
//! Figure 10: pre-activation, the sequential method, post-activation.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use amf_aspects::sync::BufferSyncHandle;
use amf_core::{
    AbortError, AspectFactory, AspectModerator, Concern, InvocationContext, MethodHandle, MethodId,
    Moderated, RegistrationError,
};

use crate::factory::{TicketSyncFactory, ASSIGN, OPEN};
use crate::server::TicketServer;
use crate::ticket::Ticket;

/// The moderated trouble-ticketing server.
///
/// ```
/// use amf_core::AspectModerator;
/// use amf_ticketing::{Ticket, TicketServerProxy};
///
/// let proxy = TicketServerProxy::new(4, AspectModerator::shared()).unwrap();
/// proxy.open(Ticket::new(1, "printer jam")).unwrap();
/// let t = proxy.assign().unwrap();
/// assert_eq!(t.id.0, 1);
/// ```
pub struct TicketServerProxy {
    pub(crate) inner: Moderated<TicketServer>,
    pub(crate) open: MethodHandle,
    pub(crate) assign: MethodHandle,
    buffer: BufferSyncHandle,
}

impl fmt::Debug for TicketServerProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketServerProxy")
            .field("buffer", &self.buffer.snapshot())
            .finish()
    }
}

impl TicketServerProxy {
    /// Builds a proxy over a fresh server of `capacity` slots, using the
    /// standard synchronization factory.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`] from aspect registration (only
    /// possible if `moderator` already had conflicting registrations).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(
        capacity: usize,
        moderator: Arc<AspectModerator>,
    ) -> Result<Self, RegistrationError> {
        let factory = TicketSyncFactory::new(capacity);
        Self::with_factory(capacity, moderator, &factory, factory.buffer_handle())
    }

    /// Builds a proxy whose aspects come from a caller-supplied factory
    /// (the extension point used by the extended proxy).
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`] from creation or registration.
    pub fn with_factory(
        capacity: usize,
        moderator: Arc<AspectModerator>,
        factory: &dyn AspectFactory,
        buffer: BufferSyncHandle,
    ) -> Result<Self, RegistrationError> {
        let open = moderator.declare_method(MethodId::new(OPEN));
        let assign = moderator.declare_method(MethodId::new(ASSIGN));
        // Figure 5: create + register each (method, SYNC) aspect.
        moderator.register_from(factory, &open, Concern::synchronization())?;
        moderator.register_from(factory, &assign, Concern::synchronization())?;
        // The paper's notification wiring: open's postactivation notifies
        // the assign queue, assign's the open queue.
        moderator.wire_wakes(&open, std::slice::from_ref(&assign));
        moderator.wire_wakes(&assign, std::slice::from_ref(&open));
        Ok(Self {
            inner: Moderated::new(TicketServer::new(capacity), moderator),
            open,
            assign,
            buffer,
        })
    }

    /// The moderator coordinating this proxy.
    pub fn moderator(&self) -> &Arc<AspectModerator> {
        self.inner.moderator()
    }

    /// Handle to the `open` participating method.
    pub fn open_handle(&self) -> &MethodHandle {
        &self.open
    }

    /// Handle to the `assign` participating method.
    pub fn assign_handle(&self) -> &MethodHandle {
        &self.assign
    }

    /// Read handle on the synchronization aspects' shared counters.
    pub fn buffer_handle(&self) -> &BufferSyncHandle {
        &self.buffer
    }

    /// Opens a ticket, blocking while the buffer is full (Figure 10's
    /// guarded `open`).
    ///
    /// # Errors
    ///
    /// [`AbortError`] if a registered aspect vetoes the activation (the
    /// base system never aborts; extensions — authentication, quotas —
    /// do).
    pub fn open(&self, ticket: Ticket) -> Result<(), AbortError> {
        self.open_with(ticket, self.fresh_ctx(&self.open))
    }

    /// Opens a ticket with a caller-built context (tokens, priorities).
    ///
    /// # Errors
    ///
    /// [`AbortError`] if a registered aspect vetoes the activation.
    pub fn open_with(&self, ticket: Ticket, ctx: InvocationContext) -> Result<(), AbortError> {
        let guard = self.inner.enter_with(&self.open, ctx)?;
        guard
            .component()
            .open(ticket)
            .expect("synchronization aspect guarantees a free slot");
        guard.complete();
        Ok(())
    }

    /// Opens a ticket, giving up after `timeout` blocked.
    ///
    /// # Errors
    ///
    /// [`AbortError::Timeout`] when full for longer than `timeout`, or
    /// an aspect veto.
    pub fn open_timeout(&self, ticket: Ticket, timeout: Duration) -> Result<(), AbortError> {
        let guard = self
            .inner
            .enter_timeout(&self.open, self.fresh_ctx(&self.open), timeout)?;
        guard
            .component()
            .open(ticket)
            .expect("synchronization aspect guarantees a free slot");
        guard.complete();
        Ok(())
    }

    /// Assigns (retrieves) the oldest ticket, blocking while the buffer
    /// is empty.
    ///
    /// # Errors
    ///
    /// [`AbortError`] if a registered aspect vetoes the activation.
    pub fn assign(&self) -> Result<Ticket, AbortError> {
        self.assign_with(self.fresh_ctx(&self.assign))
    }

    /// Assigns with a caller-built context.
    ///
    /// # Errors
    ///
    /// [`AbortError`] if a registered aspect vetoes the activation.
    pub fn assign_with(&self, ctx: InvocationContext) -> Result<Ticket, AbortError> {
        let guard = self.inner.enter_with(&self.assign, ctx)?;
        let ticket = guard
            .component()
            .assign()
            .expect("synchronization aspect guarantees an item");
        guard.complete();
        Ok(ticket)
    }

    /// Assigns, giving up after `timeout` blocked.
    ///
    /// # Errors
    ///
    /// [`AbortError::Timeout`] when empty for longer than `timeout`, or
    /// an aspect veto.
    pub fn assign_timeout(&self, timeout: Duration) -> Result<Ticket, AbortError> {
        let guard =
            self.inner
                .enter_timeout(&self.assign, self.fresh_ctx(&self.assign), timeout)?;
        let ticket = guard
            .component()
            .assign()
            .expect("synchronization aspect guarantees an item");
        guard.complete();
        Ok(ticket)
    }

    /// Number of tickets currently waiting (unmoderated query).
    pub fn len(&self) -> usize {
        self.inner.with_component(|s| s.len())
    }

    /// Whether no tickets are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (total opened, total assigned) since construction.
    pub fn totals(&self) -> (u64, u64) {
        self.inner
            .with_component(|s| (s.total_opened(), s.total_assigned()))
    }

    pub(crate) fn fresh_ctx(&self, method: &MethodHandle) -> InvocationContext {
        InvocationContext::new(method.id().clone(), self.moderator().next_invocation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn t(id: u64) -> Ticket {
        Ticket::new(id, format!("issue {id}"))
    }

    fn proxy(capacity: usize) -> TicketServerProxy {
        TicketServerProxy::new(capacity, AspectModerator::shared()).unwrap()
    }

    #[test]
    fn open_assign_roundtrip() {
        let p = proxy(4);
        p.open(t(1)).unwrap();
        p.open(t(2)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.assign().unwrap().id.0, 1);
        assert_eq!(p.assign().unwrap().id.0, 2);
        assert_eq!(p.totals(), (2, 2));
    }

    #[test]
    fn open_blocks_when_full_until_assign() {
        let p = Arc::new(proxy(1));
        p.open(t(1)).unwrap();
        let producer = {
            let p = Arc::clone(&p);
            thread::spawn(move || p.open(t(2)))
        };
        while p.moderator().stats().blocks == 0 {
            thread::yield_now();
        }
        assert_eq!(p.len(), 1, "second open must be blocked");
        assert_eq!(p.assign().unwrap().id.0, 1);
        producer.join().unwrap().unwrap();
        assert_eq!(p.assign().unwrap().id.0, 2);
    }

    #[test]
    fn assign_blocks_when_empty_until_open() {
        let p = Arc::new(proxy(1));
        let consumer = {
            let p = Arc::clone(&p);
            thread::spawn(move || p.assign())
        };
        while p.moderator().stats().blocks == 0 {
            thread::yield_now();
        }
        p.open(t(7)).unwrap();
        assert_eq!(consumer.join().unwrap().unwrap().id.0, 7);
    }

    #[test]
    fn timeouts_fire_on_full_and_empty() {
        let p = proxy(1);
        assert!(p
            .assign_timeout(Duration::from_millis(10))
            .unwrap_err()
            .is_timeout());
        p.open(t(1)).unwrap();
        assert!(p
            .open_timeout(t(2), Duration::from_millis(10))
            .unwrap_err()
            .is_timeout());
    }

    #[test]
    fn many_producers_many_consumers_preserve_every_ticket() {
        let p = Arc::new(proxy(8));
        let producers: u64 = 4;
        let per: u64 = 100;
        let mut handles = Vec::new();
        for pr in 0..producers {
            let p = Arc::clone(&p);
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    p.open(t(pr * 1000 + i)).unwrap();
                }
            }));
        }
        let total = producers * per;
        let consumer = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..total {
                    ids.push(p.assign().unwrap().id.0);
                }
                ids
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        let mut ids = consumer.join().unwrap();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, total, "no ticket lost or duplicated");
        assert!(p.is_empty());
        let snap = p.buffer_handle().snapshot();
        assert_eq!(snap.reserved, 0);
        assert_eq!(snap.produced, 0);
    }

    #[test]
    fn debug_shows_buffer() {
        let p = proxy(2);
        assert!(format!("{p:?}").contains("buffer"));
    }
}

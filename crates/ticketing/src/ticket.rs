//! Ticket domain types for the trouble-ticketing system.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Unique ticket identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TicketId(pub u64);

impl fmt::Display for TicketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T-{}", self.0)
    }
}

/// How urgent a ticket is.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Severity {
    /// Informational or cosmetic.
    Low,
    /// Normal work item.
    #[default]
    Medium,
    /// Degraded service.
    High,
    /// Outage.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// A trouble ticket: what clients *open* on the server and agents
/// *assign* (retrieve) from it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ticket {
    /// Unique identifier.
    pub id: TicketId,
    /// Short problem statement.
    pub summary: String,
    /// Urgency.
    pub severity: Severity,
    /// Who opened it (principal name), if known.
    pub reporter: Option<String>,
}

impl Ticket {
    /// Creates a medium-severity ticket.
    pub fn new(id: u64, summary: impl Into<String>) -> Self {
        Self {
            id: TicketId(id),
            summary: summary.into(),
            severity: Severity::default(),
            reporter: None,
        }
    }

    /// Sets the severity (builder style).
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Sets the reporter (builder style).
    #[must_use]
    pub fn with_reporter(mut self, reporter: impl Into<String>) -> Self {
        self.reporter = Some(reporter.into());
        self
    }
}

impl fmt::Display for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.id, self.severity, self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let t = Ticket::new(7, "printer on fire")
            .with_severity(Severity::Critical)
            .with_reporter("alice");
        assert_eq!(t.id, TicketId(7));
        assert_eq!(t.severity, Severity::Critical);
        assert_eq!(t.reporter.as_deref(), Some("alice"));
    }

    #[test]
    fn display_formats() {
        let t = Ticket::new(3, "slow login").with_severity(Severity::High);
        assert_eq!(t.to_string(), "T-3 [high] slow login");
        assert_eq!(TicketId(3).to_string(), "T-3");
    }

    #[test]
    fn severity_orders_by_urgency() {
        assert!(Severity::Low < Severity::Medium);
        assert!(Severity::Medium < Severity::High);
        assert!(Severity::High < Severity::Critical);
    }

    #[test]
    fn default_severity_is_medium() {
        assert_eq!(Ticket::new(1, "x").severity, Severity::Medium);
    }
}

//! Aspect factories for the ticketing system (paper Figures 6 and 15).
//!
//! [`TicketSyncFactory`] is the application-specific `AspectFactory` of
//! Figure 6: it knows how to build the synchronization aspects for the
//! `open` and `assign` participating methods (a producer/consumer pair
//! over one shared buffer state). [`TicketAuthFactory`] is the
//! authentication half of the `ExtendedAspectFactory` of Figure 15;
//! chain it in front of the sync factory with
//! [`ChainedFactory`](amf_core::ChainedFactory) to extend the system.

use std::fmt;
use std::sync::Arc;

use amf_aspects::auth::{AuthenticationAspect, Authenticator};
use amf_aspects::sync::{BufferSyncGroup, BufferSyncHandle};
use amf_core::{Aspect, AspectFactory, Concern, MethodId};

/// Name of the producer participating method.
pub const OPEN: &str = "open";
/// Name of the consumer participating method.
pub const ASSIGN: &str = "assign";

/// Creates `OpenSynchronizationAspect` / `AssignSynchronizationAspect`
/// equivalents sharing one bounded-buffer state (paper Figure 6).
#[derive(Clone)]
pub struct TicketSyncFactory {
    group: BufferSyncGroup,
}

impl fmt::Debug for TicketSyncFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketSyncFactory").finish_non_exhaustive()
    }
}

impl TicketSyncFactory {
    /// Creates the factory (and the shared buffer state) for a server of
    /// `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self {
            group: BufferSyncGroup::new(capacity),
        }
    }

    /// Read handle on the shared buffer counters, for assertions.
    pub fn buffer_handle(&self) -> BufferSyncHandle {
        self.group.handle()
    }
}

impl AspectFactory for TicketSyncFactory {
    fn create(&self, method: &MethodId, concern: &Concern) -> Option<Box<dyn Aspect>> {
        if *concern != Concern::synchronization() {
            return None;
        }
        match method.as_str() {
            OPEN => Some(Box::new(self.group.producer_aspect())),
            ASSIGN => Some(Box::new(self.group.consumer_aspect())),
            _ => None,
        }
    }
}

/// Creates authentication aspects for the ticketing methods — the new
/// half of the paper's `ExtendedAspectFactory` (Figure 15).
#[derive(Clone)]
pub struct TicketAuthFactory {
    auth: Arc<Authenticator>,
}

impl fmt::Debug for TicketAuthFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketAuthFactory").finish_non_exhaustive()
    }
}

impl TicketAuthFactory {
    /// Creates the factory over a shared authenticator.
    pub fn new(auth: Arc<Authenticator>) -> Self {
        Self { auth }
    }
}

impl AspectFactory for TicketAuthFactory {
    fn create(&self, method: &MethodId, concern: &Concern) -> Option<Box<dyn Aspect>> {
        if *concern != Concern::authentication() {
            return None;
        }
        match method.as_str() {
            OPEN | ASSIGN => Some(Box::new(AuthenticationAspect::new(Arc::clone(&self.auth)))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_core::ChainedFactory;

    #[test]
    fn sync_factory_builds_both_cells() {
        let f = TicketSyncFactory::new(4);
        let open = f
            .create(&MethodId::new(OPEN), &Concern::synchronization())
            .unwrap();
        let assign = f
            .create(&MethodId::new(ASSIGN), &Concern::synchronization())
            .unwrap();
        assert!(open.describe().contains("producer"));
        assert!(assign.describe().contains("consumer"));
    }

    #[test]
    fn sync_factory_refuses_other_cells() {
        let f = TicketSyncFactory::new(4);
        assert!(f
            .create(&MethodId::new("close"), &Concern::synchronization())
            .is_none());
        assert!(f
            .create(&MethodId::new(OPEN), &Concern::authentication())
            .is_none());
    }

    #[test]
    fn auth_factory_builds_authentication_only() {
        let f = TicketAuthFactory::new(Authenticator::shared());
        assert!(f
            .create(&MethodId::new(OPEN), &Concern::authentication())
            .is_some());
        assert!(f
            .create(&MethodId::new(ASSIGN), &Concern::authentication())
            .is_some());
        assert!(f
            .create(&MethodId::new(OPEN), &Concern::synchronization())
            .is_none());
    }

    #[test]
    fn chained_extended_factory_covers_both_concerns() {
        // Figure 15: the extended factory = auth factory falling back to
        // the base sync factory.
        let extended = ChainedFactory::new()
            .with(TicketAuthFactory::new(Authenticator::shared()))
            .with(TicketSyncFactory::new(4));
        assert!(extended
            .create(&MethodId::new(OPEN), &Concern::authentication())
            .is_some());
        assert!(extended
            .create(&MethodId::new(OPEN), &Concern::synchronization())
            .is_some());
        assert!(extended
            .create(&MethodId::new(OPEN), &Concern::quota())
            .is_none());
    }

    #[test]
    fn factories_share_buffer_state() {
        let f = TicketSyncFactory::new(1);
        let mut open = f
            .create(&MethodId::new(OPEN), &Concern::synchronization())
            .unwrap();
        let mut assign = f
            .create(&MethodId::new(ASSIGN), &Concern::synchronization())
            .unwrap();
        let mut ctx = amf_core::InvocationContext::new(MethodId::new(OPEN), 1);
        assert!(open.precondition(&mut ctx).is_resume());
        open.postaction(&mut ctx);
        assert_eq!(f.buffer_handle().snapshot().produced, 1);
        assert!(assign.precondition(&mut ctx).is_resume());
    }
}

//! # Trouble-ticketing on the Aspect Moderator framework
//!
//! The running example of *Composing Concerns with a Framework
//! Approach* (ICDCS 2001): clients **open** tickets on a server and
//! agents **assign** (retrieve) them — a producer/consumer protocol over
//! a bounded buffer, with every interaction concern factored out into
//! aspects.
//!
//! * [`TicketServer`] — the *sequential* functional component (paper
//!   Figure 7's counters, zero synchronization).
//! * [`TicketServerProxy`] — the component proxy (Figures 5 and 10):
//!   synchronization aspects created by [`TicketSyncFactory`]
//!   (Figure 6) and registered with the moderator.
//! * [`ExtendedTicketServerProxy`] — the adaptability showcase
//!   (Figures 13–18): authentication layered on a live system without
//!   touching the functional code.
//!
//! ```
//! use amf_core::AspectModerator;
//! use amf_ticketing::{Ticket, TicketServerProxy};
//!
//! let proxy = TicketServerProxy::new(8, AspectModerator::shared()).unwrap();
//! proxy.open(Ticket::new(1, "cannot print")).unwrap();
//! let assigned = proxy.assign().unwrap();
//! assert_eq!(assigned.summary, "cannot print");
//! ```

#![warn(missing_docs)]

pub mod extended;
pub mod factory;
pub mod proxy;
pub mod server;
pub mod ticket;

pub use extended::ExtendedTicketServerProxy;
pub use factory::{TicketAuthFactory, TicketSyncFactory, ASSIGN, OPEN};
pub use proxy::TicketServerProxy;
pub use server::{ServerError, TicketServer};
pub use ticket::{Severity, Ticket, TicketId};

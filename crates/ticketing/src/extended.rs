//! `ExtendedTicketServerProxy`: the paper's adaptability showcase
//! (Section 5.3, Figures 13–18).
//!
//! Authentication is added to the running system **without touching the
//! functional component or the base synchronization aspects**: an
//! extended factory (auth chained in front of sync) supplies the new
//! aspects, and the moderator's nested ordering makes every activation
//! run *auth-pre → sync-pre → method → sync-post → auth-post* — exactly
//! the sequence the paper prescribes in Figure 14.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use amf_aspects::auth::{AuthToken, Authenticator};
use amf_core::{
    AbortError, AspectModerator, ChainedFactory, Concern, MethodHandle, RegistrationError,
};

use crate::factory::{TicketAuthFactory, TicketSyncFactory};
use crate::proxy::TicketServerProxy;
use crate::ticket::Ticket;

/// The authenticated trouble-ticketing server: every `open`/`assign`
/// requires a valid session token.
///
/// ```
/// use amf_aspects::auth::Authenticator;
/// use amf_core::AspectModerator;
/// use amf_ticketing::{ExtendedTicketServerProxy, Ticket};
///
/// let auth = Authenticator::shared();
/// auth.add_user("alice", "pw");
/// let proxy = ExtendedTicketServerProxy::new(4, AspectModerator::shared(),
///                                            std::sync::Arc::clone(&auth)).unwrap();
/// let token = auth.login("alice", "pw").unwrap();
/// proxy.open(token, Ticket::new(1, "vpn down")).unwrap();
/// assert_eq!(proxy.assign(token).unwrap().id.0, 1);
/// ```
pub struct ExtendedTicketServerProxy {
    base: TicketServerProxy,
    auth: Arc<Authenticator>,
}

impl fmt::Debug for ExtendedTicketServerProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExtendedTicketServerProxy")
            .field("base", &self.base)
            .finish_non_exhaustive()
    }
}

impl ExtendedTicketServerProxy {
    /// Builds the extended proxy: base synchronization aspects plus an
    /// `AUTHENTICATE` aspect on each participating method, created by
    /// the extended (chained) factory of Figure 15.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`] from creation or registration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(
        capacity: usize,
        moderator: Arc<AspectModerator>,
        auth: Arc<Authenticator>,
    ) -> Result<Self, RegistrationError> {
        let sync_factory = TicketSyncFactory::new(capacity);
        let buffer = sync_factory.buffer_handle();
        // Figure 15: ExtendedAspectFactory = auth factory over the base.
        let extended = ChainedFactory::new()
            .with(TicketAuthFactory::new(Arc::clone(&auth)))
            .with(sync_factory);
        let base =
            TicketServerProxy::with_factory(capacity, Arc::clone(&moderator), &extended, buffer)?;
        // Figure 13: register the two authentication aspects *after* the
        // sync aspects; nested ordering then runs them first on entry.
        moderator.register_from(&extended, &base.open, Concern::authentication())?;
        moderator.register_from(&extended, &base.assign, Concern::authentication())?;
        Ok(Self { base, auth })
    }

    /// Upgrades a running base proxy in place by registering the
    /// authentication aspects — adaptability on a live system (the open
    /// systems goal of Section 1).
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`] (e.g. authentication already
    /// registered).
    pub fn upgrade(
        base: TicketServerProxy,
        auth: Arc<Authenticator>,
    ) -> Result<Self, RegistrationError> {
        let factory = TicketAuthFactory::new(Arc::clone(&auth));
        let moderator = Arc::clone(base.moderator());
        moderator.register_from(&factory, &base.open, Concern::authentication())?;
        moderator.register_from(&factory, &base.assign, Concern::authentication())?;
        Ok(Self { base, auth })
    }

    /// The shared authenticator.
    pub fn authenticator(&self) -> &Arc<Authenticator> {
        &self.auth
    }

    /// The underlying base proxy (handles, counters, moderator).
    pub fn base(&self) -> &TicketServerProxy {
        &self.base
    }

    fn ctx_with_token(
        &self,
        method: &MethodHandle,
        token: AuthToken,
    ) -> amf_core::InvocationContext {
        let mut ctx = self.base.fresh_ctx(method);
        ctx.insert(token);
        ctx
    }

    /// Opens a ticket on behalf of the session `token`.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] with the `authenticate` concern when the
    /// token is missing/invalid/expired; otherwise as the base proxy.
    pub fn open(&self, token: AuthToken, ticket: Ticket) -> Result<(), AbortError> {
        self.base
            .open_with(ticket, self.ctx_with_token(&self.base.open, token))
    }

    /// Assigns the oldest ticket on behalf of the session `token`.
    ///
    /// # Errors
    ///
    /// Authentication abort, or as the base proxy.
    pub fn assign(&self, token: AuthToken) -> Result<Ticket, AbortError> {
        self.base
            .assign_with(self.ctx_with_token(&self.base.assign, token))
    }

    /// Like [`ExtendedTicketServerProxy::open`] with a bounded wait.
    ///
    /// # Errors
    ///
    /// Authentication abort, [`AbortError::Timeout`] when the buffer
    /// stays full past `timeout`, or as the base proxy.
    pub fn open_timeout(
        &self,
        token: AuthToken,
        ticket: Ticket,
        timeout: Duration,
    ) -> Result<(), AbortError> {
        let ctx = self.ctx_with_token(&self.base.open, token);
        let guard = self
            .base
            .inner
            .enter_timeout(&self.base.open, ctx, timeout)?;
        guard
            .component()
            .open(ticket)
            .expect("synchronization aspect guarantees a free slot");
        guard.complete();
        Ok(())
    }

    /// Like [`ExtendedTicketServerProxy::assign`] with a bounded wait.
    ///
    /// # Errors
    ///
    /// Authentication abort, [`AbortError::Timeout`], or as the base
    /// proxy.
    pub fn assign_timeout(
        &self,
        token: AuthToken,
        timeout: Duration,
    ) -> Result<Ticket, AbortError> {
        let mut ctx = self.base.fresh_ctx(&self.base.assign);
        ctx.insert(token);
        let guard = self
            .base
            .inner
            .enter_timeout(&self.base.assign, ctx, timeout)?;
        let ticket = guard
            .component()
            .assign()
            .expect("synchronization aspect guarantees an item");
        guard.complete();
        Ok(ticket)
    }

    /// Number of tickets currently waiting.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether no tickets are waiting.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_aspects::auth::AuthError;

    fn setup() -> (ExtendedTicketServerProxy, Arc<Authenticator>) {
        let auth = Authenticator::shared();
        auth.add_user("alice", "pw");
        auth.add_user("bob", "hunter2");
        let proxy = ExtendedTicketServerProxy::new(2, AspectModerator::shared(), Arc::clone(&auth))
            .unwrap();
        (proxy, auth)
    }

    #[test]
    fn valid_token_opens_and_assigns() {
        let (proxy, auth) = setup();
        let token = auth.login("alice", "pw").unwrap();
        proxy.open(token, Ticket::new(1, "x")).unwrap();
        assert_eq!(proxy.len(), 1);
        assert_eq!(proxy.assign(token).unwrap().id.0, 1);
    }

    #[test]
    fn invalid_token_aborts_with_authenticate_concern() {
        let (proxy, _auth) = setup();
        let err = proxy.open(AuthToken(42), Ticket::new(1, "x")).unwrap_err();
        assert_eq!(err.concern().unwrap(), &Concern::authentication());
        assert!(err.to_string().contains("authentication failed"));
        assert!(proxy.is_empty(), "functional method must not have run");
    }

    #[test]
    fn logout_revokes_access() {
        let (proxy, auth) = setup();
        let token = auth.login("bob", "hunter2").unwrap();
        proxy.open(token, Ticket::new(1, "x")).unwrap();
        auth.logout(token);
        let err = proxy.assign(token).unwrap_err();
        assert_eq!(err.concern().unwrap(), &Concern::authentication());
        assert_eq!(proxy.len(), 1, "ticket still waiting");
    }

    #[test]
    fn failed_auth_does_not_leak_buffer_reservations() {
        let (proxy, auth) = setup();
        // Fill the buffer legitimately.
        let token = auth.login("alice", "pw").unwrap();
        proxy.open(token, Ticket::new(1, "a")).unwrap();
        proxy.open(token, Ticket::new(2, "b")).unwrap();
        // Unauthenticated attempts must not consume slots or items.
        for _ in 0..5 {
            assert!(proxy.open(AuthToken(0), Ticket::new(9, "evil")).is_err());
            assert!(proxy.assign(AuthToken(0)).is_err());
        }
        let snap = proxy.base().buffer_handle().snapshot();
        assert_eq!(snap.produced, 2);
        assert_eq!(snap.reserved, 2);
        assert_eq!(proxy.assign(token).unwrap().id.0, 1);
        assert_eq!(proxy.assign(token).unwrap().id.0, 2);
    }

    #[test]
    fn upgrade_adds_auth_to_live_proxy() {
        let auth = Authenticator::shared();
        auth.add_user("alice", "pw");
        let base = TicketServerProxy::new(2, AspectModerator::shared()).unwrap();
        // Before the upgrade, anonymous traffic flows.
        base.open(Ticket::new(1, "pre-upgrade")).unwrap();
        let extended = ExtendedTicketServerProxy::upgrade(base, Arc::clone(&auth)).unwrap();
        // Afterwards, a token is mandatory...
        assert!(extended.assign(AuthToken(0)).is_err());
        // ...and valid sessions still see the pre-upgrade ticket.
        let token = auth.login("alice", "pw").unwrap();
        assert_eq!(extended.assign(token).unwrap().id.0, 1);
    }

    #[test]
    fn expired_session_rejected() {
        use amf_concurrency::ManualClock;
        let clock = ManualClock::new();
        let auth = Arc::new(
            Authenticator::with_clock(Arc::new(clock.clone())).with_ttl(Duration::from_secs(30)),
        );
        auth.add_user("alice", "pw");
        let proxy = ExtendedTicketServerProxy::new(2, AspectModerator::shared(), Arc::clone(&auth))
            .unwrap();
        let token = auth.login("alice", "pw").unwrap();
        proxy.open(token, Ticket::new(1, "x")).unwrap();
        clock.advance(Duration::from_secs(31));
        let err = proxy.assign(token).unwrap_err();
        assert!(err.to_string().contains("expired"));
        assert_eq!(auth.validate(token), Err(AuthError::InvalidToken));
    }

    #[test]
    fn reusing_an_occupied_moderator_is_rejected() {
        // Re-registering the same (method, concern) cells errors instead
        // of silently double-composing.
        let (proxy, _auth) = setup();
        let moderator = Arc::clone(proxy.base().moderator());
        let factory = TicketSyncFactory::new(2);
        let err = TicketServerProxy::with_factory(2, moderator, &factory, factory.buffer_handle())
            .unwrap_err();
        assert!(matches!(err, RegistrationError::DuplicateConcern { .. }));
    }
}

//! # Writing aspects: a field guide
//!
//! This module contains no code — it is the narrative documentation of
//! the framework's contracts, with compiled examples. Read it before
//! writing your first non-trivial aspect.
//!
//! ## 1. The execution model
//!
//! All aspect code runs **under the moderator's lock** (the Rust
//! rendering of the paper's `synchronized` moderator). Consequences:
//!
//! * Aspects keep plain fields; they never need their own `Mutex` for
//!   state touched only in `precondition`/`postaction`. (State shared
//!   with the *outside* — a handle your application reads — still needs
//!   one; see [`MemoryTrace`](crate::MemoryTrace)-style patterns.)
//! * Aspect code must be **fast and non-blocking**. Never sleep, never
//!   wait on another lock that can wait on a moderator, never call back
//!   into the same moderator (deadlock).
//! * Aspects of one moderator never run concurrently with each other.
//!
//! ## 2. The verdict protocol
//!
//! `precondition` returns one of three verdicts (the paper's
//! RESUME / BLOCKED / ABORT):
//!
//! * [`Verdict::Resume`](crate::Verdict::Resume) — the constraint holds.
//!   If you mutated state to *reserve* something, you are now committed
//!   to undoing it in [`on_release`](crate::Aspect::on_release) (see §4).
//! * [`Verdict::Block`](crate::Verdict::Block) — the constraint does not
//!   hold *yet*. The caller parks on the method's wait queue and the
//!   whole chain re-evaluates after any completion notifies that queue.
//!   **Blocking preconditions must be idempotent across re-evaluation**:
//!   you will be called again with the same context.
//! * [`Verdict::Abort`](crate::Verdict::Abort) — the constraint can
//!   never hold for this activation (bad credentials, exhausted quota).
//!   The caller gets an [`AbortError`](crate::AbortError) naming your
//!   concern.
//!
//! Rule of thumb: **block on state that other activations will change;
//! abort on properties of the request itself.**
//!
//! ## 3. Choosing state: aspect-local vs context
//!
//! Long-lived state (counters, budgets) lives in the aspect. Per-
//! invocation state (start times, leased resources, the resolved
//! principal) lives in the [`InvocationContext`](crate::InvocationContext)
//! as a typed attribute, where later phases and *other aspects* can see
//! it:
//!
//! ```
//! use amf_core::{Aspect, InvocationContext, Verdict};
//!
//! #[derive(Debug)]
//! struct SequenceStamp(u64);
//!
//! /// Stamps every activation with a sequence number at precondition
//! /// and checks it back out at postaction.
//! struct Stamper { next: u64 }
//!
//! impl Aspect for Stamper {
//!     fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
//!         self.next += 1;
//!         ctx.insert(SequenceStamp(self.next));
//!         Verdict::Resume
//!     }
//!     fn postaction(&mut self, ctx: &mut InvocationContext) {
//!         let stamp = ctx.remove::<SequenceStamp>().expect("stamped at pre");
//!         assert!(stamp.0 <= self.next);
//!     }
//! }
//! # let _ = Stamper { next: 0 };
//! ```
//!
//! ## 4. The reservation contract (read this twice)
//!
//! If your `precondition` mutates state when it resumes — takes a slot,
//! increments a usage counter, sets a busy flag — that mutation is a
//! **reservation**, and three things may happen to it:
//!
//! 1. The activation completes: your `postaction` runs. Decide there
//!    whether the reservation is *committed* (quota usage stays) or
//!    *returned* (a mutex flag clears).
//! 2. A **later aspect in the chain blocks or aborts** after you
//!    resumed: the moderator calls your
//!    [`on_release`](crate::Aspect::on_release). Undo the reservation
//!    exactly as if the precondition had never resumed. Skipping this
//!    is the composition anomaly measured in experiment E7 — the
//!    reservation leaks while the caller sleeps, starving every other
//!    user of the resource.
//! 3. A **blocked caller times out**: if you remember waiters across
//!    `Block` verdicts (admission queues do), clean up the enrollment
//!    in [`on_cancel`](crate::Aspect::on_cancel).
//!
//! ```
//! use amf_core::{Aspect, InvocationContext, ReleaseCause, Verdict};
//!
//! /// A capacity-N reservation done right.
//! struct Slots { used: u32, capacity: u32 }
//!
//! impl Aspect for Slots {
//!     fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
//!         if self.used < self.capacity {
//!             self.used += 1;          // reserve
//!             Verdict::Resume
//!         } else {
//!             Verdict::Block           // no reservation -> nothing to undo
//!         }
//!     }
//!     fn postaction(&mut self, _ctx: &mut InvocationContext) {
//!         self.used -= 1;              // return the slot on completion
//!     }
//!     fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
//!         self.used -= 1;              // ... and on rollback
//!     }
//! }
//! # let _ = Slots { used: 0, capacity: 1 };
//! ```
//!
//! ## 5. Ordering: who wraps whom
//!
//! Under the default [`OrderingPolicy::Nested`](crate::OrderingPolicy::Nested),
//! **later-registered aspects wrap earlier ones**: their preconditions
//! run first and their postactions last (the paper's Figure 14 —
//! authentication, registered by the extension, wraps synchronization).
//! Practical order, innermost (register first) to outermost (register
//! last):
//!
//! 1. resource acquisition (leases, buffer slots),
//! 2. concurrency control,
//! 3. outcome observers (audit, metrics — they should see the real
//!    outcome and nothing vetoed later),
//! 4. request-rejecting guards (quota, throttle),
//! 5. identity (authentication) — outermost, so *nothing* runs for
//!    unauthenticated calls.
//!
//! ## 6. Blocking and waking
//!
//! A parked caller re-evaluates only when some completion **notifies
//! its method's queue**. The default wake graph notifies every queue —
//! always correct, `O(methods)` per completion (experiment E4). Wire it
//! down with [`AspectModerator::wire_wakes`](crate::AspectModerator::wire_wakes)
//! once you know who unblocks whom — and let `amf-verify` check the
//! wiring: a queue nobody notifies is a lost-wakeup deadlock the model
//! checker finds mechanically.
//!
//! ## 7. Testing aspects
//!
//! Aspects are plain objects — unit-test them without any moderator by
//! driving `precondition`/`postaction` with a hand-built context:
//!
//! ```
//! use amf_core::{Aspect, InvocationContext, MethodId, NoopAspect, Verdict};
//!
//! let mut aspect = NoopAspect;
//! let mut ctx = InvocationContext::new(MethodId::new("op"), 1);
//! assert_eq!(aspect.precondition(&mut ctx), Verdict::Resume);
//! ```
//!
//! For concurrency behavior, use a real moderator and the
//! [`MemoryTrace`](crate::MemoryTrace) sink to assert protocol order;
//! for exhaustive guarantees, write a pure-state model of the aspect
//! and hand it to `amf-verify`.

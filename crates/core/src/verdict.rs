//! The three-way result of an aspect's precondition.
//!
//! The paper's `precondition()` returns `RESUME`, `BLOCKED` or `ABORT`
//! as integer constants; [`Verdict`] types that protocol.

use std::fmt;
use std::sync::Arc;

/// Why an aspect aborted an activation.
///
/// A human-readable reason carried up to the caller inside
/// [`AbortError`](crate::AbortError).
///
/// ```
/// use amf_core::AbortReason;
///
/// let r = AbortReason::new("token expired");
/// assert_eq!(r.to_string(), "token expired");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AbortReason(Arc<str>);

impl AbortReason {
    /// Creates a reason from a message.
    pub fn new(message: impl Into<Arc<str>>) -> Self {
        Self(message.into())
    }

    /// The reason message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AbortReason({})", self.0)
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AbortReason {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for AbortReason {
    fn from(s: String) -> Self {
        Self::new(s)
    }
}

/// Result of evaluating an aspect's precondition: the paper's
/// RESUME / BLOCKED / ABORT protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The constraint holds; the activation may proceed.
    Resume,
    /// The constraint does not hold *yet*; park the caller on the method's
    /// wait queue and re-evaluate after a notification.
    Block,
    /// The constraint can never hold for this activation; fail it.
    Abort(AbortReason),
}

impl Verdict {
    /// Convenience constructor for [`Verdict::Abort`].
    pub fn abort(reason: impl Into<AbortReason>) -> Self {
        Verdict::Abort(reason.into())
    }

    /// Whether this verdict lets the activation proceed.
    pub fn is_resume(&self) -> bool {
        matches!(self, Verdict::Resume)
    }

    /// Whether this verdict parks the caller.
    pub fn is_block(&self) -> bool {
        matches!(self, Verdict::Block)
    }

    /// Whether this verdict fails the activation.
    pub fn is_abort(&self) -> bool {
        matches!(self, Verdict::Abort(_))
    }

    /// Maps a boolean guard to `Resume`/`Block` — the commonest
    /// synchronization-aspect pattern ("resume when not full, else wait").
    pub fn resume_if(guard: bool) -> Self {
        if guard {
            Verdict::Resume
        } else {
            Verdict::Block
        }
    }

    /// Maps a boolean guard to `Resume`/`Abort` — the commonest
    /// security-aspect pattern ("proceed if authentic, else fail").
    pub fn resume_or_abort(guard: bool, reason: impl Into<AbortReason>) -> Self {
        if guard {
            Verdict::Resume
        } else {
            Verdict::Abort(reason.into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_match_variants() {
        assert!(Verdict::Resume.is_resume());
        assert!(Verdict::Block.is_block());
        assert!(Verdict::abort("no").is_abort());
        assert!(!Verdict::Resume.is_block());
        assert!(!Verdict::Block.is_abort());
    }

    #[test]
    fn resume_if_maps_guard() {
        assert_eq!(Verdict::resume_if(true), Verdict::Resume);
        assert_eq!(Verdict::resume_if(false), Verdict::Block);
    }

    #[test]
    fn resume_or_abort_maps_guard() {
        assert_eq!(Verdict::resume_or_abort(true, "x"), Verdict::Resume);
        assert_eq!(
            Verdict::resume_or_abort(false, "denied"),
            Verdict::Abort(AbortReason::new("denied"))
        );
    }

    #[test]
    fn abort_reason_display() {
        let v = Verdict::abort(String::from("quota exceeded"));
        match v {
            Verdict::Abort(r) => {
                assert_eq!(r.message(), "quota exceeded");
                assert_eq!(format!("{r}"), "quota exceeded");
                assert_eq!(format!("{r:?}"), "AbortReason(quota exceeded)");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn verdict_equality() {
        assert_eq!(Verdict::abort("a"), Verdict::abort("a"));
        assert_ne!(Verdict::abort("a"), Verdict::abort("b"));
    }
}

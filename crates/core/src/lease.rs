//! Fault-tolerant lease handoff: the recovery state machine shared by the
//! simulator, the model checker, and the live wire service.
//!
//! A *lease* is the moderation token that circulates around a topology ring
//! (see `amf-sim`'s topology scenario and `amf-service`'s peer layer). On a
//! real network a handoff frame can be **dropped**, **delayed**, or
//! **duplicated**, and the holder of a lease can crash outright. This module
//! implements one transport-agnostic state machine that survives all four,
//! split into the two halves of a directed link:
//!
//! * [`LeaseOut`] — the sender half. Assigns a per-link monotonic sequence
//!   number to every handoff, retransmits unacknowledged frames with capped
//!   exponential backoff plus seeded jitter, and — once a handoff's expiry
//!   deadline passes with no acknowledgement in sight — **reclaims** the
//!   lease for local (degraded) use, leaving a [`LeaseMsg::Release`] hole
//!   filler so the receiver's cursor can advance past the reclaimed slot.
//! * [`LeaseIn`] — the receiver half. Maintains a delivery *cursor* (the
//!   next expected sequence number), buffers out-of-order arrivals, drops
//!   duplicates idempotently, and fences stale re-grants with per-lease
//!   monotonic hop counters. Every frame — fresh, buffered, or duplicate —
//!   is answered with a cumulative [`LeaseMsg::Ack`].
//!
//! Process crashes are handled at connection boundaries: every fresh
//! connection is greeted with an unsolicited cumulative ack
//! (`seq == u64::MAX`), and [`LeaseOut::on_greeting`] re-syncs the sender
//! onto the peer's cursor — fast-forwarding past a consumed prefix, or
//! rebasing (renumbering surviving grants, dropping stale hole fillers)
//! when the receiver provably restarted from scratch.
//!
//! All timestamps are plain [`Duration`]s since an arbitrary epoch so the
//! machine runs identically under a virtual clock (simulation) and the wall
//! clock (live service). The machine performs no I/O: callers feed it
//! messages and `now`, and it returns messages to put on the wire plus
//! leases to deliver or reclaim.
//!
//! # Safety argument (and its honest limits)
//!
//! Exactly-once transfer over a lossy asynchronous link is impossible (the
//! Two Generals problem), so the machine is sound under a declared fault
//! model: *grant* frames may be dropped, delayed, or duplicated; *ack*
//! frames may be delayed but are not silently dropped while the connection
//! lives (they ride the TCP return path; the fault proxy injects faults on
//! the grant plane). Under that model, [`LeaseOut::poll`] only reclaims a
//! handoff after (a) its deadline passed and (b) the caller has drained
//! every readable ack — so an ack for the handoff cannot exist. Per-lease
//! hop fencing in [`LeaseIn`] remains as defense in depth: even if an
//! operator misconfigures the expiry below the true round-trip time, a
//! receiver refuses any grant whose hop counter does not advance the
//! lease's history, converting a would-be double grant into a counted
//! `stale_dropped` and a cursor advance.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::time::Duration;

/// Configuration for one directed lease link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseConfig {
    /// How long a handoff may remain unacknowledged before the sender
    /// reclaims the lease. `Duration::ZERO` disables expiry and
    /// retransmission entirely (the pre-recovery protocol: a dropped frame
    /// deadlocks the ring, which the simulator still exercises as an
    /// ablation).
    pub expiry: Duration,
    /// First retransmission delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the retransmission delay.
    pub backoff_cap: Duration,
    /// Seed for the deterministic retransmission jitter.
    pub jitter_seed: u64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            expiry: Duration::from_millis(500),
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(160),
            jitter_seed: 0x5EED,
        }
    }
}

impl LeaseConfig {
    /// True when expiry (and with it retransmission/reclaim) is enabled.
    pub fn recovery_enabled(&self) -> bool {
        !self.expiry.is_zero()
    }
}

/// A lease handoff message. The service codec gives each variant a wire
/// opcode; the simulator routes the same structs through its fault channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseMsg {
    /// Hand a lease to the peer. `seq` is per-link monotonic, `hop` is
    /// per-lease monotonic (total handoffs this lease has survived).
    Grant {
        /// Per-link monotonic sequence number (dedup + ack key).
        seq: u64,
        /// Lease identity.
        lease: u64,
        /// Per-lease monotonic hop counter (fencing key).
        hop: u64,
        /// Moderated entries remaining before the lease retires.
        visits: u64,
    },
    /// Cumulative acknowledgement: `seq` names the frame being answered,
    /// `cursor` is the receiver's next expected sequence number (everything
    /// below it was delivered or released).
    Ack {
        /// Sequence number of the frame this ack answers.
        seq: u64,
        /// Receiver's next expected sequence number.
        cursor: u64,
    },
    /// The sender reclaimed the handoff at `seq`; the receiver must advance
    /// its cursor past the hole without delivering anything.
    Release {
        /// Sequence number of the reclaimed handoff.
        seq: u64,
    },
}

impl LeaseMsg {
    /// The sequence number this message is keyed on.
    pub fn seq(&self) -> u64 {
        match *self {
            LeaseMsg::Grant { seq, .. } | LeaseMsg::Ack { seq, .. } | LeaseMsg::Release { seq } => {
                seq
            }
        }
    }
}

/// What [`LeaseOut::poll`] wants done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAction {
    /// Put this frame (back) on the wire.
    Send(LeaseMsg),
    /// The handoff expired unacknowledged: the lease is yours again. Feed
    /// it to the local moderator as a degraded entry.
    Reclaim {
        /// Lease identity.
        lease: u64,
        /// Hop counter the reclaimed lease will carry on its next handoff.
        hop: u64,
        /// Remaining visits.
        visits: u64,
    },
}

#[derive(Debug, Clone)]
struct Pending {
    msg: LeaseMsg,
    first_sent: Duration,
    next_retry: Duration,
    attempts: u32,
    /// The receiver direct-acked this frame while its cumulative cursor
    /// was still below it: the frame sits in the receiver's volatile
    /// reorder buffer, undelivered. Retransmission and expiry are
    /// suppressed (the frame provably arrived), but the frame is *not*
    /// complete — if the receiver crashes, the buffer dies with it and
    /// this grant must still be eligible for the greeting resend.
    /// Cleared on every fresh greeting.
    received: bool,
}

/// Counters exported by both halves; mirrored into `PeerStats` and the
/// simulator's topology artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseLinkStats {
    /// Frames retransmitted after a backoff deadline.
    pub retransmits: u64,
    /// Handoffs reclaimed after expiry.
    pub reclaimed: u64,
    /// Duplicate frames dropped idempotently by the receiver.
    pub dup_dropped: u64,
    /// Grants refused by per-lease hop fencing.
    pub stale_dropped: u64,
}

/// Newest ack-latency samples kept per link — enough for a stable p99
/// without unbounded growth on a long-lived node.
const LATENCY_WINDOW: usize = 65_536;

/// Sender half of a lease link.
#[derive(Debug)]
pub struct LeaseOut {
    cfg: LeaseConfig,
    next_seq: u64,
    /// Unacknowledged grants and releases, by sequence number.
    pending: BTreeMap<u64, Pending>,
    degraded: bool,
    stats: LeaseLinkStats,
    /// First-send → ack-complete latency of acknowledged grants, the
    /// recovery-time distribution (newest [`LATENCY_WINDOW`] samples).
    ack_latencies: Vec<Duration>,
    /// Incarnation id the peer declared in its last greeting; `None`
    /// until first contact. A greeting carrying a *different* id is
    /// proof of a receiver restart, however intact the cursor looks.
    peer_incarnation: Option<u64>,
}

impl LeaseOut {
    /// New sender half with `cfg`.
    pub fn new(cfg: LeaseConfig) -> Self {
        LeaseOut {
            cfg,
            next_seq: 0,
            pending: BTreeMap::new(),
            degraded: false,
            stats: LeaseLinkStats::default(),
            ack_latencies: Vec::new(),
            peer_incarnation: None,
        }
    }

    /// Link statistics so far.
    pub fn stats(&self) -> LeaseLinkStats {
        self.stats
    }

    /// True while at least one reclaim happened with no ack since: the node
    /// is moderating locally without its peer.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Number of unacknowledged frames.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Register a handoff and return the grant frame to put on the wire.
    pub fn grant(&mut self, lease: u64, hop: u64, visits: u64, now: Duration) -> LeaseMsg {
        let seq = self.next_seq;
        self.next_seq += 1;
        let msg = LeaseMsg::Grant {
            seq,
            lease,
            hop,
            visits,
        };
        if self.cfg.recovery_enabled() {
            self.pending.insert(
                seq,
                Pending {
                    msg,
                    first_sent: now,
                    next_retry: now + self.backoff(seq, 0),
                    attempts: 0,
                    received: false,
                },
            );
        }
        msg
    }

    /// First-send → ack-complete latencies of acknowledged grants, in
    /// completion order (the newest `LATENCY_WINDOW` samples). This is the
    /// handoff recovery-time distribution: a retransmitted or delayed grant
    /// shows up as a long sample.
    pub fn ack_latencies(&self) -> &[Duration] {
        &self.ack_latencies
    }

    fn complete(&mut self, seq: u64, now: Duration) {
        if let Some(p) = self.pending.remove(&seq) {
            if matches!(p.msg, LeaseMsg::Grant { .. }) {
                if self.ack_latencies.len() >= LATENCY_WINDOW {
                    self.ack_latencies.remove(0);
                }
                self.ack_latencies.push(now.saturating_sub(p.first_sent));
            }
        }
    }

    /// Process an acknowledgement. Completes everything below the
    /// cumulative cursor — delivery is what the cursor certifies. A direct
    /// ack whose `seq` is still at or above the cursor means the receiver
    /// *buffered* the frame out of order: it lives in volatile memory,
    /// undelivered, so completing it would lose the lease if the receiver
    /// crashes (the greeting resend only covers still-pending grants).
    /// Such an ack instead marks the frame received, suppressing
    /// retransmission and expiry until the next greeting; completion — and
    /// the latency sample — happen when the cursor passes the seq.
    ///
    /// Any ack also proves the peer is alive, so degraded mode ends.
    /// Returns `true` when this ack ended degraded mode (the peer
    /// rejoined).
    pub fn on_ack(&mut self, seq: u64, cursor: u64, now: Duration) -> bool {
        let done: Vec<u64> = self.pending.range(..cursor).map(|(s, _)| *s).collect();
        for s in done {
            self.complete(s, now);
        }
        if let Some(p) = self.pending.get_mut(&seq) {
            p.received = true;
        }
        let rejoined = self.degraded;
        self.degraded = false;
        rejoined
    }

    /// Process the greeting a receiver sends on every fresh connection,
    /// carrying its incarnation id and cursor, re-syncing this sender
    /// onto the peer. Three cases:
    ///
    /// * Cursor ahead of `next_seq` — this sender is fresh (or restarted)
    ///   against a receiver that already consumed earlier sequence numbers:
    ///   fast-forward `next_seq` so new grants are not mistaken for
    ///   duplicates.
    /// * The receiver restarted — it greets with a *different*
    ///   incarnation id than the one remembered from its last greeting:
    ///   the link is rebased. Hole-filling releases are dropped (their
    ///   holes died with the old incarnation), surviving grants are
    ///   renumbered consecutively from the peer's cursor and returned in
    ///   [`Resync::resend`] for immediate retransmission. Per-lease hop
    ///   fencing at the receiver keeps any cross-incarnation stragglers
    ///   from double-granting.
    /// * Otherwise the link is intact (an ordinary reconnect of the same
    ///   incarnation): the greeting acts as a plain cumulative ack.
    ///
    /// On *first contact* (`peer_incarnation` still unknown, e.g. when
    /// this sender itself restarted) there is no remembered id to
    /// compare, and restart detection falls back to the structural
    /// heuristic the protocol used before incarnation ids: a sequence
    /// number in `[cursor, next_seq)` that is no longer pending must
    /// have been acknowledged by a previous incarnation of the
    /// receiver. The heuristic assumes a restarted receiver starts with
    /// an empty reorder buffer (true of every receiver in this
    /// codebase); the incarnation id removes that assumption for every
    /// greeting after the first.
    ///
    /// Buffered-but-undelivered frames never complete on a direct ack
    /// (see [`Self::on_ack`]), so they are still pending here and either
    /// ride the rebase resend or — when the link is intact — have
    /// their received marks cleared and retransmit; a surviving receiver
    /// that reconnected with its buffer alive dedups those retransmits
    /// harmlessly.
    pub fn on_greeting(&mut self, incarnation: u64, cursor: u64, now: Duration) -> Resync {
        // A fresh connection may mean a fresh receiver whose reorder
        // buffer died, even when the cursor makes the link look intact —
        // so every received mark is void and the frames must retransmit
        // (the old receiver, if it survived, dedups them harmlessly).
        for p in self.pending.values_mut() {
            p.received = false;
        }
        let rejoined = self.on_ack(u64::MAX, cursor, now);
        let known = self.peer_incarnation.replace(incarnation);
        if cursor > self.next_seq {
            self.next_seq = cursor;
            return Resync {
                rebased: false,
                resend: Vec::new(),
                rejoined,
            };
        }
        let intact = match known {
            // Same incarnation: the receiver never died, its cursor is
            // an authoritative continuation — gaps below `next_seq`
            // are frames it acked earlier, not evidence of a restart.
            Some(old) => old == incarnation,
            None => (cursor..self.next_seq).all(|s| self.pending.contains_key(&s)),
        };
        if intact {
            return Resync {
                rebased: false,
                resend: Vec::new(),
                rejoined,
            };
        }
        let old: Vec<Pending> = std::mem::take(&mut self.pending).into_values().collect();
        self.next_seq = cursor;
        let mut resend = Vec::new();
        for p in old {
            if let LeaseMsg::Grant {
                lease, hop, visits, ..
            } = p.msg
            {
                resend.push(self.grant(lease, hop, visits, now));
            }
        }
        Resync {
            rebased: true,
            resend,
            rejoined,
        }
    }

    /// Drive timers. **Contract:** drain every readable ack (feeding each to
    /// [`Self::on_ack`]) before calling this with a `now` past a deadline —
    /// reclaim soundness depends on it. Returns frames to retransmit and
    /// leases to reclaim.
    pub fn poll(&mut self, now: Duration) -> Vec<LeaseAction> {
        let mut actions = Vec::new();
        if !self.cfg.recovery_enabled() {
            return actions;
        }
        let mut reclaim = Vec::new();
        for (&seq, p) in self.pending.iter_mut() {
            // A received frame sits in the peer's reorder buffer: nothing
            // to retransmit, and reclaiming a frame the receiver provably
            // holds would race its eventual delivery into a double grant.
            if p.received {
                continue;
            }
            let expired =
                matches!(p.msg, LeaseMsg::Grant { .. }) && now >= p.first_sent + self.cfg.expiry;
            if expired {
                reclaim.push(seq);
                continue;
            }
            if now >= p.next_retry {
                p.attempts += 1;
                p.next_retry = now + backoff_delay(&self.cfg, seq, p.attempts);
                actions.push(LeaseAction::Send(p.msg));
                self.stats.retransmits += 1;
            }
        }
        for seq in reclaim {
            let p = self.pending.remove(&seq).expect("reclaim seq pending");
            let (lease, hop, visits) = match p.msg {
                LeaseMsg::Grant {
                    lease, hop, visits, ..
                } => (lease, hop, visits),
                _ => unreachable!("only grants expire"),
            };
            self.stats.reclaimed += 1;
            self.degraded = true;
            // Leave a hole filler so the peer's cursor can advance past the
            // reclaimed slot once it returns. The release retransmits on the
            // same backoff schedule but never expires.
            let msg = LeaseMsg::Release { seq };
            self.pending.insert(
                seq,
                Pending {
                    msg,
                    first_sent: now,
                    next_retry: now + self.backoff(seq, 0),
                    attempts: 0,
                    received: false,
                },
            );
            actions.push(LeaseAction::Reclaim {
                lease,
                hop: hop + 1,
                visits,
            });
            actions.push(LeaseAction::Send(msg));
        }
        actions
    }

    /// Earliest instant at which [`Self::poll`] has work, if any.
    pub fn next_deadline(&self) -> Option<Duration> {
        self.pending
            .values()
            .filter(|p| !p.received)
            .map(|p| {
                if matches!(p.msg, LeaseMsg::Grant { .. }) {
                    p.next_retry.min(p.first_sent + self.cfg.expiry)
                } else {
                    p.next_retry
                }
            })
            .min()
    }

    fn backoff(&self, seq: u64, attempts: u32) -> Duration {
        backoff_delay(&self.cfg, seq, attempts)
    }
}

/// Capped exponential backoff with deterministic jitter: attempt `k` waits
/// `min(base << k, cap)` plus up to half that again, keyed on
/// `(jitter_seed, seq, k)` via SplitMix64 so record→replay stays exact.
fn backoff_delay(cfg: &LeaseConfig, seq: u64, attempts: u32) -> Duration {
    let base = cfg.backoff_base.as_nanos() as u64;
    let cap = cfg.backoff_cap.as_nanos() as u64;
    let shifted = base
        .checked_shl(attempts.min(32))
        .unwrap_or(cap)
        .min(cap)
        .max(1);
    let jitter =
        splitmix64(cfg.jitter_seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempts))
            % (shifted / 2 + 1);
    Duration::from_nanos(shifted + jitter)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of [`LeaseOut::on_greeting`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resync {
    /// The peer restarted with fresh receiver state and the link was
    /// renumbered. Any frames queued under the old numbering must be
    /// discarded in favor of [`Self::resend`].
    pub rebased: bool,
    /// Renumbered grants to put (back) on the wire immediately.
    pub resend: Vec<LeaseMsg>,
    /// The greeting ended a degraded spell (the peer rejoined).
    pub rejoined: bool,
}

/// A lease delivered by the receiver half.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Sequence number the lease arrived under.
    pub seq: u64,
    /// Lease identity.
    pub lease: u64,
    /// Hop counter carried by the grant.
    pub hop: u64,
    /// Remaining visits.
    pub visits: u64,
}

enum Slot {
    Grant { lease: u64, hop: u64, visits: u64 },
    Released,
}

/// Receiver half of a lease link.
pub struct LeaseIn {
    cursor: u64,
    buffered: BTreeMap<u64, Slot>,
    /// Highest hop seen (delivered or locally produced) per lease; grants
    /// at or below it are stale.
    fence: HashMap<u64, u64>,
    stats: LeaseLinkStats,
    /// This receiver's incarnation id, declared in every greeting. It
    /// outlives nothing: a process restart produces a fresh value, which
    /// is exactly what lets senders detect the restart.
    incarnation: u64,
}

impl Default for LeaseIn {
    fn default() -> Self {
        Self::new()
    }
}

impl LeaseIn {
    /// New receiver half with the cursor at zero and incarnation id 0;
    /// production receivers override the id with
    /// [`with_incarnation`](Self::with_incarnation).
    pub fn new() -> Self {
        LeaseIn {
            cursor: 0,
            buffered: BTreeMap::new(),
            fence: HashMap::new(),
            stats: LeaseLinkStats::default(),
            incarnation: 0,
        }
    }

    /// Sets the incarnation id this receiver declares in greetings.
    /// Pick a value fresh per process start (the peer plane derives one
    /// from wall time and pid) so restarts are detectable.
    #[must_use]
    pub fn with_incarnation(mut self, incarnation: u64) -> Self {
        self.incarnation = incarnation;
        self
    }

    /// The incarnation id declared in greetings.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Link statistics so far.
    pub fn stats(&self) -> LeaseLinkStats {
        self.stats
    }

    /// Next expected sequence number.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Record that this node itself produced `hop` for `lease` (it held the
    /// lease locally); any later grant at or below that hop is stale.
    pub fn fence(&mut self, lease: u64, hop: u64) {
        let e = self.fence.entry(lease).or_insert(0);
        *e = (*e).max(hop);
    }

    /// Process an incoming grant. Returns in-order deliveries unlocked by
    /// this frame (possibly none if it is out of order or a duplicate) and
    /// the cumulative ack to send back.
    pub fn on_grant(
        &mut self,
        seq: u64,
        lease: u64,
        hop: u64,
        visits: u64,
    ) -> (Vec<Delivery>, LeaseMsg) {
        if seq < self.cursor || self.buffered.contains_key(&seq) {
            self.stats.dup_dropped += 1;
            return (Vec::new(), self.ack(seq));
        }
        let fenced = self.fence.get(&lease).is_some_and(|&f| hop <= f);
        if fenced {
            // A stale re-grant (e.g. the sender reclaimed after a delivery
            // we already acked, then its release lost the race with this
            // retransmit). Fill the slot so the cursor moves, deliver
            // nothing.
            self.stats.stale_dropped += 1;
            self.buffered.insert(seq, Slot::Released);
        } else {
            self.buffered
                .insert(seq, Slot::Grant { lease, hop, visits });
        }
        let out = self.drain();
        (out, self.ack(seq))
    }

    /// Process a release (hole filler) for `seq`.
    pub fn on_release(&mut self, seq: u64) -> (Vec<Delivery>, LeaseMsg) {
        if seq >= self.cursor {
            self.buffered.insert(seq, Slot::Released);
        }
        let out = self.drain();
        (out, self.ack(seq))
    }

    /// The cumulative ack answering frame `seq` right now. Also useful
    /// unsolicited: a node sends one on every fresh connection so a
    /// returning sender re-syncs its view of the cursor.
    pub fn ack(&self, seq: u64) -> LeaseMsg {
        LeaseMsg::Ack {
            seq,
            cursor: self.cursor,
        }
    }

    fn drain(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(slot) = self.buffered.remove(&self.cursor) {
            if let Slot::Grant { lease, hop, visits } = slot {
                self.fence(lease, hop);
                out.push(Delivery {
                    seq: self.cursor,
                    lease,
                    hop,
                    visits,
                });
            }
            self.cursor += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            expiry: Duration::from_millis(100),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            jitter_seed: 7,
        }
    }

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn grant_ack_roundtrip_completes() {
        let mut out = LeaseOut::new(cfg());
        let mut inn = LeaseIn::new();
        let msg = out.grant(9, 1, 3, at(0));
        let LeaseMsg::Grant {
            seq,
            lease,
            hop,
            visits,
        } = msg
        else {
            panic!()
        };
        let (deliv, ack) = inn.on_grant(seq, lease, hop, visits);
        assert_eq!(
            deliv,
            vec![Delivery {
                seq: 0,
                lease: 9,
                hop: 1,
                visits: 3
            }]
        );
        let LeaseMsg::Ack { seq, cursor } = ack else {
            panic!()
        };
        assert_eq!((seq, cursor), (0, 1));
        out.on_ack(seq, cursor, at(1));
        assert_eq!(out.in_flight(), 0);
        assert!(out.poll(at(1000)).is_empty());
    }

    #[test]
    fn unacked_grant_retransmits_with_growing_backoff() {
        let mut out = LeaseOut::new(cfg());
        out.grant(1, 1, 1, at(0));
        // Not due yet at t=0.
        assert!(out.poll(at(0)).is_empty());
        let first = out.next_deadline().unwrap();
        assert!(first >= at(10) && first < at(100));
        let acts = out.poll(first);
        assert_eq!(acts.len(), 1);
        assert!(matches!(
            acts[0],
            LeaseAction::Send(LeaseMsg::Grant { seq: 0, .. })
        ));
        let second = out.next_deadline().unwrap();
        assert!(second > first);
        assert_eq!(out.stats().retransmits, 1);
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let c = cfg();
        for k in 0..20 {
            let d = backoff_delay(&c, 3, k);
            assert!(d <= Duration::from_millis(60), "attempt {k}: {d:?}");
            assert_eq!(d, backoff_delay(&c, 3, k));
        }
    }

    #[test]
    fn expiry_reclaims_and_leaves_release() {
        let mut out = LeaseOut::new(cfg());
        out.grant(5, 2, 4, at(0));
        let acts = out.poll(at(100));
        assert!(acts.contains(&LeaseAction::Reclaim {
            lease: 5,
            hop: 3,
            visits: 4
        }));
        assert!(acts.contains(&LeaseAction::Send(LeaseMsg::Release { seq: 0 })));
        assert!(out.degraded());
        assert_eq!(out.stats().reclaimed, 1);
        // The release keeps retransmitting but never reclaims again.
        let later = out.poll(at(1000));
        assert_eq!(later, vec![LeaseAction::Send(LeaseMsg::Release { seq: 0 })]);
        // An ack for the release ends degraded mode (peer rejoined).
        let rejoined = out.on_ack(0, 1, at(1100));
        assert!(rejoined);
        assert!(!out.degraded());
        assert_eq!(out.in_flight(), 0);
    }

    #[test]
    fn duplicate_grants_are_idempotent() {
        let mut inn = LeaseIn::new();
        let (d1, _) = inn.on_grant(0, 7, 1, 2);
        assert_eq!(d1.len(), 1);
        let (d2, ack) = inn.on_grant(0, 7, 1, 2);
        assert!(d2.is_empty());
        assert_eq!(ack, LeaseMsg::Ack { seq: 0, cursor: 1 });
        assert_eq!(inn.stats().dup_dropped, 1);
    }

    #[test]
    fn out_of_order_grants_buffer_until_cursor() {
        let mut inn = LeaseIn::new();
        let (d, ack) = inn.on_grant(1, 8, 1, 2);
        assert!(d.is_empty());
        assert_eq!(ack, LeaseMsg::Ack { seq: 1, cursor: 0 });
        let (d, ack) = inn.on_grant(0, 9, 1, 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].lease, 9);
        assert_eq!(d[1].lease, 8);
        assert_eq!(ack, LeaseMsg::Ack { seq: 0, cursor: 2 });
    }

    #[test]
    fn release_fills_hole_and_unblocks_cursor() {
        let mut inn = LeaseIn::new();
        let (d, _) = inn.on_grant(1, 3, 1, 2);
        assert!(d.is_empty());
        let (d, ack) = inn.on_release(0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lease, 3);
        assert_eq!(ack, LeaseMsg::Ack { seq: 0, cursor: 2 });
        // A late duplicate release is harmless.
        let (d, ack) = inn.on_release(0);
        assert!(d.is_empty());
        assert_eq!(ack, LeaseMsg::Ack { seq: 0, cursor: 2 });
    }

    #[test]
    fn hop_fence_refuses_stale_regrant() {
        let mut inn = LeaseIn::new();
        // We held lease 4 at hop 6 ourselves (e.g. via an earlier reclaim).
        inn.fence(4, 6);
        let (d, ack) = inn.on_grant(0, 4, 6, 3);
        assert!(d.is_empty());
        assert_eq!(inn.stats().stale_dropped, 1);
        // Cursor still advances so the link is not wedged.
        assert_eq!(ack, LeaseMsg::Ack { seq: 0, cursor: 1 });
        // A genuinely newer hop is delivered.
        let (d, _) = inn.on_grant(1, 4, 7, 2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn recovery_disabled_means_fire_and_forget() {
        let mut out = LeaseOut::new(LeaseConfig {
            expiry: Duration::ZERO,
            ..cfg()
        });
        out.grant(1, 1, 1, at(0));
        assert_eq!(out.in_flight(), 0);
        assert!(out.poll(at(10_000)).is_empty());
        assert_eq!(out.next_deadline(), None);
    }

    #[test]
    fn greeting_fast_forwards_a_fresh_sender() {
        // A restarted *sender* meets a receiver whose cursor is already at
        // 7: new grants must not reuse consumed sequence numbers.
        let mut out = LeaseOut::new(cfg());
        let r = out.on_greeting(1, 7, at(0));
        assert_eq!(
            r,
            Resync {
                rebased: false,
                resend: Vec::new(),
                rejoined: false
            }
        );
        assert_eq!(out.grant(1, 1, 1, at(0)).seq(), 7);
    }

    #[test]
    fn greeting_on_an_intact_link_is_a_plain_ack() {
        let mut out = LeaseOut::new(cfg());
        out.grant(1, 1, 2, at(0));
        // Reconnect, nothing delivered yet: cursor 0, seq 0 still pending.
        let r = out.on_greeting(1, 0, at(5));
        assert!(!r.rebased && r.resend.is_empty());
        assert_eq!(out.in_flight(), 1, "the pending grant survives untouched");
    }

    #[test]
    fn greeting_rebases_onto_a_restarted_receiver() {
        let mut out = LeaseOut::new(cfg());
        let mut inn = LeaseIn::new();
        // Old incarnation consumed seqs 0 and 1.
        for lease in [3, 4] {
            let LeaseMsg::Grant {
                seq,
                lease,
                hop,
                visits,
            } = out.grant(lease, 1, 5, at(0))
            else {
                panic!()
            };
            let (_, ack) = inn.on_grant(seq, lease, hop, visits);
            let LeaseMsg::Ack { seq, cursor } = ack else {
                panic!()
            };
            out.on_ack(seq, cursor, at(1));
        }
        // Seq 2 expires into a release; seq 3 is a live in-flight grant.
        out.grant(7, 2, 3, at(0));
        out.poll(at(100));
        out.grant(8, 1, 2, at(100));
        // The receiver is replaced by a fresh process greeting at cursor 0:
        // seqs 0 and 1 exist nowhere anymore, so the link must be rebased.
        let r = out.on_greeting(2, 0, at(150));
        assert!(r.rebased);
        assert!(
            r.rejoined,
            "the reclaim's degraded spell ends at the greeting"
        );
        // The release dies with the old incarnation; the surviving grant is
        // renumbered from the new cursor and delivers to the fresh receiver.
        assert_eq!(r.resend.len(), 1);
        let LeaseMsg::Grant {
            seq,
            lease,
            hop,
            visits,
        } = r.resend[0]
        else {
            panic!()
        };
        assert_eq!((seq, lease), (0, 8));
        let mut fresh = LeaseIn::new();
        let (d, _) = fresh.on_grant(seq, lease, hop, visits);
        assert_eq!(
            d,
            vec![Delivery {
                seq: 0,
                lease: 8,
                hop: 1,
                visits: 2
            }]
        );
        assert_eq!(
            out.grant(9, 1, 1, at(200)).seq(),
            1,
            "numbering continues from the rebase"
        );
    }

    #[test]
    fn direct_ack_of_buffered_frame_suppresses_timers_without_completing() {
        let mut out = LeaseOut::new(cfg());
        out.grant(1, 1, 2, at(0)); // seq 0 — lost in flight
        out.grant(2, 1, 2, at(0)); // seq 1 — arrives out of order, buffered

        // The receiver direct-acks the buffered frame; its cursor is
        // still 0 because seq 0 is a hole.
        out.on_ack(1, 0, at(5));
        assert_eq!(
            out.in_flight(),
            2,
            "buffered-but-undelivered must stay pending"
        );
        assert!(out.ack_latencies().is_empty(), "no completion yet");
        // Only the hole retransmits; the buffered frame is suppressed.
        let acts = out.poll(at(90));
        assert_eq!(
            acts,
            vec![LeaseAction::Send(LeaseMsg::Grant {
                seq: 0,
                lease: 1,
                hop: 1,
                visits: 2
            })]
        );
        // Expiry is suppressed too: reclaiming a frame the receiver
        // provably holds would race its delivery into a double grant.
        let acts = out.poll(at(150));
        assert!(
            acts.iter().all(|a| !matches!(
                a,
                LeaseAction::Reclaim { lease: 2, .. }
                    | LeaseAction::Send(LeaseMsg::Grant { seq: 1, .. })
            )),
            "the buffered frame must neither expire nor retransmit: {acts:?}"
        );
        // The hole fills (here: the reclaim's release), the receiver
        // delivers seq 1, and the cumulative cursor completes it.
        out.on_ack(0, 2, at(200));
        assert_eq!(out.in_flight(), 0);
        assert_eq!(out.ack_latencies().len(), 1, "completed at cursor advance");
    }

    #[test]
    fn buffered_but_undelivered_grant_survives_a_receiver_restart() {
        let mut out = LeaseOut::new(cfg());
        let mut inn = LeaseIn::new();
        // Seq 0 is delivered and cumulatively acked by the old incarnation.
        let LeaseMsg::Grant {
            seq,
            lease,
            hop,
            visits,
        } = out.grant(3, 1, 5, at(0))
        else {
            panic!()
        };
        let (_, ack) = inn.on_grant(seq, lease, hop, visits);
        let LeaseMsg::Ack { seq, cursor } = ack else {
            panic!()
        };
        out.on_ack(seq, cursor, at(1));
        // Seq 1 is lost; seq 2 arrives out of order and is direct-acked.
        out.grant(4, 1, 5, at(1));
        let LeaseMsg::Grant {
            seq,
            lease,
            hop,
            visits,
        } = out.grant(5, 1, 5, at(1))
        else {
            panic!()
        };
        let (d, ack) = inn.on_grant(seq, lease, hop, visits);
        assert!(d.is_empty(), "out of order: buffered, not delivered");
        let LeaseMsg::Ack { seq, cursor } = ack else {
            panic!()
        };
        assert_eq!((seq, cursor), (2, 1));
        out.on_ack(seq, cursor, at(2));
        // The receiver crashes — its reorder buffer dies with it. The
        // replacement greets at cursor 0; seq 0 is pending nowhere, so
        // the link rebases, and the buffered-but-undelivered lease must
        // be among the renumbered resends or it is lost forever.
        let r = out.on_greeting(1, 0, at(10));
        assert!(r.rebased);
        let leases: Vec<u64> = r
            .resend
            .iter()
            .map(|m| match *m {
                LeaseMsg::Grant { lease, .. } => lease,
                other => panic!("unexpected resend {other:?}"),
            })
            .collect();
        assert_eq!(leases, vec![4, 5], "lease 5 was acked but never delivered");
        let mut fresh = LeaseIn::new();
        let mut delivered = Vec::new();
        for m in r.resend {
            let LeaseMsg::Grant {
                seq,
                lease,
                hop,
                visits,
            } = m
            else {
                panic!()
            };
            let (d, _) = fresh.on_grant(seq, lease, hop, visits);
            delivered.extend(d.into_iter().map(|d| d.lease));
        }
        assert_eq!(delivered, vec![4, 5]);
    }

    #[test]
    fn greeting_clears_received_marks_so_retransmits_resume() {
        let mut out = LeaseOut::new(cfg());
        out.grant(1, 1, 2, at(0)); // seq 0 — lost
        out.grant(2, 1, 2, at(0)); // seq 1 — buffered + direct-acked
        out.on_ack(1, 0, at(5));
        assert!(
            !out.poll(at(90))
                .contains(&LeaseAction::Send(LeaseMsg::Grant {
                    seq: 1,
                    lease: 2,
                    hop: 1,
                    visits: 2
                })),
            "suppressed while the buffer is presumed alive"
        );
        // The receiver restarts before delivering anything: cursor 0
        // again and every seq still pending, so the link looks intact —
        // but the buffer is gone, and the greeting must unsuppress
        // retransmission or lease 2 is stranded.
        let r = out.on_greeting(1, 0, at(95));
        assert!(!r.rebased);
        let acts = out.poll(at(99));
        assert!(
            acts.contains(&LeaseAction::Send(LeaseMsg::Grant {
                seq: 1,
                lease: 2,
                hop: 1,
                visits: 2
            })),
            "retransmission must resume after the greeting: {acts:?}"
        );
    }

    #[test]
    fn incarnation_change_rebases_an_intact_looking_link() {
        let mut out = LeaseOut::new(cfg());
        // First contact: the receiver greets as incarnation 7.
        assert!(!out.on_greeting(7, 0, at(0)).rebased);
        out.grant(1, 1, 2, at(1)); // seq 0, in flight

        // The receiver restarts before delivering anything and greets
        // again at cursor 0 with every seq still pending — structurally
        // indistinguishable from a plain reconnect, which is exactly
        // the case the old empty-reorder-buffer heuristic could not
        // decide. The new incarnation id is proof of the restart.
        let r = out.on_greeting(8, 0, at(5));
        assert!(r.rebased, "incarnation change must force a rebase");
        assert_eq!(r.resend.len(), 1, "the in-flight grant rides the resend");
        assert_eq!(out.in_flight(), 1);
    }

    #[test]
    fn same_incarnation_regreeting_stays_intact() {
        let mut out = LeaseOut::new(cfg());
        assert!(!out.on_greeting(7, 0, at(0)).rebased);
        out.grant(1, 1, 2, at(1)); // seq 0 — lost, still pending
        out.grant(2, 1, 2, at(1)); // seq 1 — buffered + direct-acked
        out.on_ack(1, 0, at(2));
        // An ordinary reconnect of the same incarnation: no rebase, but
        // the received mark is void (the connection flap says nothing
        // about the buffer, clearing it is merely conservative) so both
        // frames retransmit and the surviving receiver dedups.
        let r = out.on_greeting(7, 0, at(5));
        assert!(!r.rebased && r.resend.is_empty());
        assert_eq!(out.in_flight(), 2, "pending grants survive untouched");
        let acts = out.poll(at(90));
        assert!(
            acts.contains(&LeaseAction::Send(LeaseMsg::Grant {
                seq: 1,
                lease: 2,
                hop: 1,
                visits: 2
            })),
            "retransmits resume after the regreeting: {acts:?}"
        );
    }

    #[test]
    fn reclaimed_lease_can_be_regranted_after_rejoin() {
        let mut out = LeaseOut::new(cfg());
        let mut inn = LeaseIn::new();
        out.grant(5, 1, 4, at(0));
        // The grant is lost; expiry reclaims it.
        let acts = out.poll(at(100));
        let Some(LeaseAction::Reclaim { lease, hop, visits }) = acts
            .iter()
            .find(|a| matches!(a, LeaseAction::Reclaim { .. }))
        else {
            panic!()
        };
        // Local degraded visit burns one.
        let (lease, hop, visits) = (*lease, *hop, visits - 1);
        // Peer returns: release goes through, then the re-grant.
        let (_, ack) = inn.on_release(0);
        let LeaseMsg::Ack { seq, cursor } = ack else {
            panic!()
        };
        assert!(out.on_ack(seq, cursor, at(200)));
        let msg = out.grant(lease, hop, visits, at(200));
        let LeaseMsg::Grant {
            seq,
            lease,
            hop,
            visits,
        } = msg
        else {
            panic!()
        };
        let (d, _) = inn.on_grant(seq, lease, hop, visits);
        assert_eq!(
            d,
            vec![Delivery {
                seq: 1,
                lease: 5,
                hop: 2,
                visits: 3
            }]
        );
    }
}

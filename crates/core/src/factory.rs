//! Aspect creation via the Factory Method pattern (paper Figures 4–6, 15).
//!
//! The proxy never instantiates aspect classes directly; it asks an
//! [`AspectFactory`] for "the aspect for (method, concern)". Adaptability
//! (Section 5.3 of the paper) then reduces to supplying a richer factory:
//! [`ChainedFactory`] is the Rust rendering of `ExtendedAspectFactory
//! extends AspectFactory` — new factories are consulted first and fall
//! back to the base.

use std::collections::HashMap;
use std::fmt;

use crate::aspect::Aspect;
use crate::concern::{Concern, MethodId};

/// Creates aspect objects on request — the paper's `AspectFactoryIF`.
///
/// Returning `None` means this factory does not know how to build an
/// aspect for the given cell (the typed version of the paper's `return
/// null`).
pub trait AspectFactory: Send + Sync {
    /// Creates the aspect for the (method, concern) cell, if this factory
    /// knows how.
    fn create(&self, method: &MethodId, concern: &Concern) -> Option<Box<dyn Aspect>>;
}

type Constructor = Box<dyn Fn() -> Box<dyn Aspect> + Send + Sync>;

/// Table-driven [`AspectFactory`]: constructors keyed by exact
/// (method, concern) cell, with optional per-concern fallbacks applying
/// to any method.
///
/// ```
/// use amf_core::{AspectFactory, Concern, MethodId, NoopAspect, RegistryFactory};
///
/// let mut f = RegistryFactory::new();
/// f.provide(MethodId::new("open"), Concern::synchronization(), || Box::new(NoopAspect));
/// f.provide_for_concern(Concern::audit(), || Box::new(NoopAspect));
///
/// assert!(f.create(&MethodId::new("open"), &Concern::synchronization()).is_some());
/// assert!(f.create(&MethodId::new("anything"), &Concern::audit()).is_some());
/// assert!(f.create(&MethodId::new("open"), &Concern::quota()).is_none());
/// ```
#[derive(Default)]
pub struct RegistryFactory {
    exact: HashMap<(MethodId, Concern), Constructor>,
    by_concern: HashMap<Concern, Constructor>,
}

impl fmt::Debug for RegistryFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegistryFactory")
            .field("exact_cells", &self.exact.len())
            .field("concern_fallbacks", &self.by_concern.len())
            .finish()
    }
}

impl RegistryFactory {
    /// Creates an empty factory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a constructor for an exact (method, concern) cell,
    /// replacing any previous one.
    pub fn provide(
        &mut self,
        method: MethodId,
        concern: Concern,
        ctor: impl Fn() -> Box<dyn Aspect> + Send + Sync + 'static,
    ) -> &mut Self {
        self.exact.insert((method, concern), Box::new(ctor));
        self
    }

    /// Registers a constructor used for `concern` on *any* method that
    /// has no exact cell, replacing any previous fallback.
    pub fn provide_for_concern(
        &mut self,
        concern: Concern,
        ctor: impl Fn() -> Box<dyn Aspect> + Send + Sync + 'static,
    ) -> &mut Self {
        self.by_concern.insert(concern, Box::new(ctor));
        self
    }

    /// Number of exact cells plus concern fallbacks.
    pub fn len(&self) -> usize {
        self.exact.len() + self.by_concern.len()
    }

    /// Whether no constructors are registered.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.by_concern.is_empty()
    }
}

impl AspectFactory for RegistryFactory {
    fn create(&self, method: &MethodId, concern: &Concern) -> Option<Box<dyn Aspect>> {
        if let Some(ctor) = self.exact.get(&(method.clone(), concern.clone())) {
            return Some(ctor());
        }
        self.by_concern.get(concern).map(|ctor| ctor())
    }
}

/// Ordered chain of factories; the first one that knows how to build the
/// requested aspect wins.
///
/// This is the framework's adaptability mechanism: extend a running
/// system by pushing a factory for the new concern in front of the
/// existing ones (paper Figure 15).
///
/// ```
/// use amf_core::{AspectFactory, ChainedFactory, Concern, MethodId, NoopAspect,
///                RegistryFactory};
///
/// let mut base = RegistryFactory::new();
/// base.provide_for_concern(Concern::synchronization(), || Box::new(NoopAspect));
///
/// let mut extended = RegistryFactory::new();
/// extended.provide_for_concern(Concern::authentication(), || Box::new(NoopAspect));
///
/// let chain = ChainedFactory::new()
///     .with(extended)   // consulted first
///     .with(base);
/// assert!(chain.create(&MethodId::new("open"), &Concern::authentication()).is_some());
/// assert!(chain.create(&MethodId::new("open"), &Concern::synchronization()).is_some());
/// ```
#[derive(Default)]
pub struct ChainedFactory {
    links: Vec<Box<dyn AspectFactory>>,
}

impl fmt::Debug for ChainedFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChainedFactory")
            .field("links", &self.links.len())
            .finish()
    }
}

impl ChainedFactory {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a factory to the end of the chain (lowest priority so
    /// far), builder style.
    #[must_use]
    pub fn with(mut self, factory: impl AspectFactory + 'static) -> Self {
        self.links.push(Box::new(factory));
        self
    }

    /// Inserts a factory at the *front* of the chain (highest priority) —
    /// how a running system is extended with a new concern.
    pub fn prepend(&mut self, factory: impl AspectFactory + 'static) {
        self.links.insert(0, Box::new(factory));
    }

    /// Appends a factory at the back of the chain.
    pub fn append(&mut self, factory: impl AspectFactory + 'static) {
        self.links.push(Box::new(factory));
    }

    /// Number of factories in the chain.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

impl AspectFactory for ChainedFactory {
    fn create(&self, method: &MethodId, concern: &Concern) -> Option<Box<dyn Aspect>> {
        self.links.iter().find_map(|f| f.create(method, concern))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::FnAspect;

    fn named_factory(concern: Concern, name: &'static str) -> RegistryFactory {
        let mut f = RegistryFactory::new();
        f.provide_for_concern(concern, move || Box::new(FnAspect::new(name)));
        f
    }

    #[test]
    fn exact_cell_beats_concern_fallback() {
        let mut f = RegistryFactory::new();
        f.provide_for_concern(Concern::audit(), || Box::new(FnAspect::new("generic")));
        f.provide(MethodId::new("open"), Concern::audit(), || {
            Box::new(FnAspect::new("specific"))
        });
        let a = f.create(&MethodId::new("open"), &Concern::audit()).unwrap();
        assert_eq!(a.describe(), "specific");
        let b = f
            .create(&MethodId::new("assign"), &Concern::audit())
            .unwrap();
        assert_eq!(b.describe(), "generic");
    }

    #[test]
    fn unknown_cell_returns_none() {
        let f = RegistryFactory::new();
        assert!(f
            .create(&MethodId::new("open"), &Concern::synchronization())
            .is_none());
        assert!(f.is_empty());
    }

    #[test]
    fn provide_replaces_previous_constructor() {
        let mut f = RegistryFactory::new();
        f.provide(MethodId::new("m"), Concern::audit(), || {
            Box::new(FnAspect::new("v1"))
        });
        f.provide(MethodId::new("m"), Concern::audit(), || {
            Box::new(FnAspect::new("v2"))
        });
        assert_eq!(f.len(), 1);
        let a = f.create(&MethodId::new("m"), &Concern::audit()).unwrap();
        assert_eq!(a.describe(), "v2");
    }

    #[test]
    fn chain_tries_links_in_order() {
        let chain = ChainedFactory::new()
            .with(named_factory(Concern::audit(), "first"))
            .with(named_factory(Concern::audit(), "second"));
        let a = chain
            .create(&MethodId::new("m"), &Concern::audit())
            .unwrap();
        assert_eq!(a.describe(), "first");
    }

    #[test]
    fn chain_falls_through_to_later_links() {
        let chain = ChainedFactory::new()
            .with(named_factory(Concern::authentication(), "auth"))
            .with(named_factory(Concern::synchronization(), "sync"));
        assert_eq!(
            chain
                .create(&MethodId::new("m"), &Concern::synchronization())
                .unwrap()
                .describe(),
            "sync"
        );
        assert!(chain
            .create(&MethodId::new("m"), &Concern::quota())
            .is_none());
    }

    #[test]
    fn prepend_takes_priority() {
        let mut chain = ChainedFactory::new().with(named_factory(Concern::audit(), "base"));
        chain.prepend(named_factory(Concern::audit(), "extension"));
        assert_eq!(chain.len(), 2);
        assert_eq!(
            chain
                .create(&MethodId::new("m"), &Concern::audit())
                .unwrap()
                .describe(),
            "extension"
        );
    }

    #[test]
    fn append_has_lowest_priority() {
        let mut chain = ChainedFactory::new().with(named_factory(Concern::audit(), "base"));
        chain.append(named_factory(Concern::audit(), "fallback"));
        assert_eq!(
            chain
                .create(&MethodId::new("m"), &Concern::audit())
                .unwrap()
                .describe(),
            "base"
        );
    }

    #[test]
    fn factories_are_object_safe_send_sync() {
        fn assert_ok<T: Send + Sync>() {}
        assert_ok::<Box<dyn AspectFactory>>();
        assert_ok::<RegistryFactory>();
        assert_ok::<ChainedFactory>();
    }

    #[test]
    fn each_create_returns_fresh_instance() {
        let f = named_factory(Concern::audit(), "a");
        let x = f.create(&MethodId::new("m"), &Concern::audit()).unwrap();
        let y = f.create(&MethodId::new("m"), &Concern::audit()).unwrap();
        // Boxes are distinct allocations.
        assert_ne!(
            &*x as *const dyn Aspect as *const u8,
            &*y as *const dyn Aspect as *const u8
        );
    }
}

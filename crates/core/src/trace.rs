//! Event tracing for the moderation protocol.
//!
//! The paper specifies the framework with UML sequence diagrams
//! (Figure 2: initialization, Figure 3: method invocation). To *prove*
//! our implementation follows those diagrams, the moderator can emit a
//! [`TraceEvent`] at every protocol step into a [`TraceSink`]; the
//! integration tests assert that recorded traces match the figures
//! (`tests/figure_traces.rs`).

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::concern::{Concern, MethodId};

/// One step of the moderation protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An aspect was created by a factory (Figure 2 `createAspect`).
    AspectCreated,
    /// An aspect was stored in the bank (Figure 2 `registerAspect`).
    AspectRegistered,
    /// An aspect was removed from the bank (framework extension).
    AspectDeregistered,
    /// Pre-activation began for an invocation (Figure 3 `preactivation`).
    PreactivationStarted,
    /// A precondition evaluated to RESUME.
    PreconditionResumed,
    /// A precondition evaluated to BLOCKED.
    PreconditionBlocked,
    /// A precondition evaluated to ABORT.
    PreconditionAborted,
    /// A previously resumed aspect was rolled back because a later aspect
    /// blocked or aborted (framework extension, experiment E7).
    AspectReleased,
    /// The caller parked on the method's wait queue.
    WaitStarted,
    /// The caller woke from the wait queue and will re-evaluate.
    WaitWoken,
    /// Pre-activation finished with RESUME; the functional method may run.
    ActivationResumed,
    /// Pre-activation failed (abort or timeout).
    ActivationAborted,
    /// The functional method body ran (emitted by the proxy).
    MethodInvoked,
    /// Post-activation began (Figure 3 `postactivation`).
    PostactivationStarted,
    /// An aspect's postaction ran.
    PostactionRun,
    /// The moderator notified a method's wait queue; the payload is the
    /// notified method.
    NotificationSent(MethodId),
    /// An aspect callback panicked and the moderator contained the
    /// unwind (robustness extension; see DESIGN.md "Fault containment").
    PanicCaught,
    /// An aspect slot exceeded its panic budget and was quarantined: it
    /// evaluates as a no-op from now on.
    AspectQuarantined,
}

/// A timestamped-by-order record of one protocol step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The invocation this event belongs to; zero for registration-time
    /// events, which happen outside any invocation.
    pub invocation: u64,
    /// The participating method involved.
    pub method: MethodId,
    /// The concern involved, when the step is aspect-specific.
    pub concern: Option<Concern>,
    /// Which protocol step occurred.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Compact single-line rendering used by tests and examples, e.g.
    /// `"#3 precondition-resumed open/sync"`.
    pub fn compact(&self) -> String {
        let kind = match &self.kind {
            EventKind::AspectCreated => "aspect-created".to_string(),
            EventKind::AspectRegistered => "aspect-registered".to_string(),
            EventKind::AspectDeregistered => "aspect-deregistered".to_string(),
            EventKind::PreactivationStarted => "preactivation".to_string(),
            EventKind::PreconditionResumed => "precondition-resumed".to_string(),
            EventKind::PreconditionBlocked => "precondition-blocked".to_string(),
            EventKind::PreconditionAborted => "precondition-aborted".to_string(),
            EventKind::AspectReleased => "aspect-released".to_string(),
            EventKind::WaitStarted => "wait".to_string(),
            EventKind::WaitWoken => "woken".to_string(),
            EventKind::ActivationResumed => "resumed".to_string(),
            EventKind::ActivationAborted => "aborted".to_string(),
            EventKind::MethodInvoked => "method-invoked".to_string(),
            EventKind::PostactivationStarted => "postactivation".to_string(),
            EventKind::PostactionRun => "postaction".to_string(),
            EventKind::NotificationSent(target) => format!("notify->{target}"),
            EventKind::PanicCaught => "panic-caught".to_string(),
            EventKind::AspectQuarantined => "quarantined".to_string(),
        };
        match &self.concern {
            Some(c) => format!("#{} {} {}/{}", self.invocation, kind, self.method, c),
            None => format!("#{} {} {}", self.invocation, kind, self.method),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

/// Receives protocol events from a moderator.
///
/// Implementations must tolerate concurrent calls; the moderator records
/// while holding its own lock, so sinks should be fast and must never
/// call back into the moderator (deadlock).
pub trait TraceSink: Send + Sync {
    /// Records one protocol step.
    fn record(&self, event: TraceEvent);
}

/// A [`TraceSink`] that keeps every event in memory, in record order.
///
/// ```
/// use std::sync::Arc;
/// use amf_core::trace::{EventKind, MemoryTrace, TraceEvent, TraceSink};
/// use amf_core::MethodId;
///
/// let trace = Arc::new(MemoryTrace::new());
/// trace.record(TraceEvent {
///     invocation: 1,
///     method: MethodId::new("open"),
///     concern: None,
///     kind: EventKind::PreactivationStarted,
/// });
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.events()[0].compact(), "#1 preactivation open");
/// ```
#[derive(Default)]
pub struct MemoryTrace {
    events: Mutex<Vec<TraceEvent>>,
}

impl fmt::Debug for MemoryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryTrace")
            .field("len", &self.len())
            .finish()
    }
}

impl MemoryTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: a new trace already wrapped in an [`Arc`] for handing
    /// to a moderator builder.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Snapshot of the events belonging to one invocation.
    pub fn events_for(&self, invocation: u64) -> Vec<TraceEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.invocation == invocation)
            .cloned()
            .collect()
    }

    /// Compact one-line-per-event rendering of the whole trace.
    pub fn compact(&self) -> Vec<String> {
        self.events.lock().iter().map(TraceEvent::compact).collect()
    }

    /// Clears all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl TraceSink for MemoryTrace {
    fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }
}

/// Fans events out to several sinks in order.
///
/// ```
/// use std::sync::Arc;
/// use amf_core::trace::{MemoryTrace, TeeSink, TraceSink};
///
/// let a = MemoryTrace::shared();
/// let b = MemoryTrace::shared();
/// let tee = TeeSink::new(vec![a.clone(), b.clone()]);
/// # let _ = &tee;
/// ```
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TeeSink {
    /// Creates a tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: TraceEvent) {
        for sink in &self.sinks {
            sink.record(event.clone());
        }
    }
}

type TracePredicate = Box<dyn Fn(&TraceEvent) -> bool + Send + Sync>;

/// Forwards only the events matching a predicate — e.g. keep a full
/// protocol trace out of production but retain every abort.
///
/// ```
/// use std::sync::Arc;
/// use amf_core::trace::{EventKind, FilterSink, MemoryTrace};
///
/// let aborts = MemoryTrace::shared();
/// let only_aborts = FilterSink::new(aborts.clone(), |e| {
///     matches!(e.kind, EventKind::ActivationAborted | EventKind::PreconditionAborted)
/// });
/// # let _ = only_aborts;
/// ```
pub struct FilterSink {
    inner: Arc<dyn TraceSink>,
    predicate: TracePredicate,
}

impl fmt::Debug for FilterSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilterSink").finish_non_exhaustive()
    }
}

impl FilterSink {
    /// Creates a filter forwarding to `inner` the events `predicate`
    /// accepts.
    pub fn new(
        inner: Arc<dyn TraceSink>,
        predicate: impl Fn(&TraceEvent) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            inner,
            predicate: Box::new(predicate),
        }
    }
}

impl TraceSink for FilterSink {
    fn record(&self, event: TraceEvent) {
        if (self.predicate)(&event) {
            self.inner.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(invocation: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            invocation,
            method: MethodId::new("open"),
            concern: Some(Concern::synchronization()),
            kind,
        }
    }

    #[test]
    fn records_in_order() {
        let t = MemoryTrace::new();
        t.record(ev(1, EventKind::PreactivationStarted));
        t.record(ev(1, EventKind::PreconditionResumed));
        t.record(ev(1, EventKind::ActivationResumed));
        let kinds: Vec<_> = t.events().into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::PreactivationStarted,
                EventKind::PreconditionResumed,
                EventKind::ActivationResumed
            ]
        );
    }

    #[test]
    fn events_for_filters_by_invocation() {
        let t = MemoryTrace::new();
        t.record(ev(1, EventKind::PreactivationStarted));
        t.record(ev(2, EventKind::PreactivationStarted));
        t.record(ev(1, EventKind::ActivationResumed));
        assert_eq!(t.events_for(1).len(), 2);
        assert_eq!(t.events_for(2).len(), 1);
        assert!(t.events_for(3).is_empty());
    }

    #[test]
    fn compact_rendering() {
        assert_eq!(
            ev(4, EventKind::PreconditionBlocked).compact(),
            "#4 precondition-blocked open/sync"
        );
        let notify = TraceEvent {
            invocation: 2,
            method: MethodId::new("open"),
            concern: None,
            kind: EventKind::NotificationSent(MethodId::new("assign")),
        };
        assert_eq!(notify.compact(), "#2 notify->assign open");
        assert_eq!(notify.to_string(), notify.compact());
    }

    #[test]
    fn clear_empties_trace() {
        let t = MemoryTrace::new();
        t.record(ev(1, EventKind::MethodInvoked));
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn tee_duplicates_events() {
        let a = MemoryTrace::shared();
        let b = MemoryTrace::shared();
        let tee = TeeSink::new(vec![a.clone(), b.clone()]);
        tee.record(ev(1, EventKind::MethodInvoked));
        tee.record(ev(2, EventKind::PostactionRun));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn filter_drops_unmatched_events() {
        let inner = MemoryTrace::shared();
        let filter = FilterSink::new(inner.clone(), |e| {
            matches!(e.kind, EventKind::PreconditionAborted)
        });
        filter.record(ev(1, EventKind::MethodInvoked));
        filter.record(ev(2, EventKind::PreconditionAborted));
        filter.record(ev(3, EventKind::PostactionRun));
        assert_eq!(inner.len(), 1);
        assert_eq!(inner.events()[0].invocation, 2);
    }

    #[test]
    fn sinks_compose_with_a_moderator() {
        use crate::{AspectModerator, MethodId};
        let everything = MemoryTrace::shared();
        let aborts_only = MemoryTrace::shared();
        let tee = Arc::new(TeeSink::new(vec![
            everything.clone(),
            Arc::new(FilterSink::new(aborts_only.clone(), |e| {
                matches!(e.kind, EventKind::ActivationAborted)
            })),
        ]));
        let moderator = AspectModerator::builder().trace(tee).build();
        let m = moderator.declare_method(MethodId::new("op"));
        let mut ctx = crate::InvocationContext::new(m.id().clone(), 1);
        moderator.preactivation(&m, &mut ctx).unwrap();
        moderator.postactivation(&m, &mut ctx);
        assert!(everything.len() >= 3);
        assert!(aborts_only.is_empty());
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let t = MemoryTrace::shared();
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    t.record(ev(i, EventKind::PostactionRun));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 400);
    }
}

//! Per-invocation context passed to every aspect.
//!
//! The paper's aspects receive only the method name; real concerns need
//! more: *who* is calling (authentication), *what* the outcome was (fault
//! tolerance), and a scratch area where one phase leaves data for another
//! (a metrics aspect stores the start time in `precondition` and reads it
//! back in `postaction`). [`InvocationContext`] carries all three.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::concern::MethodId;

/// The identity on whose behalf an invocation runs.
///
/// ```
/// use amf_core::Principal;
///
/// let alice = Principal::new("alice");
/// assert_eq!(alice.name(), "alice");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Principal(Arc<str>);

impl Principal {
    /// Creates a principal with the given name.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Self(name.into())
    }

    /// The principal's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Principal({})", self.0)
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Principal {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// Outcome of the functional method, visible to post-activation aspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Outcome {
    /// The method has not run (pre-activation phase) or ran successfully.
    #[default]
    Success,
    /// The method ran and reported a domain failure.
    Failure,
}

/// Mutable, typed scratch state threaded through one guarded invocation.
///
/// Aspects communicate across phases by storing typed attributes:
///
/// ```
/// use amf_core::{InvocationContext, MethodId};
///
/// #[derive(Debug, PartialEq)]
/// struct StartedAt(u64);
///
/// let mut ctx = InvocationContext::new(MethodId::new("open"), 1);
/// ctx.insert(StartedAt(42));
/// assert_eq!(ctx.get::<StartedAt>(), Some(&StartedAt(42)));
/// ```
pub struct InvocationContext {
    method: MethodId,
    invocation: u64,
    principal: Option<Principal>,
    outcome: Outcome,
    attrs: HashMap<TypeId, Box<dyn Any + Send>>,
    /// Set by a fast-lane preactivation (single-CAS admit, no chain
    /// evaluation); tells postactivation to depart through the matching
    /// CAS release instead of the locked path.
    pub(crate) fast_admitted: bool,
}

impl fmt::Debug for InvocationContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvocationContext")
            .field("method", &self.method)
            .field("invocation", &self.invocation)
            .field("principal", &self.principal)
            .field("outcome", &self.outcome)
            .field("attrs", &self.attrs.len())
            .finish()
    }
}

impl InvocationContext {
    /// Creates a context for invocation number `invocation` of `method`.
    ///
    /// Usually done by the [`Moderated`](crate::Moderated) proxy, which
    /// assigns the invocation number; constructing one directly is useful
    /// for driving the moderator by hand or for testing aspects.
    pub fn new(method: MethodId, invocation: u64) -> Self {
        Self {
            method,
            invocation,
            principal: None,
            outcome: Outcome::default(),
            attrs: HashMap::new(),
            fast_admitted: false,
        }
    }

    /// Whether this invocation was admitted through the lock-free fast
    /// lane (no aspect chain evaluation; meaningful between
    /// pre-activation and post-activation).
    pub fn fast_admitted(&self) -> bool {
        self.fast_admitted
    }

    /// Attaches a principal (builder style).
    #[must_use]
    pub fn with_principal(mut self, principal: Principal) -> Self {
        self.principal = Some(principal);
        self
    }

    /// The participating method being invoked.
    pub fn method(&self) -> &MethodId {
        &self.method
    }

    /// Monotonic invocation number assigned by the moderator/proxy.
    pub fn invocation(&self) -> u64 {
        self.invocation
    }

    /// The caller's identity, if one was attached.
    pub fn principal(&self) -> Option<&Principal> {
        self.principal.as_ref()
    }

    /// Sets the caller's identity.
    pub fn set_principal(&mut self, principal: Principal) {
        self.principal = Some(principal);
    }

    /// Outcome of the functional method (meaningful during
    /// post-activation).
    pub fn outcome(&self) -> Outcome {
        self.outcome
    }

    /// Records the functional method's outcome; called by the proxy for
    /// fallible invocations.
    pub fn set_outcome(&mut self, outcome: Outcome) {
        self.outcome = outcome;
    }

    /// Stores a typed attribute, returning the previous value of the same
    /// type if any.
    pub fn insert<T: Any + Send>(&mut self, value: T) -> Option<T> {
        self.attrs
            .insert(TypeId::of::<T>(), Box::new(value))
            .map(|old| *old.downcast::<T>().expect("attr map type invariant"))
    }

    /// Reads a typed attribute.
    pub fn get<T: Any + Send>(&self) -> Option<&T> {
        self.attrs
            .get(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref::<T>())
    }

    /// Mutably reads a typed attribute.
    pub fn get_mut<T: Any + Send>(&mut self) -> Option<&mut T> {
        self.attrs
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<T>())
    }

    /// Removes and returns a typed attribute.
    pub fn remove<T: Any + Send>(&mut self) -> Option<T> {
        self.attrs
            .remove(&TypeId::of::<T>())
            .map(|b| *b.downcast::<T>().expect("attr map type invariant"))
    }

    /// Whether an attribute of type `T` is present.
    pub fn contains<T: Any + Send>(&self) -> bool {
        self.attrs.contains_key(&TypeId::of::<T>())
    }

    /// Number of stored attributes.
    pub fn attr_len(&self) -> usize {
        self.attrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Token(u64);
    #[derive(Debug, PartialEq)]
    struct Note(&'static str);

    fn ctx() -> InvocationContext {
        InvocationContext::new(MethodId::new("open"), 7)
    }

    #[test]
    fn carries_method_and_invocation() {
        let c = ctx();
        assert_eq!(c.method().as_str(), "open");
        assert_eq!(c.invocation(), 7);
    }

    #[test]
    fn principal_roundtrip() {
        let mut c = ctx();
        assert!(c.principal().is_none());
        c.set_principal(Principal::new("alice"));
        assert_eq!(c.principal().unwrap().name(), "alice");
        let c2 = ctx().with_principal("bob".into());
        assert_eq!(c2.principal().unwrap().name(), "bob");
    }

    #[test]
    fn outcome_defaults_to_success() {
        let mut c = ctx();
        assert_eq!(c.outcome(), Outcome::Success);
        c.set_outcome(Outcome::Failure);
        assert_eq!(c.outcome(), Outcome::Failure);
    }

    #[test]
    fn typed_attrs_are_isolated_by_type() {
        let mut c = ctx();
        c.insert(Token(1));
        c.insert(Note("hello"));
        assert_eq!(c.get::<Token>(), Some(&Token(1)));
        assert_eq!(c.get::<Note>(), Some(&Note("hello")));
        assert_eq!(c.attr_len(), 2);
    }

    #[test]
    fn insert_returns_previous_value() {
        let mut c = ctx();
        assert_eq!(c.insert(Token(1)), None);
        assert_eq!(c.insert(Token(2)), Some(Token(1)));
        assert_eq!(c.get::<Token>(), Some(&Token(2)));
    }

    #[test]
    fn get_mut_and_remove() {
        let mut c = ctx();
        c.insert(Token(5));
        c.get_mut::<Token>().unwrap().0 += 1;
        assert!(c.contains::<Token>());
        assert_eq!(c.remove::<Token>(), Some(Token(6)));
        assert!(!c.contains::<Token>());
        assert_eq!(c.remove::<Token>(), None);
    }

    #[test]
    fn context_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<InvocationContext>();
    }

    #[test]
    fn debug_shows_fields() {
        let c = ctx();
        let s = format!("{c:?}");
        assert!(s.contains("open"));
        assert!(s.contains("invocation: 7"));
    }
}

//! Declarative composition blueprints.
//!
//! The paper's initialization code (Figure 5) wires a composition one
//! `registerAspect(create(...))` call at a time, failing midway if a
//! factory cannot build a cell. A [`Blueprint`] makes the whole
//! two-dimensional composition — every (method, concern) cell plus the
//! wake graph — a first-class *description* that is validated
//! atomically: either every cell can be built and the moderator is
//! populated, or nothing is registered and *all* problems are reported
//! at once.

use std::fmt;

use crate::concern::{Concern, MethodId};
use crate::error::RegistrationError;
use crate::factory::AspectFactory;
use crate::moderator::{AspectModerator, MethodHandle};

/// A declarative description of a composition: methods × concerns plus
/// wake wiring, applied to a moderator in one validated step.
///
/// ```
/// use amf_core::{AspectModerator, Blueprint, Concern, MethodId, NoopAspect,
///                RegistryFactory};
///
/// let mut factory = RegistryFactory::new();
/// factory.provide_for_concern(Concern::synchronization(), || Box::new(NoopAspect));
/// factory.provide_for_concern(Concern::audit(), || Box::new(NoopAspect));
///
/// let blueprint = Blueprint::new()
///     .method("open", [Concern::synchronization(), Concern::audit()])
///     .method("assign", [Concern::synchronization()])
///     .wake("open", ["assign"])
///     .wake("assign", ["open"]);
///
/// let moderator = AspectModerator::shared();
/// let handles = blueprint.apply(&moderator, &factory).unwrap();
/// assert_eq!(handles.len(), 2);
/// assert_eq!(moderator.concerns(&handles["open"]).len(), 2);
/// ```
#[derive(Default)]
pub struct Blueprint {
    methods: Vec<(MethodId, Vec<Concern>)>,
    wakes: Vec<(MethodId, Vec<MethodId>)>,
}

impl fmt::Debug for Blueprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (m, cs) in &self.methods {
            let names: Vec<&str> = cs.iter().map(Concern::as_str).collect();
            map.entry(&m.as_str(), &names);
        }
        map.finish()
    }
}

/// Handles produced by [`Blueprint::apply`], indexed by method name.
#[derive(Debug, Clone, Default)]
pub struct BlueprintHandles {
    handles: Vec<(MethodId, MethodHandle)>,
}

impl BlueprintHandles {
    /// Number of declared methods.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the blueprint declared no methods.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The handle for `name`, if the blueprint declared it.
    pub fn get(&self, name: &str) -> Option<&MethodHandle> {
        self.handles
            .iter()
            .find(|(m, _)| m.as_str() == name)
            .map(|(_, h)| h)
    }
}

impl std::ops::Index<&str> for BlueprintHandles {
    type Output = MethodHandle;

    fn index(&self, name: &str) -> &MethodHandle {
        self.get(name)
            .unwrap_or_else(|| panic!("blueprint declared no method `{name}`"))
    }
}

impl Blueprint {
    /// An empty blueprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a method with the concerns to compose on it, in
    /// registration order (the last listed is outermost under nested
    /// ordering).
    #[must_use]
    pub fn method(mut self, name: &str, concerns: impl IntoIterator<Item = Concern>) -> Self {
        self.methods
            .push((MethodId::new(name), concerns.into_iter().collect()));
        self
    }

    /// Wires `method`'s completion notifications to exactly `targets`.
    #[must_use]
    pub fn wake<'a>(mut self, method: &str, targets: impl IntoIterator<Item = &'a str>) -> Self {
        self.wakes.push((
            MethodId::new(method),
            targets.into_iter().map(MethodId::new).collect(),
        ));
        self
    }

    /// Validates the blueprint against `factory` *without* touching any
    /// moderator: returns every problem found (unbuildable cells,
    /// duplicate cells, wake targets that are not declared methods).
    pub fn validate(&self, factory: &dyn AspectFactory) -> Vec<RegistrationError> {
        let mut problems = Vec::new();
        let mut seen_cells = std::collections::HashSet::new();
        for (method, concerns) in &self.methods {
            for concern in concerns {
                if !seen_cells.insert((method.clone(), concern.clone())) {
                    problems.push(RegistrationError::DuplicateConcern {
                        method: method.clone(),
                        concern: concern.clone(),
                    });
                    continue;
                }
                if factory.create(method, concern).is_none() {
                    problems.push(RegistrationError::FactoryRefused {
                        method: method.clone(),
                        concern: concern.clone(),
                    });
                }
            }
        }
        let declared: std::collections::HashSet<&MethodId> =
            self.methods.iter().map(|(m, _)| m).collect();
        for (method, targets) in &self.wakes {
            for t in std::iter::once(method).chain(targets.iter()) {
                if !declared.contains(t) {
                    problems.push(RegistrationError::UnknownMethod { method: t.clone() });
                }
            }
        }
        problems
    }

    /// Validates, then populates `moderator`: declares every method,
    /// creates and registers every cell from `factory`, and wires the
    /// wake graph.
    ///
    /// # Errors
    ///
    /// Returns all validation problems; the moderator is untouched if
    /// any are found. Registration itself can still fail (e.g. the
    /// moderator already held one of the cells), in which case the
    /// first error is returned (cells registered so far remain).
    pub fn apply(
        &self,
        moderator: &AspectModerator,
        factory: &dyn AspectFactory,
    ) -> Result<BlueprintHandles, Vec<RegistrationError>> {
        let problems = self.validate(factory);
        if !problems.is_empty() {
            return Err(problems);
        }
        let mut handles = BlueprintHandles::default();
        for (method, concerns) in &self.methods {
            let handle = moderator.declare_method(method.clone());
            for concern in concerns {
                moderator
                    .register_from(factory, &handle, concern.clone())
                    .map_err(|e| vec![e])?;
            }
            handles.handles.push((method.clone(), handle));
        }
        for (method, targets) in &self.wakes {
            let handle = handles
                .get(method.as_str())
                .expect("validated: method declared")
                .clone();
            let target_handles: Vec<MethodHandle> = targets
                .iter()
                .map(|t| {
                    handles
                        .get(t.as_str())
                        .expect("validated: target declared")
                        .clone()
                })
                .collect();
            moderator.wire_wakes(&handle, &target_handles);
        }
        Ok(handles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::NoopAspect;
    use crate::factory::RegistryFactory;

    fn factory_with(concerns: &[Concern]) -> RegistryFactory {
        let mut f = RegistryFactory::new();
        for c in concerns {
            f.provide_for_concern(c.clone(), || Box::new(NoopAspect));
        }
        f
    }

    #[test]
    fn apply_populates_everything() {
        let factory = factory_with(&[Concern::synchronization(), Concern::audit()]);
        let blueprint = Blueprint::new()
            .method("open", [Concern::synchronization(), Concern::audit()])
            .method("assign", [Concern::synchronization()])
            .wake("open", ["assign"])
            .wake("assign", ["open"]);
        let moderator = AspectModerator::shared();
        let handles = blueprint.apply(&moderator, &factory).unwrap();
        assert_eq!(handles.len(), 2);
        assert!(!handles.is_empty());
        assert_eq!(
            moderator.concerns(&handles["open"]),
            vec![Concern::synchronization(), Concern::audit()]
        );
        assert_eq!(moderator.concerns(&handles["assign"]).len(), 1);
    }

    #[test]
    fn validate_reports_all_problems_at_once() {
        let factory = factory_with(&[Concern::synchronization()]);
        let blueprint = Blueprint::new()
            .method("open", [Concern::synchronization(), Concern::audit()])
            .method("open", [Concern::synchronization()]) // duplicate cell
            .wake("open", ["ghost"]); // undeclared wake target
        let problems = blueprint.validate(&factory);
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems
            .iter()
            .any(|p| matches!(p, RegistrationError::FactoryRefused { .. })));
        assert!(problems
            .iter()
            .any(|p| matches!(p, RegistrationError::DuplicateConcern { .. })));
        assert!(problems
            .iter()
            .any(|p| matches!(p, RegistrationError::UnknownMethod { .. })));
    }

    #[test]
    fn failed_validation_leaves_moderator_untouched() {
        let factory = factory_with(&[]);
        let blueprint = Blueprint::new().method("open", [Concern::synchronization()]);
        let moderator = AspectModerator::shared();
        assert!(blueprint.apply(&moderator, &factory).is_err());
        assert!(moderator.methods().is_empty());
    }

    #[test]
    #[should_panic(expected = "no method `nope`")]
    fn handle_index_panics_on_unknown() {
        let factory = factory_with(&[Concern::audit()]);
        let handles = Blueprint::new()
            .method("open", [Concern::audit()])
            .apply(&AspectModerator::shared(), &factory)
            .unwrap();
        let _ = &handles["nope"];
    }

    #[test]
    fn wake_wiring_is_applied() {
        use crate::context::InvocationContext;
        use crate::trace::{EventKind, MemoryTrace};
        let factory = factory_with(&[Concern::synchronization()]);
        let trace = MemoryTrace::shared();
        let moderator = AspectModerator::builder().trace(trace.clone()).build();
        let handles = Blueprint::new()
            .method("open", [Concern::synchronization()])
            .method("assign", [Concern::synchronization()])
            .wake("open", ["assign"])
            .apply(&moderator, &factory)
            .unwrap();
        let open = &handles["open"];
        let mut ctx = InvocationContext::new(open.id().clone(), moderator.next_invocation());
        moderator.preactivation(open, &mut ctx).unwrap();
        moderator.postactivation(open, &mut ctx);
        let notified: Vec<_> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::NotificationSent(t) => Some(t.as_str().to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(notified, vec!["assign".to_string()]);
    }

    #[test]
    fn empty_blueprint_is_fine() {
        let factory = factory_with(&[]);
        let handles = Blueprint::new()
            .apply(&AspectModerator::shared(), &factory)
            .unwrap();
        assert!(handles.is_empty());
        assert!(handles.get("anything").is_none());
    }
}

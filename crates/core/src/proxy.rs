//! The component proxy: guards every participating method of a
//! functional component with the pre-/post-activation protocol.
//!
//! The paper's `TicketServerProxy` overrides each participating method
//! with the idiom of Figure 10:
//!
//! ```java
//! if (moderator.preactivation(OPEN) == RESUME) {
//!     super.open(the_value);
//!     moderator.postactivation(OPEN);
//! }
//! ```
//!
//! [`Moderated<C>`] is the generic Rust proxy: it wraps any sequential
//! component `C` and exposes [`Moderated::invoke`], which runs a closure
//! over `&mut C` between the two phases. For multi-step invocations
//! there is the lower-level RAII [`ActivationGuard`].

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};

use crate::context::{InvocationContext, Outcome, Principal};
use crate::error::AbortError;
use crate::moderator::{AspectModerator, MethodHandle};

/// A functional component wrapped by the moderation protocol.
///
/// The component itself stays sequential (no internal locking): the proxy
/// serializes direct access with a mutex, and the real concurrency
/// constraints live in the aspects.
///
/// ```
/// use std::sync::Arc;
/// use amf_core::{AspectModerator, Moderated, MethodId};
///
/// let moderator = AspectModerator::shared();
/// let push = moderator.declare_method(MethodId::new("push"));
/// let stack = Moderated::new(Vec::<u32>::new(), Arc::clone(&moderator));
///
/// stack.invoke(&push, |v| v.push(7)).unwrap();
/// assert_eq!(stack.with_component(|v| v.len()), 1);
/// ```
pub struct Moderated<C> {
    component: Mutex<C>,
    moderator: Arc<AspectModerator>,
}

impl<C: fmt::Debug> fmt::Debug for Moderated<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Moderated");
        match self.component.try_lock() {
            Some(c) => s.field("component", &*c),
            None => s.field("component", &"<locked>"),
        };
        s.finish()
    }
}

impl<C> Moderated<C> {
    /// Wraps `component` with the given moderator.
    pub fn new(component: C, moderator: Arc<AspectModerator>) -> Self {
        Self {
            component: Mutex::new(component),
            moderator,
        }
    }

    /// The moderator coordinating this proxy.
    pub fn moderator(&self) -> &Arc<AspectModerator> {
        &self.moderator
    }

    /// Runs `f` over the raw component *without* moderation — for
    /// non-participating methods (pure queries, test assertions).
    pub fn with_component<R>(&self, f: impl FnOnce(&mut C) -> R) -> R {
        f(&mut self.component.lock())
    }

    /// Unwraps the component, discarding the proxy.
    pub fn into_inner(self) -> C {
        self.component.into_inner()
    }

    fn fresh_context(&self, method: &MethodHandle) -> InvocationContext {
        InvocationContext::new(method.id().clone(), self.moderator.next_invocation())
    }

    /// Starts a guarded activation: runs pre-activation (blocking as
    /// needed) and returns an RAII guard. Post-activation runs when the
    /// guard is [`ActivationGuard::complete`]d — or on drop, so that a
    /// panicking method body still leaves the aspects' counters
    /// consistent.
    ///
    /// # Errors
    ///
    /// Returns [`AbortError`] if any aspect vetoes the activation.
    pub fn enter(&self, method: &MethodHandle) -> Result<ActivationGuard<'_, C>, AbortError> {
        self.enter_with(method, self.fresh_context(method))
    }

    /// Like [`Moderated::enter`] with a caller identity attached.
    ///
    /// # Errors
    ///
    /// Returns [`AbortError`] if any aspect vetoes the activation.
    pub fn enter_as(
        &self,
        method: &MethodHandle,
        principal: Principal,
    ) -> Result<ActivationGuard<'_, C>, AbortError> {
        self.enter_with(method, self.fresh_context(method).with_principal(principal))
    }

    /// Starts a guarded activation with a fully caller-built context
    /// (custom attributes, principal, ...).
    ///
    /// # Errors
    ///
    /// Returns [`AbortError`] if any aspect vetoes the activation.
    pub fn enter_with(
        &self,
        method: &MethodHandle,
        mut ctx: InvocationContext,
    ) -> Result<ActivationGuard<'_, C>, AbortError> {
        self.moderator.preactivation(method, &mut ctx)?;
        Ok(ActivationGuard {
            proxy: self,
            method: method.clone(),
            ctx: Some(ctx),
        })
    }

    /// Like [`Moderated::enter_with`] but gives up after `timeout` spent
    /// blocked.
    ///
    /// # Errors
    ///
    /// Returns [`AbortError::Timeout`] if the wait exceeds `timeout`, or
    /// an aspect [`AbortError`].
    pub fn enter_timeout(
        &self,
        method: &MethodHandle,
        mut ctx: InvocationContext,
        timeout: Duration,
    ) -> Result<ActivationGuard<'_, C>, AbortError> {
        self.moderator
            .preactivation_timeout(method, &mut ctx, timeout)?;
        Ok(ActivationGuard {
            proxy: self,
            method: method.clone(),
            ctx: Some(ctx),
        })
    }

    /// Guarded invocation: pre-activation, `f(&mut component)`,
    /// post-activation. The paper's Figure 10 in one call.
    ///
    /// # Errors
    ///
    /// Returns [`AbortError`] if any aspect vetoes the activation; `f`
    /// does not run in that case.
    pub fn invoke<R>(
        &self,
        method: &MethodHandle,
        f: impl FnOnce(&mut C) -> R,
    ) -> Result<R, AbortError> {
        let guard = self.enter(method)?;
        let r = f(&mut guard.component());
        guard.complete();
        Ok(r)
    }

    /// Guarded invocation with a caller identity.
    ///
    /// # Errors
    ///
    /// Returns [`AbortError`] if any aspect vetoes the activation.
    pub fn invoke_as<R>(
        &self,
        method: &MethodHandle,
        principal: Principal,
        f: impl FnOnce(&mut C) -> R,
    ) -> Result<R, AbortError> {
        let guard = self.enter_as(method, principal)?;
        let r = f(&mut guard.component());
        guard.complete();
        Ok(r)
    }

    /// Guarded invocation with a bounded wait.
    ///
    /// # Errors
    ///
    /// Returns [`AbortError::Timeout`] if blocked longer than `timeout`,
    /// or an aspect [`AbortError`].
    pub fn invoke_timeout<R>(
        &self,
        method: &MethodHandle,
        timeout: Duration,
        f: impl FnOnce(&mut C) -> R,
    ) -> Result<R, AbortError> {
        let guard = self.enter_timeout(method, self.fresh_context(method), timeout)?;
        let r = f(&mut guard.component());
        guard.complete();
        Ok(r)
    }

    /// Non-blocking guarded invocation: returns `Ok(None)` immediately
    /// if any aspect would block (nothing is reserved, `f` does not
    /// run), `Ok(Some(r))` on success.
    ///
    /// # Errors
    ///
    /// Returns [`AbortError`] if an aspect vetoes the activation.
    pub fn try_invoke<R>(
        &self,
        method: &MethodHandle,
        f: impl FnOnce(&mut C) -> R,
    ) -> Result<Option<R>, AbortError> {
        let mut ctx = self.fresh_context(method);
        if !self.moderator.try_preactivation(method, &mut ctx)? {
            return Ok(None);
        }
        let guard = ActivationGuard {
            proxy: self,
            method: method.clone(),
            ctx: Some(ctx),
        };
        let r = f(&mut guard.component());
        guard.complete();
        Ok(Some(r))
    }

    /// Guarded invocation of a fallible method. A `Err` return is
    /// recorded as [`Outcome::Failure`] in the context before
    /// post-activation, so outcome-sensitive aspects (circuit breakers,
    /// audit) can react.
    ///
    /// # Errors
    ///
    /// The outer `Result` is the moderation verdict; the inner one is the
    /// method's own.
    pub fn invoke_fallible<R, E>(
        &self,
        method: &MethodHandle,
        f: impl FnOnce(&mut C) -> Result<R, E>,
    ) -> Result<Result<R, E>, AbortError> {
        let mut guard = self.enter(method)?;
        let r = f(&mut guard.component());
        if r.is_err() {
            guard.context().set_outcome(Outcome::Failure);
        }
        guard.complete();
        Ok(r)
    }
}

/// RAII token for one in-flight activation: pre-activation has resumed,
/// post-activation is owed.
///
/// Dropping the guard runs post-activation (keeping aspect state
/// consistent even across panics in the method body); call
/// [`ActivationGuard::abandon`] to skip it explicitly.
pub struct ActivationGuard<'a, C> {
    proxy: &'a Moderated<C>,
    method: MethodHandle,
    ctx: Option<InvocationContext>,
}

impl<C> fmt::Debug for ActivationGuard<'_, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivationGuard")
            .field("method", &self.method.id())
            .finish()
    }
}

impl<'a, C> ActivationGuard<'a, C> {
    /// Locks and returns the component for the method body. The paper
    /// runs the functional method outside the moderator's lock; so does
    /// this.
    pub fn component(&self) -> MutexGuard<'a, C> {
        self.proxy.component.lock()
    }

    /// The invocation's context (attributes, principal, outcome).
    pub fn context(&mut self) -> &mut InvocationContext {
        self.ctx.as_mut().expect("guard still armed")
    }

    /// Runs post-activation now and returns the context (with any
    /// attributes aspects left behind).
    pub fn complete(mut self) -> InvocationContext {
        let mut ctx = self.ctx.take().expect("guard still armed");
        self.proxy
            .moderator
            .trace_method_invoked(&self.method, ctx.invocation());
        self.proxy.moderator.postactivation(&self.method, &mut ctx);
        ctx
    }

    /// Disarms the guard *without* running post-activation. Only for
    /// callers that handle recovery themselves; leaves reservation-style
    /// aspects (counters) unbalanced otherwise.
    pub fn abandon(mut self) -> InvocationContext {
        self.ctx.take().expect("guard still armed")
    }
}

impl<C> Drop for ActivationGuard<'_, C> {
    fn drop(&mut self) {
        if let Some(mut ctx) = self.ctx.take() {
            self.proxy.moderator.postactivation(&self.method, &mut ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::FnAspect;
    use crate::concern::{Concern, MethodId};
    use crate::trace::{EventKind, MemoryTrace};
    use crate::verdict::Verdict;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn setup() -> (Arc<AspectModerator>, MethodHandle, Moderated<Vec<u32>>) {
        let moderator = AspectModerator::shared();
        let push = moderator.declare_method(MethodId::new("push"));
        let proxy = Moderated::new(Vec::new(), Arc::clone(&moderator));
        (moderator, push, proxy)
    }

    #[test]
    fn invoke_runs_method_between_phases() {
        let (moderator, push, proxy) = setup();
        let phase = Arc::new(AtomicU32::new(0));
        let (p1, p2) = (Arc::clone(&phase), Arc::clone(&phase));
        moderator
            .register(
                &push,
                Concern::audit(),
                Box::new(
                    FnAspect::new("phase-check")
                        .on_precondition(move |_| {
                            assert_eq!(p1.swap(1, Ordering::SeqCst), 0);
                            Verdict::Resume
                        })
                        .on_postaction(move |_| {
                            assert_eq!(p2.swap(3, Ordering::SeqCst), 2);
                        }),
                ),
            )
            .unwrap();
        proxy
            .invoke(&push, |v| {
                assert_eq!(phase.swap(2, Ordering::SeqCst), 1);
                v.push(1);
            })
            .unwrap();
        assert_eq!(phase.load(Ordering::SeqCst), 3);
        assert_eq!(proxy.with_component(|v| v.clone()), vec![1]);
    }

    #[test]
    fn abort_skips_method_body() {
        let (moderator, push, proxy) = setup();
        moderator
            .register(
                &push,
                Concern::authentication(),
                Box::new(FnAspect::new("deny").on_precondition(|_| Verdict::abort("no"))),
            )
            .unwrap();
        let ran = Arc::new(AtomicU32::new(0));
        let r = proxy.invoke(&push, {
            let ran = Arc::clone(&ran);
            move |_| {
                ran.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(r.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(moderator.stats().postactivations, 0);
    }

    #[test]
    fn invoke_as_attaches_principal() {
        let (moderator, push, proxy) = setup();
        moderator
            .register(
                &push,
                Concern::authentication(),
                Box::new(FnAspect::new("whoami").on_precondition(|ctx| {
                    Verdict::resume_or_abort(
                        ctx.principal().map(Principal::name) == Some("alice"),
                        "only alice",
                    )
                })),
            )
            .unwrap();
        assert!(proxy
            .invoke_as(&push, Principal::new("alice"), |v| v.push(1))
            .is_ok());
        assert!(proxy
            .invoke_as(&push, Principal::new("bob"), |v| v.push(2))
            .is_err());
        assert!(proxy.invoke(&push, |v| v.push(3)).is_err());
        assert_eq!(proxy.with_component(|v| v.clone()), vec![1]);
    }

    #[test]
    fn invoke_fallible_records_outcome() {
        let (moderator, push, proxy) = setup();
        let seen = Arc::new(Mutex::new(Vec::new()));
        {
            let seen = Arc::clone(&seen);
            moderator
                .register(
                    &push,
                    Concern::fault_tolerance(),
                    Box::new(FnAspect::new("observer").on_postaction(move |ctx| {
                        seen.lock().push(ctx.outcome());
                    })),
                )
                .unwrap();
        }
        let ok: Result<Result<(), &str>, _> = proxy.invoke_fallible(&push, |_| Ok(()));
        assert!(ok.unwrap().is_ok());
        let err: Result<Result<(), &str>, _> = proxy.invoke_fallible(&push, |_| Err("boom"));
        assert_eq!(err.unwrap(), Err("boom"));
        assert_eq!(*seen.lock(), vec![Outcome::Success, Outcome::Failure]);
    }

    /// An `Err` body *and* a panicking postaction in the same
    /// activation: the contained panic must not double-run or skip the
    /// outcome observer — the failure is recorded exactly once, and the
    /// activation still completes.
    #[test]
    fn invoke_fallible_err_outcome_survives_postaction_panic() {
        use crate::moderator::PanicPolicy;

        let moderator = Arc::new(
            AspectModerator::builder()
                .panic_policy(PanicPolicy::AbortInvocation)
                .build(),
        );
        let push = moderator.declare_method(MethodId::new("push"));
        let proxy = Moderated::new(Vec::<u32>::new(), Arc::clone(&moderator));
        // Postactions run in registration order: the bomb panics first,
        // the observer must still run afterwards.
        moderator
            .register(
                &push,
                Concern::fault_tolerance(),
                Box::new(
                    FnAspect::new("post-bomb").on_postaction(|_| panic!("postaction exploded")),
                ),
            )
            .unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        {
            let seen = Arc::clone(&seen);
            moderator
                .register(
                    &push,
                    Concern::audit(),
                    Box::new(FnAspect::new("observer").on_postaction(move |ctx| {
                        seen.lock().push(ctx.outcome());
                    })),
                )
                .unwrap();
        }
        let r: Result<Result<(), &str>, _> = proxy.invoke_fallible(&push, |_| Err("boom"));
        assert_eq!(r.unwrap(), Err("boom"));
        assert_eq!(*seen.lock(), vec![Outcome::Failure], "exactly once");
        let s = moderator.stats();
        assert_eq!(s.panics_caught, 1, "{s:?}");
        assert_eq!(s.postactivations, 1, "{s:?}");
    }

    #[test]
    fn guard_drop_runs_postactivation() {
        let (moderator, push, proxy) = setup();
        {
            let guard = proxy.enter(&push).unwrap();
            drop(guard);
        }
        assert_eq!(moderator.stats().postactivations, 1);
    }

    #[test]
    fn guard_abandon_skips_postactivation() {
        let (moderator, push, proxy) = setup();
        let guard = proxy.enter(&push).unwrap();
        let _ctx = guard.abandon();
        assert_eq!(moderator.stats().postactivations, 0);
    }

    #[test]
    fn postactivation_runs_even_if_body_panics() {
        let (moderator, push, proxy) = setup();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let guard = proxy.enter(&push).unwrap();
            let _c = guard.component();
            panic!("body exploded");
        }));
        assert!(result.is_err());
        assert_eq!(moderator.stats().postactivations, 1);
    }

    #[test]
    fn complete_returns_context_with_attributes() {
        let (moderator, push, proxy) = setup();
        #[derive(Debug, PartialEq)]
        struct Stamp(u32);
        moderator
            .register(
                &push,
                Concern::metrics(),
                Box::new(FnAspect::new("stamp").on_precondition(|ctx| {
                    ctx.insert(Stamp(99));
                    Verdict::Resume
                })),
            )
            .unwrap();
        let guard = proxy.enter(&push).unwrap();
        let ctx = guard.complete();
        assert_eq!(ctx.get::<Stamp>(), Some(&Stamp(99)));
    }

    #[test]
    fn invoke_timeout_fails_when_blocked() {
        let (moderator, push, proxy) = setup();
        moderator
            .register(
                &push,
                Concern::synchronization(),
                Box::new(FnAspect::new("never").on_precondition(|_| Verdict::Block)),
            )
            .unwrap();
        let err = proxy
            .invoke_timeout(&push, Duration::from_millis(20), |_| ())
            .unwrap_err();
        assert!(err.is_timeout());
    }

    #[test]
    fn try_invoke_returns_none_instead_of_blocking() {
        let (moderator, push, proxy) = setup();
        let open = Arc::new(std::sync::atomic::AtomicBool::new(false));
        {
            let open = Arc::clone(&open);
            moderator
                .register(
                    &push,
                    Concern::synchronization(),
                    Box::new(
                        FnAspect::new("gate").on_precondition(move |_| {
                            Verdict::resume_if(open.load(Ordering::SeqCst))
                        }),
                    ),
                )
                .unwrap();
        }
        assert_eq!(proxy.try_invoke(&push, |v| v.push(1)).unwrap(), None);
        open.store(true, Ordering::SeqCst);
        assert_eq!(proxy.try_invoke(&push, |v| v.push(2)).unwrap(), Some(()));
        assert_eq!(proxy.with_component(|v| v.clone()), vec![2]);
    }

    #[test]
    fn try_invoke_rolls_back_outer_reservations() {
        let (moderator, push, proxy) = setup();
        let reserved = Arc::new(AtomicU32::new(0));
        // Inner blocker (registered first, evaluated last).
        moderator
            .register(
                &push,
                Concern::new("blocker"),
                Box::new(FnAspect::new("never").on_precondition(|_| Verdict::Block)),
            )
            .unwrap();
        {
            let r1 = Arc::clone(&reserved);
            let r2 = Arc::clone(&reserved);
            moderator
                .register(
                    &push,
                    Concern::new("reserver"),
                    Box::new(
                        FnAspect::new("reserve")
                            .on_precondition(move |_| {
                                r1.fetch_add(1, Ordering::SeqCst);
                                Verdict::Resume
                            })
                            .on_release_do(move |_, _| {
                                r2.fetch_sub(1, Ordering::SeqCst);
                            }),
                    ),
                )
                .unwrap();
        }
        assert_eq!(proxy.try_invoke(&push, |_| ()).unwrap(), None);
        assert_eq!(
            reserved.load(Ordering::SeqCst),
            0,
            "reservation rolled back"
        );
    }

    #[test]
    fn try_invoke_propagates_aborts() {
        let (moderator, push, proxy) = setup();
        moderator
            .register(
                &push,
                Concern::authentication(),
                Box::new(FnAspect::new("deny").on_precondition(|_| Verdict::abort("no"))),
            )
            .unwrap();
        assert!(proxy.try_invoke(&push, |_| ()).is_err());
    }

    #[test]
    fn trace_shows_method_invoked_between_phases() {
        let trace = MemoryTrace::shared();
        let moderator = Arc::new(AspectModerator::builder().trace(trace.clone()).build());
        let push = moderator.declare_method(MethodId::new("push"));
        let proxy = Moderated::new(Vec::<u32>::new(), Arc::clone(&moderator));
        proxy.invoke(&push, |v| v.push(1)).unwrap();
        let kinds: Vec<_> = trace.events().into_iter().map(|e| e.kind).collect();
        let resumed = kinds
            .iter()
            .position(|k| *k == EventKind::ActivationResumed)
            .unwrap();
        let invoked = kinds
            .iter()
            .position(|k| *k == EventKind::MethodInvoked)
            .unwrap();
        let post = kinds
            .iter()
            .position(|k| *k == EventKind::PostactivationStarted)
            .unwrap();
        assert!(resumed < invoked && invoked < post);
    }

    #[test]
    fn into_inner_and_debug() {
        let (_moderator, _push, proxy) = setup();
        proxy.with_component(|v| v.push(5));
        let s = format!("{proxy:?}");
        assert!(s.contains("Moderated"));
        assert_eq!(proxy.into_inner(), vec![5]);
    }
}

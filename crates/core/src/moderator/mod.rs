//! The aspect moderator: the coordination engine of the framework.
//!
//! The moderator owns the aspect registry and drives the paper's
//! protocol (Figure 11): *pre-activation* evaluates the preconditions of
//! every aspect registered for a participating method — blocking the
//! caller on the method's wait queue while any returns `BLOCKED`,
//! failing the activation if any returns `ABORT` — and *post-activation*
//! runs every aspect's postaction and notifies the wait queues of
//! dependent methods.
//!
//! # Module map
//!
//! This module is a facade over a small tree (see DESIGN.md, "Moderator
//! module map"): this file holds the policy enums, the builder and
//! the `AspectModerator` type; `cell` the coordination cells and the
//! method registry; `queue` the wake plumbing over the shared
//! [`amf_concurrency::TicketQueue`]; `stats` the counter shards;
//! `fault` panic containment; `protocol` the pre/post-activation state
//! machine. Everything below the facade parks and wakes through the
//! engine-agnostic [`GrantSource`]/[`Waiter`](amf_concurrency::Waiter)
//! pair from `amf-concurrency` — nothing inside a cell names a
//! condvar, so a different engine (e.g. an async one) can be slotted in
//! without touching the protocol.
//!
//! # Locking model
//!
//! The paper's `synchronized` moderator serializes every activation of
//! every method behind one lock. This implementation **shards** that
//! coordination state into per-method *cells* (see [`Coordination`]):
//!
//! * Each declared method owns a cell — a mutex guarding its aspect
//!   chain and wake wiring — plus its own engine-supplied waitpoint and
//!   a shard of atomic counters. Activations of *different* methods
//!   coordinate on different locks and proceed in parallel.
//! * One method's aspect chain is never evaluated concurrently with
//!   itself: the chain runs under the method's cell lock, so aspects
//!   still need no internal synchronization for per-method state.
//!   State shared *across* methods (e.g. the producer/consumer buffer
//!   counters of `amf-aspects`) must carry its own lock, as every
//!   aspect in this workspace already does.
//! * Moderator-global state is lock-free: the invocation counter is an
//!   atomic, stats are per-method atomic shards aggregated on read, and
//!   the method-name→index registry sits behind an `RwLock` that the
//!   hot path only ever read-locks (writes happen in `declare_method`).
//! * **Notify discipline**: post-activation runs postactions under its
//!   own cell, releases it, then signals each target method's waitpoint
//!   *while holding that target's cell lock*. A waiter holds its cell
//!   lock continuously from chain evaluation to parking, so a
//!   cross-method wakeup (open→assign) can never land in the window
//!   between "evaluated: blocked" and "parked" — it would have to wait
//!   for the cell lock first.
//! * **Rollback notification**: with sharding, another method's chain
//!   may observe a reservation that a blocked or aborted chain later
//!   rolls back (impossible under the single lock, where whole-chain
//!   evaluation was atomic). Whenever rollback releases at least one
//!   aspect, the moderator therefore notifies the method's wake targets
//!   — the rollback is semantically a mini post-activation — and a
//!   blocked caller that rolled back re-checks its chain on a short
//!   backstop interval to close the residual race.
//! * **Self-wake**: postactions (and rollbacks) mutate the very state a
//!   method's *own* waiters are guarded by — the paper's `ActiveOpen ==
//!   0` flag frees a fellow producer, not a consumer. Relying on the
//!   *other* method's next post-activation to deliver that wakeup
//!   deadlocks once that method has gone quiet (two producers, one
//!   parked on the active flag, after the last consumer finished). The
//!   moderator therefore always signals the method's own waitpoint
//!   after postactions and after a rollback that released a
//!   reservation. [`AspectModerator::wire_wakes`] restricts which
//!   *other* queues are notified; the self-wake is uncounted and
//!   untraced.
//! * **Fairness**: by default waiters barge — the waitpoint (ultimately
//!   the scheduler) picks the winner and a fresh arrival may overtake
//!   every parked waiter. [`FairnessPolicy::Fifo`] replaces that with a
//!   ticketed FIFO queue per cell (the workspace-shared
//!   [`amf_concurrency::TicketQueue`]): wake permits are recorded as
//!   queue state under the cell lock (so none is lost in an unlocked
//!   window), grants go strictly first-parked-first-served, newcomers
//!   finding waiters park without evaluating their chain, and a
//!   timed-out ticket hands pending permits to its successor on
//!   cancellation. See DESIGN.md ("Fairness") for the full ticket
//!   lifecycle.
//! * **Batched grants**: under Fifo, a departing grant holder whose
//!   settle leaves no permit pending *extends* its grant to the new
//!   queue front (enabled by default; see
//!   [`ModeratorBuilder::grant_batching`]). When one postaction or
//!   quarantine sweep frees k resources at once, the front-k prefix of
//!   waiters drains in one continuous cursor-ordered sweep of the cell
//!   lock instead of k separate notification round trips — the
//!   capacity-k convoy experiment E12. The extension is a cursor-ordered
//!   sweep, never independent permits, which is what preserves
//!   no-overtake (model-checked in `amf-verify`, including the
//!   `split_batch_overtake` ablation showing what unordered batch
//!   permits would break). Batched admissions are counted in
//!   [`ModeratorStats::batched_grants`].
//! * **Two-phase admission (the lock-free fast lane)**: every method
//!   carries a packed atomic *lane word* (`cell::FastLane`) encoding
//!   open/closed, the count of in-flight fast admissions, and an ABA
//!   epoch. While every aspect of the row declares its callbacks
//!   `pure + veto_free + no_park`
//!   ([`AspectCapabilities`](crate::AspectCapabilities)), the cell is
//!   waiter-free, no slot is quarantined and the wake wiring is empty,
//!   the lane is *open* and pre-activation admits with a single CAS —
//!   no cell lock, no chain evaluation — with post-activation departing
//!   through the matching lock-free release. The slow path closes the
//!   lane eagerly *before* any waiter enqueues or parks; only the
//!   departure that leaves the cell waiter-free reopens it
//!   (`queue::refresh_lane`, the single opening authority), and a
//!   contained panic revokes the row's eligibility outright. Fast
//!   admissions are counted in [`ModeratorStats::fast_path_admits`];
//!   CAS contention falls back to the locked path and counts in
//!   [`ModeratorStats::fast_path_fallbacks`]. See DESIGN.md
//!   ("Two-phase admission") for the word layout and the
//!   memory-ordering table.
//! * **Fault containment**: aspects are foreign code running inside the
//!   coordination engine, under the cell lock. Under a non-default
//!   [`PanicPolicy`] every aspect callback (precondition, postaction,
//!   release, cancel) runs inside `catch_unwind`; a precondition panic
//!   takes the same compensation path as a mid-chain `Verdict::Abort`
//!   (prefix rollback + rollback notification), a postaction panic
//!   still finishes the remaining postactions and releases the
//!   activation, and [`PanicPolicy::Quarantine`] disables a repeatedly
//!   panicking slot so one bad concern degrades gracefully instead of
//!   taking its method down. See DESIGN.md ("Fault containment").
//!
//! Lock ordering is `registry → at most one cell`: no code path holds a
//! cell lock while acquiring the registry lock, and no path holds two
//! cell locks at once, so the lock graph is acyclic by construction.

use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use amf_concurrency::{Clock, CondvarEngine, GrantSource, SystemClock};
use parking_lot::RwLock;

use crate::concern::{Concern, MethodId};
use crate::trace::{EventKind, TraceEvent, TraceSink};

mod cell;
mod fault;
mod protocol;
mod queue;
mod stats;
#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_fifo;

pub use cell::{CellState, MethodHandle};
pub use stats::{ModeratorStats, WaitHistogram};

use cell::Registry;

/// How often a caller that blocked *after rolling back a reservation*
/// re-evaluates its chain while parked. This backstop closes the
/// sharded-moderator race where another method's chain observed the
/// transient reservation; see the module docs ("Rollback notification").
const ROLLBACK_RECHECK: Duration = Duration::from_millis(1);

/// Number of buckets in a [`WaitHistogram`].
pub const WAIT_BUCKETS: usize = 16;

/// In what order a method's aspects compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingPolicy {
    /// Later-registered aspects *wrap* earlier ones: preconditions run
    /// newest-first, postactions oldest-first. This matches the paper's
    /// adaptability example (Figure 14): authentication, registered by the
    /// extended proxy *after* synchronization, runs its precondition
    /// first and its postaction last.
    #[default]
    Nested,
    /// Aspects run in registration order on both phases' entry side:
    /// preconditions oldest-first, postactions newest-first.
    Declaration,
}

/// How a notification wakes a method's waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WakeMode {
    /// Wake every waiter; each re-evaluates and possibly re-blocks.
    /// Never loses a wakeup (default).
    #[default]
    NotifyAll,
    /// Wake a single waiter per notification, like Java's `notify()` used
    /// in the paper. Cheaper under contention but can strand waiters when
    /// the woken thread re-blocks without progress; compared in
    /// experiment E6.
    NotifyOne,
}

/// Whether earlier-resumed aspects are rolled back (via
/// [`Aspect::on_release`](crate::Aspect::on_release)) when a later
/// aspect in the chain blocks or aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RollbackPolicy {
    /// Roll back (default; fixes the multi-aspect composition anomaly,
    /// see DESIGN.md and experiment E7).
    #[default]
    Release,
    /// Do not roll back — the paper's literal semantics.
    None,
}

/// How coordination state is laid out across participating methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Coordination {
    /// One coordination cell (lock + waitpoint + counters) per method:
    /// activations of disjoint methods proceed in parallel (default).
    #[default]
    Sharded,
    /// Every method shares a single cell, serializing all coordination
    /// behind one lock — the paper's `synchronized` moderator. Retained
    /// as the measured baseline for experiment E9; protocol semantics
    /// are identical (each method still has its own wait queue).
    GlobalLock,
}

/// Which blocked caller proceeds when a notification opens the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FairnessPolicy {
    /// Waiters race for the grant: the waitpoint (ultimately the
    /// scheduler) picks the winner, and a newly arriving caller
    /// evaluates its chain immediately — overtaking every parked waiter
    /// whose precondition would now resume. The paper's
    /// `wait()`/`notify()` semantics; cheapest, starvation-prone under
    /// contention (default).
    #[default]
    Barging,
    /// Ticketed FIFO: each parked caller holds a monotonically
    /// increasing per-cell ticket and grants are strictly
    /// first-parked-first-served. A newly arriving caller finding
    /// waiters queues behind them *without* evaluating its chain
    /// (barging prevention), and a timed wait that cancels surrenders
    /// its ticket to its successors. See the module docs ("Fairness")
    /// and DESIGN.md.
    Fifo,
}

/// What the moderator does when an aspect callback panics.
///
/// Aspects run inside the coordination engine, under the method's cell
/// lock; an uncontained panic there unwinds with the chain
/// half-evaluated, leaking reservations and stranding waiters. The
/// non-default policies wrap every callback in `catch_unwind` and route
/// a precondition panic through the same compensation path a mid-chain
/// [`Verdict::Abort`](crate::Verdict::Abort) takes (prefix rollback +
/// notifications), so no reservation or wake permit leaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PanicPolicy {
    /// No containment: the panic unwinds through the moderator to the
    /// caller, exactly as if the aspect had been called directly. The
    /// paper's (implicit) semantics, and zero-overhead: callbacks are
    /// invoked without a `catch_unwind` frame (default).
    #[default]
    Propagate,
    /// Catch the panic and abort the invocation with
    /// [`AbortError::AspectPanicked`](crate::AbortError::AspectPanicked),
    /// rolling back the already-evaluated prefix of the chain. The
    /// aspect stays registered and will run again on the next
    /// invocation.
    AbortInvocation,
    /// Like [`PanicPolicy::AbortInvocation`], but after an aspect slot
    /// has panicked `after` times it is *quarantined*: from then on it
    /// evaluates as `Resume`/no-op, the method keeps serving, and the
    /// slot is reported in [`AspectModerator::quarantined_concerns`].
    /// Quarantining shortens the effective chain, so the method's
    /// waiters are woken to re-evaluate (same discipline as
    /// [`AspectModerator::deregister`]).
    Quarantine {
        /// Number of caught panics after which the slot is disabled.
        after: u32,
    },
}

/// Configures and builds an [`AspectModerator`].
///
/// ```
/// use amf_core::{AspectModerator, OrderingPolicy, WakeMode};
/// use amf_core::trace::MemoryTrace;
///
/// let trace = MemoryTrace::shared();
/// let moderator = AspectModerator::builder()
///     .ordering(OrderingPolicy::Nested)
///     .wake_mode(WakeMode::NotifyAll)
///     .trace(trace)
///     .build();
/// # let _ = moderator;
/// ```
pub struct ModeratorBuilder {
    ordering: OrderingPolicy,
    wake_mode: WakeMode,
    rollback: RollbackPolicy,
    coordination: Coordination,
    fairness: FairnessPolicy,
    panic_policy: PanicPolicy,
    grant_batching: bool,
    engine: Option<Arc<dyn GrantSource<CellState>>>,
    clock: Option<Arc<dyn Clock>>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl Default for ModeratorBuilder {
    fn default() -> Self {
        Self {
            ordering: OrderingPolicy::default(),
            wake_mode: WakeMode::default(),
            rollback: RollbackPolicy::default(),
            coordination: Coordination::default(),
            fairness: FairnessPolicy::default(),
            panic_policy: PanicPolicy::default(),
            grant_batching: true,
            engine: None,
            clock: None,
            trace: None,
        }
    }
}

impl fmt::Debug for ModeratorBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModeratorBuilder")
            .field("ordering", &self.ordering)
            .field("wake_mode", &self.wake_mode)
            .field("rollback", &self.rollback)
            .field("coordination", &self.coordination)
            .field("fairness", &self.fairness)
            .field("panic_policy", &self.panic_policy)
            .field("grant_batching", &self.grant_batching)
            .field("engine", &self.engine.is_some())
            .field("clock", &self.clock.is_some())
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

impl ModeratorBuilder {
    /// Sets the aspect composition order (default [`OrderingPolicy::Nested`]).
    #[must_use]
    pub fn ordering(mut self, ordering: OrderingPolicy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets how notifications wake waiters (default [`WakeMode::NotifyAll`]).
    #[must_use]
    pub fn wake_mode(mut self, mode: WakeMode) -> Self {
        self.wake_mode = mode;
        self
    }

    /// Sets the rollback policy (default [`RollbackPolicy::Release`]).
    #[must_use]
    pub fn rollback(mut self, rollback: RollbackPolicy) -> Self {
        self.rollback = rollback;
        self
    }

    /// Sets the coordination layout (default [`Coordination::Sharded`]).
    #[must_use]
    pub fn coordination(mut self, coordination: Coordination) -> Self {
        self.coordination = coordination;
        self
    }

    /// Sets which blocked caller proceeds when a gate opens (default
    /// [`FairnessPolicy::Barging`]).
    #[must_use]
    pub fn fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// Sets what happens when an aspect callback panics (default
    /// [`PanicPolicy::Propagate`]).
    #[must_use]
    pub fn panic_policy(mut self, policy: PanicPolicy) -> Self {
        self.panic_policy = policy;
        self
    }

    /// Enables or disables batched grants under [`FairnessPolicy::Fifo`]
    /// (default enabled; no effect under `Barging`).
    ///
    /// With batching on, a departing grant holder whose settle leaves no
    /// permit pending extends its grant to the new queue front, draining
    /// a freed capacity-k prefix in one cursor-ordered sweep instead of
    /// k one-at-a-time notification round trips (module docs, "Batched
    /// grants"). Disable to measure the one-at-a-time baseline
    /// (experiment E12) or to reproduce the pre-batching handoff
    /// behavior exactly.
    #[must_use]
    pub fn grant_batching(mut self, enabled: bool) -> Self {
        self.grant_batching = enabled;
        self
    }

    /// Replaces the park/wake engine (default: condvar-backed
    /// [`CondvarEngine`]). The engine contract is engine-agnostic —
    /// nothing in the protocol names a condvar — so alternative engines
    /// (the deterministic simulator in `amf-sim`, an async engine) slot
    /// in here. [`CellState`] is deliberately opaque: an engine parks
    /// and wakes on guards over it without inspecting it.
    #[must_use]
    pub fn engine(mut self, engine: Arc<dyn GrantSource<CellState>>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Replaces the protocol's time source (default: wall-clock
    /// [`SystemClock`]). Every protocol deadline — timed preactivations
    /// and the rollback-recheck backstop — is computed against this
    /// clock and waited out through [`amf_concurrency::Waiter::park_for`],
    /// so a virtual clock (e.g. the simulator's) makes timed waits
    /// deterministic: no wall time enters a scheduling decision.
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Attaches a protocol trace sink.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Builds the moderator.
    pub fn build(self) -> AspectModerator {
        AspectModerator {
            registry: RwLock::new(Registry::default()),
            invocations: AtomicU64::new(0),
            ordering: self.ordering,
            wake_mode: self.wake_mode,
            rollback: self.rollback,
            coordination: self.coordination,
            fairness: self.fairness,
            panic_policy: self.panic_policy,
            grant_batching: self.grant_batching,
            engine: self.engine.unwrap_or_else(|| Arc::new(CondvarEngine)),
            clock: self.clock.unwrap_or_else(|| Arc::new(SystemClock::new())),
            trace: self.trace,
        }
    }
}

/// The coordination engine: owns the aspect registry, evaluates pre/post
/// activation, parks and wakes callers.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use amf_core::{AspectModerator, Concern, FnAspect, InvocationContext, MethodId, Verdict};
///
/// let moderator = AspectModerator::new();
/// let open = moderator.declare_method(MethodId::new("open"));
///
/// // A capacity-1 "buffer" captured by the aspect.
/// moderator.register(
///     &open,
///     Concern::synchronization(),
///     Box::new(FnAspect::new("cap1").on_precondition({
///         let mut used = false;
///         move |_| { let v = Verdict::resume_if(!used); if !used { used = true; } v }
///     })),
/// ).unwrap();
///
/// let mut ctx = InvocationContext::new(open.id().clone(), moderator.next_invocation());
/// moderator.preactivation(&open, &mut ctx).unwrap();
/// // ... run the functional method here ...
/// moderator.postactivation(&open, &mut ctx);
/// ```
pub struct AspectModerator {
    registry: RwLock<Registry>,
    invocations: AtomicU64,
    ordering: OrderingPolicy,
    wake_mode: WakeMode,
    rollback: RollbackPolicy,
    coordination: Coordination,
    fairness: FairnessPolicy,
    panic_policy: PanicPolicy,
    grant_batching: bool,
    engine: Arc<dyn GrantSource<CellState>>,
    clock: Arc<dyn Clock>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for AspectModerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let registry = self.registry.read();
        let aspects: usize = registry
            .entries
            .iter()
            .map(|e| e.cell.state.lock().bank.concern_count(e.slot))
            .sum();
        f.debug_struct("AspectModerator")
            .field("methods", &registry.entries.len())
            .field("aspects", &aspects)
            .field("ordering", &self.ordering)
            .field("wake_mode", &self.wake_mode)
            .field("rollback", &self.rollback)
            .field("coordination", &self.coordination)
            .field("fairness", &self.fairness)
            .field("panic_policy", &self.panic_policy)
            .field("grant_batching", &self.grant_batching)
            .finish()
    }
}

impl Default for AspectModerator {
    fn default() -> Self {
        Self::new()
    }
}

impl AspectModerator {
    /// Creates a moderator with default policies and no trace.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts configuring a moderator.
    pub fn builder() -> ModeratorBuilder {
        ModeratorBuilder::default()
    }

    /// Convenience: a default moderator already wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn emit(&self, invocation: u64, method: &MethodId, concern: Option<Concern>, kind: EventKind) {
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent {
                invocation,
                method: method.clone(),
                concern,
                kind,
            });
        }
    }

    /// Issues the next invocation number (used by proxies to build
    /// contexts).
    pub fn next_invocation(&self) -> u64 {
        stats::next_invocation_id(&self.invocations)
    }
}

//! FIFO admission tests: ticketed grant order, batched sweeps, and
//! the engine abstraction (a custom [`GrantSource`] probe proving the
//! protocol parks and wakes only through the engine).

use super::*;
use crate::aspect::FnAspect;
use crate::context::InvocationContext;
use crate::verdict::Verdict;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn ctx_for(moderator: &AspectModerator, m: &MethodHandle) -> InvocationContext {
    InvocationContext::new(m.id().clone(), moderator.next_invocation())
}

/// A token-gated method plus a `tick` method whose postaction mints
/// one token and whose post-activation notifies the gated queue —
/// the harness for the FIFO tests below.
fn gated(m: &AspectModerator, tokens: &Arc<AtomicU64>) -> (MethodHandle, MethodHandle) {
    let open = m.declare_method(MethodId::new("open"));
    let tick = m.declare_method(MethodId::new("tick"));
    {
        let tokens = Arc::clone(tokens);
        m.register(
            &open,
            Concern::synchronization(),
            Box::new(FnAspect::new("token-gate").on_precondition(move |_| {
                if tokens.load(AtomicOrdering::SeqCst) > 0 {
                    tokens.fetch_sub(1, AtomicOrdering::SeqCst);
                    Verdict::Resume
                } else {
                    Verdict::Block
                }
            })),
        )
        .unwrap();
    }
    {
        let tokens = Arc::clone(tokens);
        m.register(
            &tick,
            Concern::new("mint"),
            Box::new(FnAspect::new("mint").on_postaction(move |_| {
                tokens.fetch_add(1, AtomicOrdering::SeqCst);
            })),
        )
        .unwrap();
    }
    m.wire_wakes(&tick, std::slice::from_ref(&open));
    m.wire_wakes(&open, &[]);
    (open, tick)
}

fn fifo_grant_order(wake_mode: WakeMode) {
    let m = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .wake_mode(wake_mode)
            .build(),
    );
    let tokens = Arc::new(AtomicU64::new(0));
    let (open, tick) = gated(&m, &tokens);
    let order = Arc::new(Mutex::new(Vec::new()));
    let waiters = 4;
    let mut handles = Vec::new();
    for i in 0..waiters {
        let mc = Arc::clone(&m);
        let open = open.clone();
        let order = Arc::clone(&order);
        handles.push(thread::spawn(move || {
            let mut ctx = ctx_for(&mc, &open);
            mc.preactivation(&open, &mut ctx).unwrap();
            order.lock().push(i);
            mc.postactivation(&open, &mut ctx);
        }));
        // Serialize arrival so park order is [0, 1, 2, 3].
        while m.stats().blocks < i + 1 {
            thread::yield_now();
        }
    }
    for served in 1..=waiters {
        let mut ctx = ctx_for(&m, &tick);
        m.preactivation(&tick, &mut ctx).unwrap();
        m.postactivation(&tick, &mut ctx);
        while (order.lock().len() as u64) < served {
            thread::yield_now();
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*order.lock(), vec![0, 1, 2, 3], "grant order != park order");
    let s = m.stats();
    assert_eq!(s.tickets_issued, waiters);
    assert_eq!(s.tickets_served, waiters);
    assert_eq!(s.max_queue_depth, waiters);
    assert_eq!(s.wait_hist.count(), waiters);
}

#[test]
fn fifo_serves_waiters_in_park_order_notify_one() {
    fifo_grant_order(WakeMode::NotifyOne);
}

#[test]
fn fifo_serves_waiters_in_park_order_notify_all() {
    fifo_grant_order(WakeMode::NotifyAll);
}

#[test]
fn fifo_newcomer_cannot_overtake_parked_waiter() {
    let m = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .build(),
    );
    let tokens = Arc::new(AtomicU64::new(0));
    let (open, tick) = gated(&m, &tokens);
    let order = Arc::new(Mutex::new(Vec::new()));
    let spawn_caller = |tag: &'static str| {
        let m = Arc::clone(&m);
        let open = open.clone();
        let order = Arc::clone(&order);
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &open);
            m.preactivation(&open, &mut ctx).unwrap();
            order.lock().push(tag);
            m.postactivation(&open, &mut ctx);
        })
    };
    let early = spawn_caller("early");
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    // A token appears, but no notification is sent: the parked
    // waiter owns the queue head. A newcomer whose chain *would*
    // resume must queue behind it instead of taking the token.
    tokens.store(1, AtomicOrdering::SeqCst);
    let late = spawn_caller("late");
    while m.stats().blocks < 2 {
        thread::yield_now();
    }
    assert!(order.lock().is_empty(), "a caller ran before any grant");
    // Two ticks: each wakes the head and mints one more token.
    for _ in 0..2 {
        let mut ctx = ctx_for(&m, &tick);
        m.preactivation(&tick, &mut ctx).unwrap();
        m.postactivation(&tick, &mut ctx);
    }
    early.join().unwrap();
    late.join().unwrap();
    assert_eq!(*order.lock(), vec!["early", "late"]);
}

#[test]
fn fifo_try_preactivation_respects_queue() {
    let m = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .build(),
    );
    let tokens = Arc::new(AtomicU64::new(0));
    let (open, _tick) = gated(&m, &tokens);
    let waiter = {
        let m = Arc::clone(&m);
        let open = open.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &open);
            m.preactivation_timeout(&open, &mut ctx, Duration::from_secs(5))
        })
    };
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    tokens.store(1, AtomicOrdering::SeqCst);
    // The chain would resume, but an earlier ticket is parked:
    // try_preactivation must refuse rather than overtake.
    let mut ctx = ctx_for(&m, &open);
    assert!(!m.try_preactivation(&open, &mut ctx).unwrap());
    assert_eq!(m.stats().would_blocks, 1);
    assert_eq!(tokens.load(AtomicOrdering::SeqCst), 1, "token untouched");
    // Unblock the waiter so the test exits cleanly.
    m.deregister(&open, &Concern::synchronization()).unwrap();
    waiter.join().unwrap().unwrap();
}

#[test]
fn fifo_timed_out_ticket_does_not_strand_successor() {
    let m = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .wake_mode(WakeMode::NotifyOne)
            .build(),
    );
    let tokens = Arc::new(AtomicU64::new(0));
    let (open, tick) = gated(&m, &tokens);
    // Head waiter gives up quickly...
    let head = {
        let m = Arc::clone(&m);
        let open = open.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &open);
            m.preactivation_timeout(&open, &mut ctx, Duration::from_millis(30))
        })
    };
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    // ...while a successor waits indefinitely behind it.
    let successor = {
        let m = Arc::clone(&m);
        let open = open.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &open);
            m.preactivation(&open, &mut ctx).unwrap();
            m.postactivation(&open, &mut ctx);
        })
    };
    while m.stats().blocks < 2 {
        thread::yield_now();
    }
    let err = head.join().unwrap().unwrap_err();
    assert!(err.is_timeout());
    // One grant must now reach the successor, not the ghost of the
    // cancelled head ticket.
    let mut ctx = ctx_for(&m, &tick);
    m.preactivation(&tick, &mut ctx).unwrap();
    m.postactivation(&tick, &mut ctx);
    successor.join().unwrap();
    let s = m.stats();
    assert_eq!(s.timeouts, 1);
    assert_eq!(s.tickets_issued, 2);
    assert_eq!(s.tickets_served, 1);
}

#[test]
fn fifo_pipeline_stays_live() {
    // The capacity-1 producer/consumer hammer from
    // `notify_one_pipeline_completes`, under Fifo in both wake
    // modes: fairness must not cost liveness.
    for wake_mode in [WakeMode::NotifyOne, WakeMode::NotifyAll] {
        let m = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .wake_mode(wake_mode)
                .build(),
        );
        let put = m.declare_method(MethodId::new("put"));
        let take = m.declare_method(MethodId::new("take"));
        m.wire_wakes(&put, std::slice::from_ref(&take));
        m.wire_wakes(&take, std::slice::from_ref(&put));
        let items = Arc::new(Mutex::new(0_u32));
        {
            let items = Arc::clone(&items);
            m.register(
                &put,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-full").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i < 1 {
                        *i += 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        {
            let items = Arc::clone(&items);
            m.register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i > 0 {
                        *i -= 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        let rounds = 500;
        let run = |method: MethodHandle, m: Arc<AspectModerator>| {
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &method);
                    m.preactivation(&method, &mut ctx).unwrap();
                    m.postactivation(&method, &mut ctx);
                }
            })
        };
        let threads = [
            run(put.clone(), Arc::clone(&m)),
            run(put, Arc::clone(&m)),
            run(take.clone(), Arc::clone(&m)),
            run(take, Arc::clone(&m)),
        ];
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*items.lock(), 0);
        assert_eq!(m.stats().resumes, rounds * 4);
    }
}

#[test]
fn concurrent_producers_consumers_respect_capacity_one() {
    // A tiny end-to-end bounded-buffer built directly on the
    // moderator: capacity 1, shared counters in the aspects.
    struct Slots {
        used: u64,
    }
    let slots = Arc::new(Mutex::new(Slots { used: 0 }));
    let m = Arc::new(AspectModerator::new());
    let put = m.declare_method(MethodId::new("put"));
    let take = m.declare_method(MethodId::new("take"));
    {
        let s = Arc::clone(&slots);
        m.register(
            &put,
            Concern::synchronization(),
            Box::new(
                FnAspect::new("not-full")
                    .on_precondition({
                        let s = Arc::clone(&s);
                        move |_| {
                            let mut s = s.lock();
                            if s.used < 1 {
                                s.used += 1; // reserve
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        }
                    })
                    .on_postaction(|_| {}),
            ),
        )
        .unwrap();
    }
    {
        let s = Arc::clone(&slots);
        m.register(
            &take,
            Concern::synchronization(),
            Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                let mut s = s.lock();
                if s.used > 0 {
                    s.used -= 1; // release
                    Verdict::Resume
                } else {
                    Verdict::Block
                }
            })),
        )
        .unwrap();
    }
    let rounds = 200;
    let producer = {
        let m = Arc::clone(&m);
        let put = put.clone();
        thread::spawn(move || {
            for _ in 0..rounds {
                let mut ctx = ctx_for(&m, &put);
                m.preactivation(&put, &mut ctx).unwrap();
                m.postactivation(&put, &mut ctx);
            }
        })
    };
    let consumer = {
        let m = Arc::clone(&m);
        let take = take.clone();
        thread::spawn(move || {
            for _ in 0..rounds {
                let mut ctx = ctx_for(&m, &take);
                m.preactivation(&take, &mut ctx).unwrap();
                m.postactivation(&take, &mut ctx);
            }
        })
    };
    producer.join().unwrap();
    consumer.join().unwrap();
    assert_eq!(slots.lock().used, 0);
    let s = m.stats();
    assert_eq!(s.resumes, rounds * 2);
}

/// A [`Waiter`] wrapper that counts parks and wakes, proving the
/// protocol runs entirely against the engine abstraction.
struct ProbeWaiter {
    inner: amf_concurrency::CondvarWaiter,
    parks: Arc<AtomicU64>,
    wakes: Arc<AtomicU64>,
}

impl amf_concurrency::Waiter<CellState> for ProbeWaiter {
    fn park(&self, guard: &mut parking_lot::MutexGuard<'_, CellState>) {
        self.parks.fetch_add(1, AtomicOrdering::SeqCst);
        amf_concurrency::Waiter::park(&self.inner, guard);
    }

    fn park_until(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, CellState>,
        deadline: std::time::Instant,
    ) -> bool {
        self.parks.fetch_add(1, AtomicOrdering::SeqCst);
        amf_concurrency::Waiter::park_until(&self.inner, guard, deadline)
    }

    fn wake_one(&self) {
        self.wakes.fetch_add(1, AtomicOrdering::SeqCst);
        amf_concurrency::Waiter::<CellState>::wake_one(&self.inner);
    }

    fn wake_all(&self) {
        self.wakes.fetch_add(1, AtomicOrdering::SeqCst);
        amf_concurrency::Waiter::<CellState>::wake_all(&self.inner);
    }
}

struct ProbeEngine {
    parks: Arc<AtomicU64>,
    wakes: Arc<AtomicU64>,
}

impl amf_concurrency::GrantSource<CellState> for ProbeEngine {
    fn waiter(&self) -> Arc<dyn amf_concurrency::Waiter<CellState>> {
        Arc::new(ProbeWaiter {
            inner: amf_concurrency::CondvarWaiter::default(),
            parks: Arc::clone(&self.parks),
            wakes: Arc::clone(&self.wakes),
        })
    }
}

#[test]
fn custom_engine_carries_all_parking() {
    // A blocked-then-released invocation driven through a probe engine:
    // every park and wake must flow through the injected waitpoints,
    // demonstrating the moderator names no parking primitive itself.
    let parks = Arc::new(AtomicU64::new(0));
    let wakes = Arc::new(AtomicU64::new(0));
    let m = Arc::new(
        AspectModerator::builder()
            .engine(Arc::new(ProbeEngine {
                parks: Arc::clone(&parks),
                wakes: Arc::clone(&wakes),
            }))
            .build(),
    );
    let gate = m.declare_method(MethodId::new("gate"));
    let open = Arc::new(AtomicU64::new(0));
    let reader = Arc::clone(&open);
    m.register(
        &gate,
        Concern::synchronization(),
        Box::new(FnAspect::new("gate").on_precondition(move |_| {
            Verdict::resume_if(reader.load(AtomicOrdering::SeqCst) == 1)
        })),
    )
    .unwrap();

    let waiter = Arc::clone(&m);
    let gate2 = gate.clone();
    let t = thread::spawn(move || {
        let mut ctx = ctx_for(&waiter, &gate2);
        waiter.preactivation(&gate2, &mut ctx).unwrap();
    });
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    assert!(
        parks.load(AtomicOrdering::SeqCst) >= 1,
        "blocked caller parked via the engine"
    );
    open.store(1, AtomicOrdering::SeqCst);
    let mut ctx = ctx_for(&m, &gate);
    // A postactivation (no matching preactivation needed for the wake
    // path) notifies the gate's waiters through the probe waitpoint.
    m.postactivation(&gate, &mut ctx);
    t.join().unwrap();
    assert!(
        wakes.load(AtomicOrdering::SeqCst) >= 1,
        "wakeup flowed through the engine"
    );
}

#[test]
fn batched_grants_drain_freed_capacity_in_one_sweep() {
    // Capacity-3 gate, NotifyOne, Fifo: three waiters park while the
    // capacity is taken; refilling frees 3 at once but sends only ONE
    // signal. With batching (default) the front-3 prefix drains by
    // grant extension: batched_grants picks up the admissions beyond
    // the signaled head.
    let m = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .wake_mode(WakeMode::NotifyOne)
            .build(),
    );
    let take = m.declare_method(MethodId::new("take"));
    let refill = m.declare_method(MethodId::new("refill"));
    m.wire_wakes(&refill, std::slice::from_ref(&take));
    m.wire_wakes(&take, &[]);

    let capacity = Arc::new(Mutex::new(0u32));
    let cap_pre = Arc::clone(&capacity);
    m.register(
        &take,
        Concern::synchronization(),
        Box::new(FnAspect::new("cap").on_precondition(move |_| {
            let mut c = cap_pre.lock();
            if *c > 0 {
                *c -= 1;
                Verdict::Resume
            } else {
                Verdict::Block
            }
        })),
    )
    .unwrap();
    let cap_post = Arc::clone(&capacity);
    m.register(
        &refill,
        Concern::synchronization(),
        Box::new(FnAspect::new("refill").on_postaction(move |_| {
            *cap_post.lock() = 3;
        })),
    )
    .unwrap();

    let mut handles = Vec::new();
    for _ in 0..3 {
        let mc = Arc::clone(&m);
        let tk = take.clone();
        handles.push(thread::spawn(move || {
            let mut ctx = ctx_for(&mc, &tk);
            mc.preactivation(&tk, &mut ctx).unwrap();
            mc.postactivation(&tk, &mut ctx);
        }));
    }
    while m.method_stats(&take).tickets_issued < 3 {
        thread::yield_now();
    }
    // One refill postactivation = one NotifyOne signal on `take`.
    let mut ctx = ctx_for(&m, &refill);
    m.preactivation(&refill, &mut ctx).unwrap();
    m.postactivation(&refill, &mut ctx);
    for h in handles {
        h.join().unwrap();
    }
    let stats = m.method_stats(&take);
    assert_eq!(stats.tickets_served, 3, "all three waiters admitted");
    // The head is admitted by the signal; its successors are admitted
    // either by grant extension (batched) or by the head's own
    // postactivation self-wake, depending on which lands first — so at
    // least one of the two follow-on admissions must be an extension.
    assert!(
        stats.batched_grants >= 1,
        "an admission beyond the signaled head came from grant extension, got {}",
        stats.batched_grants
    );
}

#[test]
fn grant_batching_disabled_uses_one_at_a_time_handoffs() {
    // Same capacity-3 scenario with batching off: the single NotifyOne
    // signal admits only the head; the two successors are then admitted
    // by the head's own postactivation self-wakes (one at a time), and
    // batched_grants stays 0.
    let m = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .wake_mode(WakeMode::NotifyOne)
            .grant_batching(false)
            .build(),
    );
    let take = m.declare_method(MethodId::new("take"));
    let refill = m.declare_method(MethodId::new("refill"));
    m.wire_wakes(&refill, std::slice::from_ref(&take));
    m.wire_wakes(&take, &[]);

    let capacity = Arc::new(Mutex::new(0u32));
    let cap_pre = Arc::clone(&capacity);
    m.register(
        &take,
        Concern::synchronization(),
        Box::new(FnAspect::new("cap").on_precondition(move |_| {
            let mut c = cap_pre.lock();
            if *c > 0 {
                *c -= 1;
                Verdict::Resume
            } else {
                Verdict::Block
            }
        })),
    )
    .unwrap();
    let cap_post = Arc::clone(&capacity);
    m.register(
        &refill,
        Concern::synchronization(),
        Box::new(FnAspect::new("refill").on_postaction(move |_| {
            *cap_post.lock() = 3;
        })),
    )
    .unwrap();

    let mut handles = Vec::new();
    for _ in 0..3 {
        let mc = Arc::clone(&m);
        let tk = take.clone();
        handles.push(thread::spawn(move || {
            let mut ctx = ctx_for(&mc, &tk);
            mc.preactivation(&tk, &mut ctx).unwrap();
            mc.postactivation(&tk, &mut ctx);
        }));
    }
    while m.method_stats(&take).tickets_issued < 3 {
        thread::yield_now();
    }
    let mut ctx = ctx_for(&m, &refill);
    m.preactivation(&refill, &mut ctx).unwrap();
    m.postactivation(&refill, &mut ctx);
    for h in handles {
        h.join().unwrap();
    }
    let stats = m.method_stats(&take);
    assert_eq!(stats.tickets_served, 3);
    assert_eq!(stats.batched_grants, 0, "no extension with batching off");
}

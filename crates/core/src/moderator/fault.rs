//! Fault containment: per-slot panic bookkeeping, quarantine, and the
//! panic-to-abort compensation plumbing (module docs in [`super`],
//! "Fault containment").

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use amf_concurrency::{TicketQueue, Waiter};

use super::cell::{CellState, FastLane};
use super::queue::wake_queue;
use super::stats::{inc, StatShard};
use super::{AspectModerator, FairnessPolicy, MethodHandle, PanicPolicy, WakeMode};
use crate::bank::{MethodIndex, MethodRow};
use crate::concern::{Concern, MethodId};
use crate::context::InvocationContext;
use crate::error::AbortError;
use crate::trace::EventKind;

/// Containment bookkeeping for one aspect slot: how often its callbacks
/// have panicked and whether [`PanicPolicy::Quarantine`] has disabled
/// it. Lives in the cell (not the bank) so replacing an aspect via
/// `deregister`/`register` keeps the slot's fault history.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct SlotFault {
    pub(super) panics: u32,
    pub(super) quarantined: bool,
}

/// Renders a caught panic payload for diagnostics.
pub(super) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl AspectModerator {
    /// The moderator's panic containment policy.
    pub fn panic_policy(&self) -> PanicPolicy {
        self.panic_policy
    }

    /// Per-slot caught-panic counts for `method`, in registration order.
    /// Slots that never panicked are reported with a count of 0.
    pub fn panic_counts(&self, method: &MethodHandle) -> Vec<(Concern, u32)> {
        let r = self.resolve(method);
        let state = r.cell.state.lock();
        let fault_map = &state.faults[r.slot.as_usize()];
        state
            .bank
            .concerns(r.slot)
            .into_iter()
            .map(|c| {
                let panics = fault_map.get(&c).map_or(0, |f| f.panics);
                (c, panics)
            })
            .collect()
    }

    /// The concerns of `method` currently quarantined by
    /// [`PanicPolicy::Quarantine`], in registration order.
    pub fn quarantined_concerns(&self, method: &MethodHandle) -> Vec<Concern> {
        let r = self.resolve(method);
        let state = r.cell.state.lock();
        let fault_map = &state.faults[r.slot.as_usize()];
        state
            .bank
            .concerns(r.slot)
            .into_iter()
            .filter(|c| fault_map.get(c).is_some_and(|f| f.quarantined))
            .collect()
    }

    /// Records one contained aspect panic: bumps the counters and the
    /// slot's fault entry, emits [`EventKind::PanicCaught`], and — under
    /// [`PanicPolicy::Quarantine`] — disables the slot once its budget
    /// is spent. Quarantining shortens the effective chain exactly like
    /// `deregister`, so the method's own waiters are woken (full sweep
    /// under Fifo) to re-evaluate. The caller must hold the cell lock.
    ///
    /// A contained panic also **falsifies the row's declared capability
    /// contract** (a pure callback does not panic): the row's cached
    /// fast-lane eligibility is revoked and the lane closed before any
    /// other bookkeeping, so no CAS admission can ride on the
    /// now-discredited declaration. The next weave of the row
    /// recomputes eligibility from its (new) declarations.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn note_panic(
        &self,
        fault_map: &mut HashMap<Concern, SlotFault>,
        queue: &mut TicketQueue,
        point: &Arc<dyn Waiter<CellState>>,
        lane: &FastLane,
        fast_eligible: &mut bool,
        method: &MethodId,
        concern: &Concern,
        invocation: u64,
        stats: &StatShard,
    ) {
        *fast_eligible = false;
        lane.close();
        inc(&stats.panics_caught);
        self.emit(
            invocation,
            method,
            Some(concern.clone()),
            EventKind::PanicCaught,
        );
        let entry = fault_map.entry(concern.clone()).or_default();
        entry.panics = entry.panics.saturating_add(1);
        if let PanicPolicy::Quarantine { after } = self.panic_policy {
            if !entry.quarantined && entry.panics >= after {
                entry.quarantined = true;
                inc(&stats.quarantined_aspects);
                self.emit(
                    invocation,
                    method,
                    Some(concern.clone()),
                    EventKind::AspectQuarantined,
                );
                if self.fairness == FairnessPolicy::Fifo {
                    wake_queue(queue, WakeMode::NotifyAll);
                }
                point.wake_all();
            }
        }
    }

    /// Whether `concern`'s slot has been quarantined (always false under
    /// policies other than [`PanicPolicy::Quarantine`], which never set
    /// the flag).
    pub(super) fn is_quarantined(
        fault_map: &HashMap<Concern, SlotFault>,
        concern: &Concern,
    ) -> bool {
        fault_map.get(concern).is_some_and(|f| f.quarantined)
    }

    /// Builds the error for a chain that ended in `Aborted`: a contained
    /// panic surfaces as [`AbortError::AspectPanicked`], a
    /// [`Verdict::Abort`](crate::Verdict::Abort) as
    /// [`AbortError::Aspect`].
    pub(super) fn abort_error(
        method: &MethodId,
        concern: Concern,
        reason: crate::verdict::AbortReason,
        panicked: bool,
    ) -> AbortError {
        if panicked {
            AbortError::AspectPanicked {
                method: method.clone(),
                concern,
                message: reason.message().to_string(),
            }
        } else {
            AbortError::Aspect {
                method: method.clone(),
                concern,
                reason,
            }
        }
    }

    /// Delivers `on_cancel` to every aspect in a method's row (the
    /// timeout path), with containment per policy: quarantined slots are
    /// skipped and a panicking `on_cancel` is caught and counted so the
    /// remaining aspects still see the cancellation.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn cancel_all(
        &self,
        state: &mut CellState,
        slot: MethodIndex,
        method: &MethodId,
        ctx: &InvocationContext,
        point: &Arc<dyn Waiter<CellState>>,
        lane: &FastLane,
        stats: &StatShard,
    ) {
        let contain = self.panic_policy != PanicPolicy::Propagate;
        let CellState {
            bank,
            queues,
            faults,
            ..
        } = state;
        let row = bank.row_mut(slot);
        let queue = &mut queues[slot.as_usize()];
        let fault_map = &mut faults[slot.as_usize()];
        let MethodRow {
            aspects,
            fast_eligible,
            ..
        } = row;
        for (concern, aspect) in aspects.iter_mut() {
            if contain && Self::is_quarantined(fault_map, concern) {
                continue;
            }
            let delivered = if contain {
                catch_unwind(AssertUnwindSafe(|| aspect.on_cancel(ctx))).is_ok()
            } else {
                aspect.on_cancel(ctx);
                true
            };
            if !delivered {
                let concern = concern.clone();
                self.note_panic(
                    fault_map,
                    queue,
                    point,
                    lane,
                    fast_eligible,
                    method,
                    &concern,
                    ctx.invocation(),
                    stats,
                );
            }
        }
    }
}

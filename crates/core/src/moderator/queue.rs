//! Wake plumbing: which queues a notification reaches and how it is
//! recorded.
//!
//! The ticketed FIFO discipline itself lives in
//! [`amf_concurrency::TicketQueue`] — the moderator holds one per
//! (cell, slot) and this module bridges the moderator's [`WakeMode`]
//! onto it. Under [`FairnessPolicy::Fifo`] a notification is recorded
//! as *queue state* first (a head-of-queue signal or a broadcast sweep)
//! and only then pulsed through the cell's [`Waiter`] waitpoint, so a
//! wake landing while a waiter's cell lock is released persists as a
//! permit instead of being lost.
//!
//! [`Waiter`]: amf_concurrency::Waiter

use std::sync::Arc;

use amf_concurrency::{TicketQueue, Waiter};

use super::cell::{Cell, CellState, MethodEntry};
use super::stats::{inc, StatShard};
use super::{AspectModerator, FairnessPolicy, WakeMode};
use crate::bank::MethodIndex;
use crate::concern::MethodId;
use crate::trace::EventKind;

/// Which wait queues a method's post-activation notifies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(super) enum WakeTargets {
    /// Notify every declared method's queue (safe default).
    #[default]
    All,
    /// Notify exactly these methods' queues (the paper wires open→assign
    /// and assign→open by hand; [`AspectModerator::wire_wakes`] does the
    /// same declaratively).
    Wired(Vec<MethodIndex>),
}

/// Records one notification on a method's FIFO queue: a broadcast sweep
/// under [`WakeMode::NotifyAll`], a single head-of-queue permit under
/// [`WakeMode::NotifyOne`].
pub(super) fn wake_queue(queue: &mut TicketQueue, mode: WakeMode) {
    match mode {
        WakeMode::NotifyAll => queue.wake_all(),
        WakeMode::NotifyOne => queue.wake_one(),
    }
}

impl AspectModerator {
    /// Signals a method's *own* waitpoint (module docs: self-wake). The
    /// caller must hold that method's cell lock. Deliberately neither
    /// counted in [`ModeratorStats::notifications`] nor traced as
    /// [`EventKind::NotificationSent`]: `wire_wakes` semantics (and the
    /// tests pinning them) describe cross-method notifications only.
    ///
    /// Under [`FairnessPolicy::Fifo`] the wake is recorded as a queue
    /// permit first; the waitpoint broadcast only tells parked waiters
    /// to re-check their eligibility.
    ///
    /// [`ModeratorStats::notifications`]: super::ModeratorStats::notifications
    pub(super) fn wake_own(
        &self,
        state: &mut CellState,
        slot: MethodIndex,
        point: &Arc<dyn Waiter<CellState>>,
    ) {
        match self.fairness {
            FairnessPolicy::Barging => match self.wake_mode {
                WakeMode::NotifyAll => point.wake_all(),
                WakeMode::NotifyOne => point.wake_one(),
            },
            FairnessPolicy::Fifo => {
                wake_queue(&mut state.queues[slot.as_usize()], self.wake_mode);
                point.wake_all();
            }
        }
    }

    /// Notifies the wait queues named by `targets`, signalling each
    /// target's waitpoint **while holding that target's cell lock** —
    /// the discipline that makes cross-method wakeups race-free (module
    /// docs). The caller must not hold any cell lock.
    pub(super) fn notify_targets(
        &self,
        targets: &WakeTargets,
        stats: &StatShard,
        invocation: u64,
        source: &MethodId,
    ) {
        type Target = (Arc<Cell>, MethodIndex, Arc<dyn Waiter<CellState>>, MethodId);
        let resolved: Vec<Target> = {
            let registry = self.registry.read();
            let pick = |e: &MethodEntry| {
                (
                    Arc::clone(&e.cell),
                    e.slot,
                    Arc::clone(&e.point),
                    e.id.clone(),
                )
            };
            match targets {
                WakeTargets::All => registry.entries.iter().map(pick).collect(),
                WakeTargets::Wired(t) => t
                    .iter()
                    .map(|ix| pick(&registry.entries[ix.as_usize()]))
                    .collect(),
            }
        };
        for (cell, slot, point, target_id) in resolved {
            {
                let mut state = cell.state.lock();
                match self.fairness {
                    FairnessPolicy::Barging => match self.wake_mode {
                        WakeMode::NotifyAll => point.wake_all(),
                        WakeMode::NotifyOne => point.wake_one(),
                    },
                    FairnessPolicy::Fifo => {
                        wake_queue(&mut state.queues[slot.as_usize()], self.wake_mode);
                        point.wake_all();
                    }
                }
                // Emit while still holding the target cell: the woken
                // waiter cannot log `WaitWoken` until it reacquires the
                // lock, keeping notify→woken ordered in the trace.
                if self.trace.is_some() {
                    self.emit(
                        invocation,
                        source,
                        None,
                        EventKind::NotificationSent(target_id),
                    );
                }
            }
            inc(&stats.notifications);
        }
    }
}

//! Wake plumbing: which queues a notification reaches and how it is
//! recorded.
//!
//! The ticketed FIFO discipline itself lives in
//! [`amf_concurrency::TicketQueue`] — the moderator holds one per
//! (cell, slot) and this module bridges the moderator's [`WakeMode`]
//! onto it. Under [`FairnessPolicy::Fifo`] a notification is recorded
//! as *queue state* first (a head-of-queue signal or a broadcast sweep)
//! and only then pulsed through the cell's [`Waiter`] waitpoint, so a
//! wake landing while a waiter's cell lock is released persists as a
//! permit instead of being lost.
//!
//! [`Waiter`]: amf_concurrency::Waiter

use std::sync::Arc;

use amf_concurrency::{TicketQueue, Waiter};

use super::cell::{Cell, CellState, FastLane, MethodEntry};
use super::stats::{inc, StatShard};
use super::{AspectModerator, FairnessPolicy, WakeMode};
use crate::bank::MethodIndex;
use crate::concern::MethodId;
use crate::trace::EventKind;

/// Which wait queues a method's post-activation notifies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(super) enum WakeTargets {
    /// Notify every declared method's queue (safe default).
    #[default]
    All,
    /// Notify exactly these methods' queues (the paper wires open→assign
    /// and assign→open by hand; [`AspectModerator::wire_wakes`] does the
    /// same declaratively).
    Wired(Vec<MethodIndex>),
}

/// Records one notification on a method's FIFO queue: a broadcast sweep
/// under [`WakeMode::NotifyAll`], a single head-of-queue permit under
/// [`WakeMode::NotifyOne`].
pub(super) fn wake_queue(queue: &mut TicketQueue, mode: WakeMode) {
    match mode {
        WakeMode::NotifyAll => queue.wake_all(),
        WakeMode::NotifyOne => queue.wake_one(),
    }
}

/// Recomputes and publishes one method's fast-lane state. The single
/// authority for *opening* the lane — the full predicate, checked under
/// the cell lock:
///
/// 1. the row's cached capability conjunction holds
///    ([`AspectBank::fast_path_eligible`](crate::AspectBank), revoked
///    by any contained panic),
/// 2. the ticket queue has no waiters **and no unserved grants** (the
///    departure that drains the FIFO queue is the one that reopens the
///    lane — a batched grant still being consumed keeps it closed, so
///    batched admission and timeout cancellation compose),
/// 3. nobody is parked outside the queue (the barging discipline),
/// 4. the method's completion notifies no one
///    ([`WakeTargets::Wired`] and empty — a fast departure skips the
///    post-activation notify, which is only sound if there is no one
///    to notify),
/// 5. no slot of the row is quarantined.
///
/// Closing, by contrast, is *eager*: the slow path calls
/// [`FastLane::close`] directly before any waiter enqueues or parks,
/// and a contained panic closes the lane inside `note_panic`. This
/// function then merely confirms the closed state until the last
/// pending waiter departs.
pub(super) fn refresh_lane(state: &CellState, lane: &FastLane, slot: MethodIndex) {
    let ix = slot.as_usize();
    let clear = state.bank.fast_path_eligible(slot)
        && state.queues[ix].is_empty()
        && !state.queues[ix].has_pending()
        && state.parked[ix] == 0
        && matches!(&state.wakes[ix], WakeTargets::Wired(t) if t.is_empty())
        && state.faults[ix].values().all(|f| !f.quarantined);
    if clear {
        lane.open();
    } else {
        lane.close();
    }
}

impl AspectModerator {
    /// Signals a method's *own* waitpoint (module docs: self-wake). The
    /// caller must hold that method's cell lock. Deliberately neither
    /// counted in [`ModeratorStats::notifications`] nor traced as
    /// [`EventKind::NotificationSent`]: `wire_wakes` semantics (and the
    /// tests pinning them) describe cross-method notifications only.
    ///
    /// Under [`FairnessPolicy::Fifo`] the wake is recorded as a queue
    /// permit first; the waitpoint broadcast only tells parked waiters
    /// to re-check their eligibility.
    ///
    /// [`ModeratorStats::notifications`]: super::ModeratorStats::notifications
    pub(super) fn wake_own(
        &self,
        state: &mut CellState,
        slot: MethodIndex,
        point: &Arc<dyn Waiter<CellState>>,
    ) {
        match self.fairness {
            FairnessPolicy::Barging => match self.wake_mode {
                WakeMode::NotifyAll => point.wake_all(),
                WakeMode::NotifyOne => point.wake_one(),
            },
            FairnessPolicy::Fifo => {
                wake_queue(&mut state.queues[slot.as_usize()], self.wake_mode);
                point.wake_all();
            }
        }
    }

    /// Notifies the wait queues named by `targets`, signalling each
    /// target's waitpoint **while holding that target's cell lock** —
    /// the discipline that makes cross-method wakeups race-free (module
    /// docs). The caller must not hold any cell lock.
    pub(super) fn notify_targets(
        &self,
        targets: &WakeTargets,
        stats: &StatShard,
        invocation: u64,
        source: &MethodId,
    ) {
        type Target = (Arc<Cell>, MethodIndex, Arc<dyn Waiter<CellState>>, MethodId);
        let resolved: Vec<Target> = {
            let registry = self.registry.read();
            let pick = |e: &MethodEntry| {
                (
                    Arc::clone(&e.cell),
                    e.slot,
                    Arc::clone(&e.point),
                    e.id.clone(),
                )
            };
            match targets {
                WakeTargets::All => registry.entries.iter().map(pick).collect(),
                WakeTargets::Wired(t) => t
                    .iter()
                    .map(|ix| pick(&registry.entries[ix.as_usize()]))
                    .collect(),
            }
        };
        for (cell, slot, point, target_id) in resolved {
            {
                let mut state = cell.state.lock();
                match self.fairness {
                    FairnessPolicy::Barging => match self.wake_mode {
                        WakeMode::NotifyAll => point.wake_all(),
                        WakeMode::NotifyOne => point.wake_one(),
                    },
                    FairnessPolicy::Fifo => {
                        wake_queue(&mut state.queues[slot.as_usize()], self.wake_mode);
                        point.wake_all();
                    }
                }
                // Emit while still holding the target cell: the woken
                // waiter cannot log `WaitWoken` until it reacquires the
                // lock, keeping notify→woken ordered in the trace.
                if self.trace.is_some() {
                    self.emit(
                        invocation,
                        source,
                        None,
                        EventKind::NotificationSent(target_id),
                    );
                }
            }
            inc(&stats.notifications);
        }
    }
}

//! Unit tests for the moderator protocol, exercised through the
//! public facade. FIFO admission, batched grants, and the engine
//! probe live in the sibling `tests_fifo` module.

use super::*;
use crate::aspect::{FnAspect, NoopAspect, ReleaseCause};
use crate::context::InvocationContext;
use crate::error::{AbortError, RegistrationError};
use crate::trace::{EventKind, MemoryTrace};
use crate::verdict::Verdict;
use parking_lot::Mutex;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn ctx_for(moderator: &AspectModerator, m: &MethodHandle) -> InvocationContext {
    InvocationContext::new(m.id().clone(), moderator.next_invocation())
}

#[test]
fn declare_method_is_idempotent() {
    let m = AspectModerator::new();
    let a = m.declare_method(MethodId::new("open"));
    let b = m.declare_method(MethodId::new("open"));
    assert_eq!(a, b);
    assert_eq!(m.methods(), vec![MethodId::new("open")]);
}

#[test]
fn method_lookup() {
    let m = AspectModerator::new();
    assert!(m.method(&MethodId::new("open")).is_none());
    let h = m.declare_method(MethodId::new("open"));
    assert_eq!(m.method(&MethodId::new("open")), Some(h));
}

#[test]
fn empty_chain_resumes_immediately() {
    let m = AspectModerator::new();
    let open = m.declare_method(MethodId::new("open"));
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    m.postactivation(&open, &mut ctx);
    let s = m.stats();
    assert_eq!(s.preactivations, 1);
    assert_eq!(s.resumes, 1);
    assert_eq!(s.postactivations, 1);
    assert_eq!(s.blocks, 0);
}

#[test]
fn abort_surfaces_concern_and_reason() {
    let m = AspectModerator::new();
    let open = m.declare_method(MethodId::new("open"));
    m.register(
        &open,
        Concern::authentication(),
        Box::new(FnAspect::new("deny").on_precondition(|_| Verdict::abort("no token"))),
    )
    .unwrap();
    let mut ctx = ctx_for(&m, &open);
    let err = m.preactivation(&open, &mut ctx).unwrap_err();
    match err {
        AbortError::Aspect {
            method,
            concern,
            reason,
        } => {
            assert_eq!(method.as_str(), "open");
            assert_eq!(concern, Concern::authentication());
            assert_eq!(reason.message(), "no token");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(m.stats().aborts, 1);
}

#[test]
fn blocked_caller_resumes_after_postactivation() {
    let m = Arc::new(AspectModerator::new());
    let open = m.declare_method(MethodId::new("open"));
    let assign = m.declare_method(MethodId::new("assign"));
    // `assign` blocks until one `open` has completed (item count > 0).
    let items = Arc::new(AtomicU64::new(0));
    {
        let items = Arc::clone(&items);
        m.register(
            &assign,
            Concern::synchronization(),
            Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                Verdict::resume_if(items.load(AtomicOrdering::SeqCst) > 0)
            })),
        )
        .unwrap();
    }
    let consumer = {
        let m = Arc::clone(&m);
        let assign = assign.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &assign);
            m.preactivation(&assign, &mut ctx).unwrap();
            m.postactivation(&assign, &mut ctx);
        })
    };
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    // Produce: run open's (empty) activation; its postactivation
    // notifies all queues.
    items.store(1, AtomicOrdering::SeqCst);
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    m.postactivation(&open, &mut ctx);
    consumer.join().unwrap();
    let s = m.stats();
    assert!(s.blocks >= 1);
    assert!(s.wakeups >= 1);
    assert_eq!(s.resumes, 2);
}

#[test]
fn timeout_aborts_blocked_caller() {
    let m = AspectModerator::new();
    let open = m.declare_method(MethodId::new("open"));
    m.register(
        &open,
        Concern::synchronization(),
        Box::new(FnAspect::new("never").on_precondition(|_| Verdict::Block)),
    )
    .unwrap();
    let mut ctx = ctx_for(&m, &open);
    let err = m
        .preactivation_timeout(&open, &mut ctx, Duration::from_millis(20))
        .unwrap_err();
    assert!(err.is_timeout());
    assert_eq!(m.stats().timeouts, 1);
}

#[test]
fn nested_ordering_runs_newest_pre_first_and_post_last() {
    let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let m = AspectModerator::new(); // Nested default
    let open = m.declare_method(MethodId::new("open"));
    for (name, pre_tag, post_tag) in [
        ("sync", "sync-pre", "sync-post"),
        ("auth", "auth-pre", "auth-post"),
    ] {
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        m.register(
            &open,
            Concern::new(name),
            Box::new(
                FnAspect::new(name)
                    .on_precondition(move |_| {
                        l1.lock().push(pre_tag);
                        Verdict::Resume
                    })
                    .on_postaction(move |_| l2.lock().push(post_tag)),
            ),
        )
        .unwrap();
    }
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    m.postactivation(&open, &mut ctx);
    // auth registered last => wraps sync (paper Figure 14).
    assert_eq!(
        *log.lock(),
        vec!["auth-pre", "sync-pre", "sync-post", "auth-post"]
    );
}

#[test]
fn declaration_ordering_runs_oldest_pre_first() {
    let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let m = AspectModerator::builder()
        .ordering(OrderingPolicy::Declaration)
        .build();
    let open = m.declare_method(MethodId::new("open"));
    for name in ["first", "second"] {
        let l = Arc::clone(&log);
        m.register(
            &open,
            Concern::new(name),
            Box::new(FnAspect::new(name).on_precondition(move |_| {
                l.lock().push(name);
                Verdict::Resume
            })),
        )
        .unwrap();
    }
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    assert_eq!(*log.lock(), vec!["first", "second"]);
}

#[test]
fn declaration_ordering_posts_newest_first() {
    let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let m = AspectModerator::builder()
        .ordering(OrderingPolicy::Declaration)
        .build();
    let open = m.declare_method(MethodId::new("open"));
    for (name, tag) in [("first", "first-post"), ("second", "second-post")] {
        let l = Arc::clone(&log);
        m.register(
            &open,
            Concern::new(name),
            Box::new(FnAspect::new(name).on_postaction(move |_| l.lock().push(tag))),
        )
        .unwrap();
    }
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    m.postactivation(&open, &mut ctx);
    // Declaration: pre oldest-first, so post (its reverse) is
    // newest-first.
    assert_eq!(*log.lock(), vec!["second-post", "first-post"]);
}

#[test]
fn rollback_releases_earlier_resumed_aspects() {
    let released = Arc::new(AtomicU64::new(0));
    let m = AspectModerator::new();
    let open = m.declare_method(MethodId::new("open"));
    // Under Nested ordering, "outer" (registered second) runs first.
    {
        let released = Arc::clone(&released);
        m.register(
            &open,
            Concern::new("inner-abort"),
            Box::new(FnAspect::new("inner").on_precondition(|_| Verdict::abort("nope"))),
        )
        .unwrap();
        m.register(
            &open,
            Concern::new("outer-reserve"),
            Box::new(
                FnAspect::new("outer")
                    .on_precondition(|_| Verdict::Resume)
                    .on_release_do(move |_, cause| {
                        assert_eq!(cause, ReleaseCause::Aborted);
                        released.fetch_add(1, AtomicOrdering::SeqCst);
                    }),
            ),
        )
        .unwrap();
    }
    let mut ctx = ctx_for(&m, &open);
    assert!(m.preactivation(&open, &mut ctx).is_err());
    assert_eq!(released.load(AtomicOrdering::SeqCst), 1);
    assert_eq!(m.stats().releases, 1);
}

#[test]
fn rollback_none_skips_release() {
    let released = Arc::new(AtomicU64::new(0));
    let m = AspectModerator::builder()
        .rollback(RollbackPolicy::None)
        .build();
    let open = m.declare_method(MethodId::new("open"));
    {
        let released = Arc::clone(&released);
        m.register(
            &open,
            Concern::new("inner-abort"),
            Box::new(FnAspect::new("inner").on_precondition(|_| Verdict::abort("nope"))),
        )
        .unwrap();
        m.register(
            &open,
            Concern::new("outer-reserve"),
            Box::new(
                FnAspect::new("outer")
                    .on_precondition(|_| Verdict::Resume)
                    .on_release_do(move |_, _| {
                        released.fetch_add(1, AtomicOrdering::SeqCst);
                    }),
            ),
        )
        .unwrap();
    }
    let mut ctx = ctx_for(&m, &open);
    assert!(m.preactivation(&open, &mut ctx).is_err());
    assert_eq!(released.load(AtomicOrdering::SeqCst), 0);
    assert_eq!(m.stats().releases, 0);
}

#[test]
fn wire_wakes_restricts_notifications() {
    let trace = MemoryTrace::shared();
    let m = AspectModerator::builder().trace(trace.clone()).build();
    let open = m.declare_method(MethodId::new("open"));
    let assign = m.declare_method(MethodId::new("assign"));
    m.wire_wakes(&open, std::slice::from_ref(&assign));
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    m.postactivation(&open, &mut ctx);
    let notifications: Vec<_> = trace
        .events()
        .into_iter()
        .filter_map(|e| match e.kind {
            EventKind::NotificationSent(t) => Some(t),
            _ => None,
        })
        .collect();
    assert_eq!(notifications, vec![MethodId::new("assign")]);
}

#[test]
fn default_wakes_notify_every_queue() {
    let trace = MemoryTrace::shared();
    let m = AspectModerator::builder().trace(trace.clone()).build();
    let open = m.declare_method(MethodId::new("open"));
    let _assign = m.declare_method(MethodId::new("assign"));
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    m.postactivation(&open, &mut ctx);
    let count = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::NotificationSent(_)))
        .count();
    assert_eq!(count, 2, "both queues notified under WakeTargets::All");
}

#[test]
fn register_from_factory_creates_and_registers() {
    use crate::factory::RegistryFactory;
    let trace = MemoryTrace::shared();
    let m = AspectModerator::builder().trace(trace.clone()).build();
    let open = m.declare_method(MethodId::new("open"));
    let mut factory = RegistryFactory::new();
    factory.provide_for_concern(Concern::synchronization(), || Box::new(NoopAspect));
    m.register_from(&factory, &open, Concern::synchronization())
        .unwrap();
    assert_eq!(m.concerns(&open), vec![Concern::synchronization()]);
    // Figure 2: create precedes register.
    let kinds: Vec<_> = trace.events().into_iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![EventKind::AspectCreated, EventKind::AspectRegistered]
    );
    // Unknown concern: factory refuses.
    let err = m
        .register_from(&factory, &open, Concern::quota())
        .unwrap_err();
    assert!(matches!(err, RegistrationError::FactoryRefused { .. }));
}

#[test]
fn deregister_removes_and_wakes() {
    let m = Arc::new(AspectModerator::new());
    let open = m.declare_method(MethodId::new("open"));
    m.register(
        &open,
        Concern::synchronization(),
        Box::new(FnAspect::new("block-forever").on_precondition(|_| Verdict::Block)),
    )
    .unwrap();
    let waiter = {
        let m = Arc::clone(&m);
        let open = open.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &open);
            m.preactivation(&open, &mut ctx)
        })
    };
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    // Removing the blocking aspect lets the waiter resume on an empty
    // chain.
    let removed = m.deregister(&open, &Concern::synchronization()).unwrap();
    assert_eq!(removed.describe(), "block-forever");
    waiter.join().unwrap().unwrap();
}

#[test]
fn with_aspect_gives_mut_access() {
    let m = AspectModerator::new();
    let open = m.declare_method(MethodId::new("open"));
    m.register(&open, Concern::audit(), Box::new(FnAspect::new("a")))
        .unwrap();
    let name = m
        .with_aspect(&open, &Concern::audit(), |a| a.describe().to_string())
        .unwrap();
    assert_eq!(name, "a");
    assert!(m.with_aspect(&open, &Concern::quota(), |_| ()).is_err());
}

#[test]
#[should_panic(expected = "does not belong")]
fn foreign_handle_is_rejected() {
    let m1 = AspectModerator::new();
    let m2 = AspectModerator::new();
    let h1 = m1.declare_method(MethodId::new("open"));
    let _h2 = m2.declare_method(MethodId::new("other"));
    let mut ctx = InvocationContext::new(h1.id().clone(), 1);
    // h1's index 0 exists on m2 but names a different method.
    let _ = m2.preactivation(&h1, &mut ctx);
}

#[test]
fn invocation_numbers_are_monotonic() {
    let m = AspectModerator::new();
    let a = m.next_invocation();
    let b = m.next_invocation();
    assert!(b > a);
}

#[test]
fn debug_output_mentions_shape() {
    let m = AspectModerator::new();
    let open = m.declare_method(MethodId::new("open"));
    m.register(&open, Concern::audit(), Box::new(NoopAspect))
        .unwrap();
    let s = format!("{m:?}");
    assert!(s.contains("methods: 1"));
    assert!(s.contains("aspects: 1"));
}

#[test]
fn notify_one_pipeline_completes() {
    // WakeMode::NotifyOne (Java's `notify()`, as in the paper) must
    // stay live for the producer/consumer pattern: every completion
    // frees exactly one opportunity, so waking one waiter suffices.
    let m = Arc::new(
        AspectModerator::builder()
            .wake_mode(WakeMode::NotifyOne)
            .build(),
    );
    let put = m.declare_method(MethodId::new("put"));
    let take = m.declare_method(MethodId::new("take"));
    m.wire_wakes(&put, std::slice::from_ref(&take));
    m.wire_wakes(&take, std::slice::from_ref(&put));
    let items = Arc::new(Mutex::new(0_u32));
    {
        let items = Arc::clone(&items);
        m.register(
            &put,
            Concern::synchronization(),
            Box::new(FnAspect::new("not-full").on_precondition(move |_| {
                let mut i = items.lock();
                if *i < 1 {
                    *i += 1;
                    Verdict::Resume
                } else {
                    Verdict::Block
                }
            })),
        )
        .unwrap();
    }
    {
        let items = Arc::clone(&items);
        m.register(
            &take,
            Concern::synchronization(),
            Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                let mut i = items.lock();
                if *i > 0 {
                    *i -= 1;
                    Verdict::Resume
                } else {
                    Verdict::Block
                }
            })),
        )
        .unwrap();
    }
    let rounds = 500;
    let run = |method: MethodHandle, m: Arc<AspectModerator>| {
        thread::spawn(move || {
            for _ in 0..rounds {
                let mut ctx = ctx_for(&m, &method);
                m.preactivation(&method, &mut ctx).unwrap();
                m.postactivation(&method, &mut ctx);
            }
        })
    };
    let p = run(put, Arc::clone(&m));
    let c = run(take, Arc::clone(&m));
    p.join().unwrap();
    c.join().unwrap();
    assert_eq!(*items.lock(), 0);
    assert_eq!(m.stats().resumes, rounds * 2);
}

#[test]
fn propagate_policy_lets_aspect_panics_escape() {
    // The default policy adds no containment frame: the unwind
    // crosses preactivation untouched. Observed with an explicit
    // catch_unwind at the call site, not #[should_panic] — no test
    // may rely on an implicitly propagating aspect panic.
    let m = AspectModerator::new();
    assert_eq!(m.panic_policy(), PanicPolicy::Propagate);
    let open = m.declare_method(MethodId::new("open"));
    m.register(
        &open,
        Concern::new("bomb"),
        Box::new(FnAspect::new("bomb").on_precondition(|_| panic!("kaboom"))),
    )
    .unwrap();
    let mut ctx = ctx_for(&m, &open);
    let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| m.preactivation(&open, &mut ctx)));
    assert!(unwound.is_err(), "panic must escape under Propagate");
    assert_eq!(m.stats().panics_caught, 0);
}

#[test]
fn precondition_panic_aborts_and_rolls_back_prefix() {
    let released = Arc::new(AtomicU64::new(0));
    let trace = MemoryTrace::shared();
    let m = AspectModerator::builder()
        .panic_policy(PanicPolicy::AbortInvocation)
        .trace(trace.clone())
        .build();
    let open = m.declare_method(MethodId::new("open"));
    // Nested ordering: "reserve" (registered second) runs first, so
    // it has resumed by the time "bomb" panics.
    m.register(
        &open,
        Concern::new("bomb"),
        Box::new(FnAspect::new("bomb").on_precondition(|_| panic!("kaboom"))),
    )
    .unwrap();
    {
        let released = Arc::clone(&released);
        m.register(
            &open,
            Concern::new("reserve"),
            Box::new(
                FnAspect::new("reserve")
                    .on_precondition(|_| Verdict::Resume)
                    .on_release_do(move |_, cause| {
                        assert_eq!(cause, ReleaseCause::Aborted);
                        released.fetch_add(1, AtomicOrdering::SeqCst);
                    }),
            ),
        )
        .unwrap();
    }
    let mut ctx = ctx_for(&m, &open);
    let err = m.preactivation(&open, &mut ctx).unwrap_err();
    match &err {
        AbortError::AspectPanicked {
            method,
            concern,
            message,
        } => {
            assert_eq!(method.as_str(), "open");
            assert_eq!(concern.as_str(), "bomb");
            assert_eq!(message, "kaboom");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(err.is_panic());
    // Same compensation as a mid-chain Abort: the prefix unwound.
    assert_eq!(released.load(AtomicOrdering::SeqCst), 1);
    let s = m.stats();
    assert_eq!(s.panics_caught, 1);
    assert_eq!(s.aborts, 1);
    assert_eq!(s.releases, 1);
    assert_eq!(s.quarantined_aspects, 0, "AbortInvocation never disables");
    assert!(trace
        .events()
        .iter()
        .any(|e| e.kind == EventKind::PanicCaught));
    // The slot stays armed: the next activation panics again.
    let mut ctx = ctx_for(&m, &open);
    assert!(m.preactivation(&open, &mut ctx).unwrap_err().is_panic());
    assert_eq!(
        m.panic_counts(&open),
        vec![(Concern::new("bomb"), 2), (Concern::new("reserve"), 0)]
    );
}

#[test]
fn postaction_panic_finishes_chain_and_releases_activation() {
    let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let m = AspectModerator::builder()
        .panic_policy(PanicPolicy::AbortInvocation)
        .build();
    let open = m.declare_method(MethodId::new("open"));
    // Nested postaction order is registration order: the bomb runs
    // before "audit", which must still see the postaction.
    m.register(
        &open,
        Concern::new("bomb"),
        Box::new(FnAspect::new("bomb").on_postaction(|_| panic!("post kaboom"))),
    )
    .unwrap();
    {
        let log = Arc::clone(&log);
        m.register(
            &open,
            Concern::new("audit"),
            Box::new(FnAspect::new("audit").on_postaction(move |_| log.lock().push("audit"))),
        )
        .unwrap();
    }
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    m.postactivation(&open, &mut ctx);
    assert_eq!(*log.lock(), vec!["audit"]);
    let s = m.stats();
    assert_eq!(s.panics_caught, 1);
    assert_eq!(s.postactivations, 1, "activation still released");
    // The invocation as a whole succeeded — no abort was recorded.
    assert_eq!(s.aborts, 0);
}

#[test]
fn quarantine_disables_slot_after_budget() {
    let trace = MemoryTrace::shared();
    let m = AspectModerator::builder()
        .panic_policy(PanicPolicy::Quarantine { after: 2 })
        .trace(trace.clone())
        .build();
    let open = m.declare_method(MethodId::new("open"));
    let runs = Arc::new(AtomicU64::new(0));
    {
        let runs = Arc::clone(&runs);
        m.register(
            &open,
            Concern::new("flaky"),
            Box::new(FnAspect::new("flaky").on_precondition(move |_| {
                runs.fetch_add(1, AtomicOrdering::SeqCst);
                panic!("always broken")
            })),
        )
        .unwrap();
    }
    for _ in 0..2 {
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).unwrap_err().is_panic());
    }
    // Budget spent: the slot now evaluates as Resume without running.
    let mut ctx = ctx_for(&m, &open);
    m.preactivation(&open, &mut ctx).unwrap();
    m.postactivation(&open, &mut ctx);
    assert_eq!(runs.load(AtomicOrdering::SeqCst), 2, "quarantined slot ran");
    let s = m.stats();
    assert_eq!(s.panics_caught, 2);
    assert_eq!(s.quarantined_aspects, 1);
    assert_eq!(s.resumes, 1);
    assert_eq!(m.panic_counts(&open), vec![(Concern::new("flaky"), 2)]);
    assert_eq!(m.quarantined_concerns(&open), vec![Concern::new("flaky")]);
    assert!(trace
        .events()
        .iter()
        .any(|e| e.kind == EventKind::AspectQuarantined));
}

#[test]
fn quarantine_wakes_parked_waiter_barging() {
    // A waiter parked on a blocking aspect must be woken when that
    // aspect is quarantined out of the chain — quarantining shortens
    // the chain exactly like deregister, and the same wake applies.
    let m = Arc::new(
        AspectModerator::builder()
            .panic_policy(PanicPolicy::Quarantine { after: 1 })
            .build(),
    );
    let open = m.declare_method(MethodId::new("open"));
    let armed = Arc::new(AtomicU64::new(0));
    {
        let armed = Arc::clone(&armed);
        m.register(
            &open,
            Concern::new("gate"),
            Box::new(FnAspect::new("gate").on_precondition(move |_| {
                if armed.load(AtomicOrdering::SeqCst) == 1 {
                    panic!("armed")
                }
                Verdict::Block
            })),
        )
        .unwrap();
    }
    let waiter = {
        let m = Arc::clone(&m);
        let open = open.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &open);
            m.preactivation(&open, &mut ctx).unwrap();
            m.postactivation(&open, &mut ctx);
        })
    };
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    // A second caller trips the panic; quarantine (budget 1) disables
    // the gate and must wake the parked waiter onto the empty chain.
    armed.store(1, AtomicOrdering::SeqCst);
    let mut ctx = ctx_for(&m, &open);
    assert!(m.preactivation(&open, &mut ctx).unwrap_err().is_panic());
    armed.store(2, AtomicOrdering::SeqCst); // disarm; slot is dead anyway
    waiter.join().unwrap();
    let s = m.stats();
    assert_eq!(s.quarantined_aspects, 1);
    assert_eq!(s.resumes, 1);
}

#[test]
fn quarantine_wakes_fifo_successor_after_head_panics() {
    // Fifo: the head waiter's re-evaluation panics and quarantines
    // the slot. The successor holds a later ticket and no grant is
    // in flight — only the quarantine wake (full sweep) frees it.
    let m = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .wake_mode(WakeMode::NotifyOne)
            .panic_policy(PanicPolicy::Quarantine { after: 1 })
            .build(),
    );
    let open = m.declare_method(MethodId::new("open"));
    let tick = m.declare_method(MethodId::new("tick"));
    m.wire_wakes(&tick, std::slice::from_ref(&open));
    m.wire_wakes(&open, &[]);
    let evals = Arc::new(AtomicU64::new(0));
    {
        let evals = Arc::clone(&evals);
        m.register(
            &open,
            Concern::new("flaky-gate"),
            Box::new(FnAspect::new("flaky-gate").on_precondition(move |_| {
                // First evaluation parks the head; the re-evaluation
                // after the tick's grant panics.
                if evals.fetch_add(1, AtomicOrdering::SeqCst) == 0 {
                    Verdict::Block
                } else {
                    panic!("flaky gate")
                }
            })),
        )
        .unwrap();
    }
    let head = {
        let m = Arc::clone(&m);
        let open = open.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &open);
            m.preactivation(&open, &mut ctx)
        })
    };
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    let successor = {
        let m = Arc::clone(&m);
        let open = open.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &open);
            m.preactivation(&open, &mut ctx).unwrap();
            m.postactivation(&open, &mut ctx);
        })
    };
    while m.stats().blocks < 2 {
        thread::yield_now();
    }
    // Grant the head: its re-evaluation panics and quarantines the
    // gate; the successor must then resume on the shortened chain.
    let mut ctx = ctx_for(&m, &tick);
    m.preactivation(&tick, &mut ctx).unwrap();
    m.postactivation(&tick, &mut ctx);
    assert!(head.join().unwrap().unwrap_err().is_panic());
    successor.join().unwrap();
    let s = m.stats();
    assert_eq!(s.quarantined_aspects, 1);
    assert_eq!(s.panics_caught, 1);
}

#[test]
fn contained_panic_never_leaks_reservation_or_strands_other_cell() {
    // The cross-cell regression: `put` reserves capacity, then a
    // later aspect in its chain panics. The rollback must release
    // the reservation (else capacity leaks) and the `take` waiter
    // parked on the *other* cell must still complete after a good
    // put — the PR-2 wake discipline under unwind.
    let m = Arc::new(
        AspectModerator::builder()
            .panic_policy(PanicPolicy::AbortInvocation)
            .build(),
    );
    let put = m.declare_method(MethodId::new("put"));
    let take = m.declare_method(MethodId::new("take"));
    m.wire_wakes(&put, std::slice::from_ref(&take));
    m.wire_wakes(&take, std::slice::from_ref(&put));
    let items = Arc::new(Mutex::new(0_u32));
    let armed = Arc::new(AtomicU64::new(1));
    // Nested ordering: "sync" (registered second) reserves before
    // "bomb" (registered first) runs — the panic lands mid-chain
    // with a reservation held.
    {
        let armed = Arc::clone(&armed);
        m.register(
            &put,
            Concern::new("bomb"),
            Box::new(FnAspect::new("bomb").on_precondition(move |_| {
                if armed.load(AtomicOrdering::SeqCst) == 1 {
                    panic!("mid-chain")
                }
                Verdict::Resume
            })),
        )
        .unwrap();
    }
    {
        let items = Arc::clone(&items);
        let undo = Arc::clone(&items);
        m.register(
            &put,
            Concern::synchronization(),
            Box::new(
                FnAspect::new("not-full")
                    .on_precondition(move |_| {
                        let mut i = items.lock();
                        if *i < 1 {
                            *i += 1;
                            Verdict::Resume
                        } else {
                            Verdict::Block
                        }
                    })
                    .on_release_do(move |_, _| {
                        *undo.lock() -= 1;
                    }),
            ),
        )
        .unwrap();
    }
    {
        let items = Arc::clone(&items);
        m.register(
            &take,
            Concern::synchronization(),
            Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                let mut i = items.lock();
                if *i > 0 {
                    *i -= 1;
                    Verdict::Resume
                } else {
                    Verdict::Block
                }
            })),
        )
        .unwrap();
    }
    let consumer = {
        let m = Arc::clone(&m);
        let take = take.clone();
        thread::spawn(move || {
            let mut ctx = ctx_for(&m, &take);
            m.preactivation(&take, &mut ctx).unwrap();
            m.postactivation(&take, &mut ctx);
        })
    };
    while m.stats().blocks == 0 {
        thread::yield_now();
    }
    // Panicking put: contained, reservation rolled back.
    let mut ctx = ctx_for(&m, &put);
    assert!(m.preactivation(&put, &mut ctx).unwrap_err().is_panic());
    assert_eq!(*items.lock(), 0, "reservation leaked past the panic");
    // A good put now fits in the capacity-1 buffer and frees the
    // parked consumer.
    armed.store(0, AtomicOrdering::SeqCst);
    let mut ctx = ctx_for(&m, &put);
    m.preactivation(&put, &mut ctx).unwrap();
    m.postactivation(&put, &mut ctx);
    consumer.join().unwrap();
    assert_eq!(*items.lock(), 0);
    assert_eq!(m.stats().panics_caught, 1);
}

#[test]
fn cancel_panic_is_contained_and_chain_still_cancelled() {
    // A timeout delivers on_cancel to every aspect; a panicking
    // on_cancel must not rob the remaining aspects of theirs.
    let cancelled = Arc::new(AtomicU64::new(0));
    let m = AspectModerator::builder()
        .panic_policy(PanicPolicy::AbortInvocation)
        .build();
    let open = m.declare_method(MethodId::new("open"));
    m.register(
        &open,
        Concern::new("gate"),
        Box::new(FnAspect::new("gate").on_precondition(|_| Verdict::Block)),
    )
    .unwrap();
    m.register(
        &open,
        Concern::new("bomb"),
        Box::new(
            FnAspect::new("bomb")
                .on_precondition(|_| Verdict::Resume)
                .on_cancel_do(|_| panic!("cancel kaboom")),
        ),
    )
    .unwrap();
    {
        let cancelled = Arc::clone(&cancelled);
        m.register(
            &open,
            Concern::new("audit"),
            Box::new(FnAspect::new("audit").on_cancel_do(move |_| {
                cancelled.fetch_add(1, AtomicOrdering::SeqCst);
            })),
        )
        .unwrap();
    }
    let mut ctx = ctx_for(&m, &open);
    let err = m
        .preactivation_timeout(&open, &mut ctx, Duration::from_millis(20))
        .unwrap_err();
    assert!(err.is_timeout());
    assert_eq!(cancelled.load(AtomicOrdering::SeqCst), 1);
    assert_eq!(m.stats().panics_caught, 1);
}

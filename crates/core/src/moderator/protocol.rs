//! The activation protocol: chain evaluation, pre-activation (blocking,
//! timed and non-blocking), rollback, and post-activation.
//!
//! Everything here runs against the engine-agnostic waitpoint of the
//! method's cell ([`Waiter`]) and the shared ticketed FIFO discipline
//! ([`TicketQueue`](amf_concurrency::TicketQueue)); no concrete parking
//! primitive is named. See the module docs in [`super`] for the
//! locking model and the fairness/batching disciplines.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use amf_concurrency::Grant;

use super::cell::{CellState, FastAdmit, Resolved};
use super::fault::panic_message;
use super::queue::refresh_lane;
use super::stats::inc;
use super::{
    AspectModerator, FairnessPolicy, MethodHandle, OrderingPolicy, PanicPolicy, RollbackPolicy,
    ROLLBACK_RECHECK,
};
use crate::aspect::ReleaseCause;
use crate::bank::MethodIndex;
use crate::concern::Concern;
use crate::context::InvocationContext;
use crate::error::AbortError;
use crate::trace::EventKind;
use crate::verdict::Verdict;

/// Outcome of one pass over a method's precondition chain. `released`
/// counts the rollback releases the pass performed; a non-zero count
/// obliges the caller to send a rollback notification (module docs).
pub(super) enum ChainOutcome {
    Resumed,
    Blocked {
        released: usize,
    },
    Aborted {
        concern: Concern,
        reason: crate::verdict::AbortReason,
        released: usize,
        /// True when the abort is a contained aspect panic rather than a
        /// `Verdict::Abort`; surfaced as [`AbortError::AspectPanicked`].
        panicked: bool,
    },
}

impl AspectModerator {
    /// Index of the `pos`-th aspect (of `n`) in precondition order.
    #[inline]
    pub(super) fn pre_index(&self, pos: usize, n: usize) -> usize {
        match self.ordering {
            OrderingPolicy::Nested => n - 1 - pos,
            OrderingPolicy::Declaration => pos,
        }
    }

    /// Index of the `pos`-th aspect (of `n`) in postaction order —
    /// the reverse of the precondition order (proper nesting).
    #[inline]
    pub(super) fn post_index(&self, pos: usize, n: usize) -> usize {
        match self.ordering {
            OrderingPolicy::Nested => pos,
            OrderingPolicy::Declaration => n - 1 - pos,
        }
    }

    /// One pass over the chain, under the method's cell lock. On
    /// `Blocked` or `Aborted`, earlier-resumed aspects have been released
    /// per policy and the release count is reported in the outcome.
    ///
    /// Under a containing [`PanicPolicy`] each precondition runs inside
    /// `catch_unwind`; a panic is treated as an abort at that position
    /// (same prefix rollback), and quarantined slots are skipped
    /// (evaluate as `Resume` without running).
    pub(super) fn evaluate_chain(
        &self,
        state: &mut CellState,
        slot: MethodIndex,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        r: &Resolved,
    ) -> ChainOutcome {
        let n = state.bank.concern_count(slot);
        let traced = self.trace.is_some();
        let contain = self.panic_policy != PanicPolicy::Propagate;
        let CellState {
            bank,
            queues,
            faults,
            ..
        } = state;
        let row = bank.row_mut(slot);
        let queue = &mut queues[slot.as_usize()];
        let fault_map = &mut faults[slot.as_usize()];
        for pos in 0..n {
            let idx = self.pre_index(pos, n);
            let (concern, aspect) = &mut row.aspects[idx];
            if contain && Self::is_quarantined(fault_map, concern) {
                continue;
            }
            let verdict = if contain {
                match catch_unwind(AssertUnwindSafe(|| aspect.precondition(ctx))) {
                    Ok(v) => v,
                    Err(payload) => {
                        let concern = concern.clone();
                        let message = panic_message(payload.as_ref());
                        self.note_panic(
                            fault_map,
                            queue,
                            &r.point,
                            &r.lane,
                            &mut row.fast_eligible,
                            &method.id,
                            &concern,
                            ctx.invocation(),
                            &r.stats,
                        );
                        // Same compensation path as a mid-chain Abort:
                        // unwind the already-evaluated prefix so no
                        // reservation leaks past the panic.
                        let released = self.release_prefix(
                            row,
                            fault_map,
                            queue,
                            pos,
                            n,
                            ctx,
                            ReleaseCause::Aborted,
                            r,
                        );
                        return ChainOutcome::Aborted {
                            concern,
                            reason: crate::verdict::AbortReason::new(message),
                            released,
                            panicked: true,
                        };
                    }
                }
            } else {
                aspect.precondition(ctx)
            };
            match verdict {
                Verdict::Resume => {
                    if traced {
                        let concern = concern.clone();
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern),
                            EventKind::PreconditionResumed,
                        );
                    }
                }
                Verdict::Block => {
                    if traced {
                        let concern = concern.clone();
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern),
                            EventKind::PreconditionBlocked,
                        );
                    }
                    let released = self.release_prefix(
                        row,
                        fault_map,
                        queue,
                        pos,
                        n,
                        ctx,
                        ReleaseCause::Blocked,
                        r,
                    );
                    return ChainOutcome::Blocked { released };
                }
                Verdict::Abort(reason) => {
                    let concern = concern.clone();
                    if traced {
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern.clone()),
                            EventKind::PreconditionAborted,
                        );
                    }
                    let released = self.release_prefix(
                        row,
                        fault_map,
                        queue,
                        pos,
                        n,
                        ctx,
                        ReleaseCause::Aborted,
                        r,
                    );
                    return ChainOutcome::Aborted {
                        concern,
                        reason,
                        released,
                        panicked: false,
                    };
                }
            }
        }
        ChainOutcome::Resumed
    }

    /// Releases the `evaluated` already-resumed aspects (precondition
    /// positions `0..evaluated`) in reverse evaluation order — unwinding
    /// the onion. Returns the number of release deliveries attempted.
    ///
    /// Under a containing [`PanicPolicy`], quarantined slots are skipped
    /// (their precondition never ran in this pass, so there is nothing
    /// to undo) and a panicking `on_release` is caught and counted so
    /// the unwind still reaches every remaining aspect in the prefix.
    #[allow(clippy::too_many_arguments)]
    fn release_prefix(
        &self,
        row: &mut crate::bank::MethodRow,
        fault_map: &mut std::collections::HashMap<Concern, super::fault::SlotFault>,
        queue: &mut amf_concurrency::TicketQueue,
        evaluated: usize,
        n: usize,
        ctx: &InvocationContext,
        cause: ReleaseCause,
        r: &Resolved,
    ) -> usize {
        if self.rollback == RollbackPolicy::None {
            return 0;
        }
        let contain = self.panic_policy != PanicPolicy::Propagate;
        let mut attempted = 0;
        for pos in (0..evaluated).rev() {
            let idx = self.pre_index(pos, n);
            let (concern, aspect) = &mut row.aspects[idx];
            if contain && Self::is_quarantined(fault_map, concern) {
                continue;
            }
            attempted += 1;
            let delivered = if contain {
                catch_unwind(AssertUnwindSafe(|| aspect.on_release(ctx, cause))).is_ok()
            } else {
                aspect.on_release(ctx, cause);
                true
            };
            if delivered {
                inc(&r.stats.releases);
                if self.trace.is_some() {
                    self.emit(
                        ctx.invocation(),
                        ctx.method(),
                        Some(concern.clone()),
                        EventKind::AspectReleased,
                    );
                }
            } else {
                let concern = concern.clone();
                self.note_panic(
                    fault_map,
                    queue,
                    &r.point,
                    &r.lane,
                    &mut row.fast_eligible,
                    ctx.method(),
                    &concern,
                    ctx.invocation(),
                    &r.stats,
                );
            }
        }
        attempted
    }

    /// Runs the pre-activation phase for one invocation, blocking until
    /// every registered aspect resumes.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] if any aspect's precondition aborts.
    pub fn preactivation(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> Result<(), AbortError> {
        self.preactivation_inner(method, ctx, None)
    }

    /// Like [`AspectModerator::preactivation`] but gives up after
    /// `timeout` spent blocked.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] on an aspect abort, [`AbortError::Timeout`]
    /// if the timeout elapses while blocked.
    pub fn preactivation_timeout(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        timeout: std::time::Duration,
    ) -> Result<(), AbortError> {
        self.preactivation_inner(method, ctx, Some(self.clock.now() + timeout))
    }

    fn preactivation_inner(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        deadline: Option<Duration>,
    ) -> Result<(), AbortError> {
        if self.admit_fast(method, ctx) == FastAdmit::Admitted {
            return Ok(());
        }
        let r = self.resolve(method);
        match self.fairness {
            FairnessPolicy::Barging => self.preactivation_barging(&r, method, ctx, deadline),
            FairnessPolicy::Fifo => self.preactivation_fifo(&r, method, ctx, deadline),
        }
    }

    /// Two-phase admission, phase one: a single CAS on the method's
    /// lane word. A successful CAS *proves* the lane was open at the
    /// admission instant — the whole eligibility predicate is encoded
    /// in the word, so there is no check-then-act window. The chain
    /// is not evaluated at all: every aspect of an eligible row has
    /// declared its callbacks pure, so skipping them is unobservable.
    ///
    /// The attempt runs under the registry read guard so the
    /// uncontended hot path never clones an `Arc` out of the registry:
    /// an admitted invocation costs one read-lock round trip, the
    /// admission CAS and its stat bumps — [`resolve`] (four
    /// reference-count increments and their matching drops) is paid
    /// only on the locked path. Trace events fire after the guard
    /// drops so a sink can safely re-enter the moderator.
    ///
    /// On `Admitted` the context owes a lock-free lane release.
    ///
    /// [`resolve`]: AspectModerator::resolve
    fn admit_fast(&self, method: &MethodHandle, ctx: &mut InvocationContext) -> FastAdmit {
        let verdict = {
            let registry = self.registry.read();
            registry.check(method);
            let entry = &registry.entries[method.index.as_usize()];
            inc(&entry.stats.preactivations);
            let verdict = entry.lane.try_admit();
            match verdict {
                FastAdmit::Admitted => {
                    inc(&entry.stats.fast_path_admits);
                    inc(&entry.stats.resumes);
                    ctx.fast_admitted = true;
                }
                FastAdmit::Contended => inc(&entry.stats.fast_path_fallbacks),
                FastAdmit::Closed => {}
            }
            verdict
        };
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PreactivationStarted,
        );
        if verdict == FastAdmit::Admitted {
            self.emit(
                ctx.invocation(),
                &method.id,
                None,
                EventKind::ActivationResumed,
            );
        }
        verdict
    }

    fn preactivation_barging(
        &self,
        r: &Resolved,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        deadline: Option<Duration>,
    ) -> Result<(), AbortError> {
        let mut state = r.cell.state.lock();
        // Set on the first block; drives the wait histogram and the
        // queue-depth gauge. All readings come from the moderator's
        // clock so a virtual-time engine sees consistent deadlines.
        let mut blocked_at: Option<Duration> = None;
        loop {
            match self.evaluate_chain(&mut state, r.slot, method, ctx, r) {
                ChainOutcome::Resumed => {
                    if let Some(start) = blocked_at {
                        r.stats.note_unparked();
                        r.stats.record_wait(self.clock.now().saturating_sub(start));
                        state.parked[r.slot.as_usize()] -= 1;
                        refresh_lane(&state, &r.lane, r.slot);
                    }
                    inc(&r.stats.resumes);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationResumed,
                    );
                    return Ok(());
                }
                ChainOutcome::Aborted {
                    concern,
                    reason,
                    released,
                    panicked,
                } => {
                    if blocked_at.is_some() {
                        r.stats.note_unparked();
                        state.parked[r.slot.as_usize()] -= 1;
                        refresh_lane(&state, &r.lane, r.slot);
                    }
                    inc(&r.stats.aborts);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationAborted,
                    );
                    let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                    if plan.is_some() {
                        self.wake_own(&mut state, r.slot, &r.point);
                    }
                    drop(state);
                    if let Some(targets) = plan {
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                    }
                    return Err(Self::abort_error(&method.id, concern, reason, panicked));
                }
                ChainOutcome::Blocked { released } => {
                    inc(&r.stats.blocks);
                    if blocked_at.is_none() {
                        blocked_at = Some(self.clock.now());
                        r.stats.note_parked();
                        // Close the lane *before* this caller first
                        // parks: a CAS admission must never overtake a
                        // parked waiter. Reopened only by the departure
                        // that leaves the cell waiter-free
                        // (`refresh_lane`).
                        r.lane.close();
                        state.parked[r.slot.as_usize()] += 1;
                    }
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitStarted);
                    let mut backstop = None;
                    if released > 0 {
                        // Rollback notification: another method's chain
                        // may have blocked against the reservation this
                        // pass just rolled back. Wake our targets, then
                        // park with a short recheck backstop to close
                        // the unlocked window (module docs).
                        let targets = state.wakes[r.slot.as_usize()].clone();
                        self.wake_own(&mut state, r.slot, &r.point);
                        drop(state);
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                        state = r.cell.state.lock();
                        backstop = Some(self.clock.now() + ROLLBACK_RECHECK);
                    }
                    let wait_until = match (deadline, backstop) {
                        (Some(d), Some(b)) => Some(d.min(b)),
                        (Some(d), None) => Some(d),
                        (None, b) => b,
                    };
                    match wait_until {
                        None => r.point.park(&mut state),
                        Some(until) => {
                            let remaining = until.saturating_sub(self.clock.now());
                            let timed_out = r.point.park_for(&mut state, remaining);
                            if timed_out && deadline.is_some_and(|d| self.clock.now() >= d) {
                                r.stats.note_unparked();
                                state.parked[r.slot.as_usize()] -= 1;
                                inc(&r.stats.timeouts);
                                // Let enrollment-style aspects (admission
                                // queues) forget this invocation.
                                self.cancel_all(
                                    &mut state, r.slot, &method.id, ctx, &r.point, &r.lane,
                                    &r.stats,
                                );
                                refresh_lane(&state, &r.lane, r.slot);
                                self.emit(
                                    ctx.invocation(),
                                    &method.id,
                                    None,
                                    EventKind::ActivationAborted,
                                );
                                return Err(AbortError::Timeout {
                                    method: method.id.clone(),
                                });
                            }
                        }
                    }
                    inc(&r.stats.wakeups);
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitWoken);
                }
            }
        }
    }

    /// Pre-activation under [`FairnessPolicy::Fifo`].
    ///
    /// The caller evaluates its chain only while holding a *grant*: its
    /// first pass with an empty queue, a queue permit naming its ticket
    /// (head signal or sweep cursor — including a batched extension left
    /// by a departing predecessor), or the rollback-recheck backstop.
    /// A caller arriving to a non-empty queue takes a ticket and parks
    /// without evaluating — even if its chain would resume — which is
    /// what prevents barging. Queue order equals ticket order equals
    /// park order, all maintained under the cell lock.
    ///
    /// With [`ModeratorBuilder::grant_batching`] enabled (the default),
    /// a departing holder whose settle leaves no permit pending extends
    /// its grant to the new queue front
    /// ([`TicketQueue::settle`](amf_concurrency::TicketQueue::settle)):
    /// when one wake freed k resources, the front-k prefix drains in one
    /// continuous cursor-ordered sweep of the cell lock — each admission
    /// settles under the lock its predecessor just released — instead of
    /// k separate notification round trips. Successful batched
    /// admissions are counted in [`ModeratorStats::batched_grants`].
    ///
    /// On `Blocked { released > 0 }` the caller is already ticketed, so
    /// cross-cell notifications landing while the lock is dropped for
    /// the rollback notification persist as queue permits; its own
    /// re-check still uses the [`ROLLBACK_RECHECK`] backstop (an
    /// out-of-band grant, the one documented exception to strict FIFO),
    /// because granting itself a permit would let a head-of-queue
    /// rollback loop spin hot.
    ///
    /// [`ModeratorBuilder::grant_batching`]: super::ModeratorBuilder::grant_batching
    /// [`ModeratorStats::batched_grants`]: super::ModeratorStats::batched_grants
    fn preactivation_fifo(
        &self,
        r: &Resolved,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        deadline: Option<Duration>,
    ) -> Result<(), AbortError> {
        let slot = r.slot.as_usize();
        let mut state = r.cell.state.lock();
        let mut ticket: Option<u64> = None;
        let mut blocked_at: Option<Duration> = None;
        let mut backstop: Option<Duration> = None;
        loop {
            let grant = match ticket {
                None => (!state.queues[slot].has_waiters()).then_some(Grant::First),
                Some(t) => state.queues[slot].grant_for(t).or_else(|| {
                    backstop
                        .is_some_and(|b| self.clock.now() >= b)
                        .then_some(Grant::Backstop)
                }),
            };
            let Some(grant) = grant else {
                if ticket.is_none() {
                    // Barging prevention: earlier tickets are waiting,
                    // so this caller may not evaluate (and possibly
                    // reserve) ahead of them. Queue up and park — lane
                    // closed first, so no CAS admission overtakes the
                    // ticket about to be issued.
                    r.lane.close();
                    ticket = Some(state.queues[slot].enqueue());
                    inc(&r.stats.blocks);
                    inc(&r.stats.tickets_issued);
                    r.stats.note_parked();
                    blocked_at = Some(self.clock.now());
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitStarted);
                    continue;
                }
                let wait_until = match (deadline, backstop) {
                    (Some(d), Some(b)) => Some(d.min(b)),
                    (Some(d), None) => Some(d),
                    (None, b) => b,
                };
                match wait_until {
                    None => r.point.park(&mut state),
                    Some(until) => {
                        let remaining = until.saturating_sub(self.clock.now());
                        let timed_out = r.point.park_for(&mut state, remaining);
                        if timed_out && deadline.is_some_and(|d| self.clock.now() >= d) {
                            // Surrender the ticket. `cancel` re-attaches
                            // pending permits to the successor, so the
                            // cancellation strands nobody; broadcast so
                            // the new head notices its inheritance.
                            let q = &mut state.queues[slot];
                            q.cancel(ticket.expect("timed out while ticketed"));
                            if q.has_pending() && q.has_waiters() {
                                r.point.wake_all();
                            }
                            r.stats.note_unparked();
                            inc(&r.stats.timeouts);
                            self.cancel_all(
                                &mut state, r.slot, &method.id, ctx, &r.point, &r.lane, &r.stats,
                            );
                            refresh_lane(&state, &r.lane, r.slot);
                            self.emit(
                                ctx.invocation(),
                                &method.id,
                                None,
                                EventKind::ActivationAborted,
                            );
                            return Err(AbortError::Timeout {
                                method: method.id.clone(),
                            });
                        }
                    }
                }
                continue;
            };
            if ticket.is_some() {
                inc(&r.stats.wakeups);
                self.emit(ctx.invocation(), &method.id, None, EventKind::WaitWoken);
            }
            if grant == Grant::Backstop {
                // One out-of-band re-check per arming; re-armed below
                // only if this evaluation rolls back again.
                backstop = None;
            }
            match self.evaluate_chain(&mut state, r.slot, method, ctx, r) {
                ChainOutcome::Resumed => {
                    if let Some(t) = ticket {
                        let q = &mut state.queues[slot];
                        if q.settle(t, grant, true) {
                            inc(&r.stats.batched_grants);
                        }
                        inc(&r.stats.tickets_served);
                        r.stats.note_unparked();
                        if q.has_pending() && q.has_waiters() {
                            r.point.wake_all();
                        }
                        // This departure may have drained the queue —
                        // the one transition allowed to reopen the lane.
                        refresh_lane(&state, &r.lane, r.slot);
                    }
                    if let Some(start) = blocked_at {
                        r.stats.record_wait(self.clock.now().saturating_sub(start));
                    }
                    inc(&r.stats.resumes);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationResumed,
                    );
                    return Ok(());
                }
                ChainOutcome::Aborted {
                    concern,
                    reason,
                    released,
                    panicked,
                } => {
                    if let Some(t) = ticket {
                        let q = &mut state.queues[slot];
                        if q.settle(t, grant, true) {
                            inc(&r.stats.batched_grants);
                        }
                        r.stats.note_unparked();
                        if q.has_pending() && q.has_waiters() {
                            r.point.wake_all();
                        }
                        refresh_lane(&state, &r.lane, r.slot);
                    }
                    inc(&r.stats.aborts);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationAborted,
                    );
                    let plan = (released > 0).then(|| state.wakes[slot].clone());
                    if plan.is_some() {
                        self.wake_own(&mut state, r.slot, &r.point);
                    }
                    drop(state);
                    if let Some(targets) = plan {
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                    }
                    return Err(Self::abort_error(&method.id, concern, reason, panicked));
                }
                ChainOutcome::Blocked { released } => {
                    match ticket {
                        Some(t) => {
                            state.queues[slot].settle(t, grant, false);
                        }
                        None => {
                            r.lane.close();
                            ticket = Some(state.queues[slot].enqueue());
                            inc(&r.stats.tickets_issued);
                            r.stats.note_parked();
                            blocked_at = Some(self.clock.now());
                        }
                    }
                    inc(&r.stats.blocks);
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitStarted);
                    if released > 0 {
                        // Rollback notification (module docs). No
                        // own-queue permit: our successors cannot pass
                        // us anyway, and self-granting would make a
                        // blocked queue head spin on its own rollback.
                        let targets = state.wakes[slot].clone();
                        drop(state);
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                        state = r.cell.state.lock();
                        backstop = Some(self.clock.now() + ROLLBACK_RECHECK);
                    }
                }
            }
        }
    }

    /// Non-blocking pre-activation: evaluates the chain once and
    /// returns `Ok(false)` instead of parking if any aspect blocks
    /// (earlier reservations are rolled back per policy). `Ok(true)`
    /// means the activation resumed and post-activation is owed.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] if an aspect's precondition aborts.
    pub fn try_preactivation(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> Result<bool, AbortError> {
        // Same CAS fast lane as the blocking form; the lane-open
        // predicate subsumes barging prevention (the lane closes before
        // any ticket is issued), so a successful admit cannot overtake
        // a ticketed waiter.
        if self.admit_fast(method, ctx) == FastAdmit::Admitted {
            return Ok(true);
        }
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        if self.fairness == FairnessPolicy::Fifo && state.queues[r.slot.as_usize()].has_waiters() {
            // Barging prevention applies to the non-blocking form too:
            // evaluating (and possibly reserving) ahead of ticketed
            // waiters would be exactly the overtake Fifo forbids.
            inc(&r.stats.would_blocks);
            self.emit(
                ctx.invocation(),
                &method.id,
                None,
                EventKind::ActivationAborted,
            );
            return Ok(false);
        }
        match self.evaluate_chain(&mut state, r.slot, method, ctx, &r) {
            ChainOutcome::Resumed => {
                inc(&r.stats.resumes);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationResumed,
                );
                Ok(true)
            }
            ChainOutcome::Blocked { released } => {
                // Would block: the chain already rolled back. Counted as
                // a would-block, not an abort — the caller chose not to
                // park; no aspect vetoed anything.
                inc(&r.stats.would_blocks);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationAborted,
                );
                let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                if plan.is_some() {
                    self.wake_own(&mut state, r.slot, &r.point);
                }
                drop(state);
                if let Some(targets) = plan {
                    self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                }
                Ok(false)
            }
            ChainOutcome::Aborted {
                concern,
                reason,
                released,
                panicked,
            } => {
                inc(&r.stats.aborts);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationAborted,
                );
                let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                if plan.is_some() {
                    self.wake_own(&mut state, r.slot, &r.point);
                }
                drop(state);
                if let Some(targets) = plan {
                    self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                }
                Err(Self::abort_error(&method.id, concern, reason, panicked))
            }
        }
    }

    /// Runs the post-activation phase: every aspect's postaction (in
    /// reverse precondition order) under the method's cell lock, then —
    /// after releasing it — notifies the wait queues wired for this
    /// method under the notify-while-locking-target discipline.
    ///
    /// Under a containing [`PanicPolicy`] a panicking postaction is
    /// caught and counted; the remaining postactions still run and the
    /// activation is still released (post-activation completes, waiters
    /// are notified), so one bad postaction cannot leak the activation.
    pub fn postactivation(&self, method: &MethodHandle, ctx: &mut InvocationContext) {
        // Two-phase admission, phase two: a fast-admitted invocation
        // departs through the matching lock-free release. Skipping the
        // postactions is sound because every aspect of the row declared
        // them pure at admission time; skipping the self-wake and the
        // cross-method notify is sound because lane eligibility requires
        // an empty wake wiring and a waiter-free cell — an invocation
        // that ran no aspects changed nothing any waiter could be
        // blocked on (the no-lost-wake argument, model-checked in
        // `amf-verify`). Like `admit_fast`, the release runs under the
        // registry read guard so the fast departure clones no `Arc`s.
        if ctx.fast_admitted {
            ctx.fast_admitted = false;
            self.emit(
                ctx.invocation(),
                &method.id,
                None,
                EventKind::PostactivationStarted,
            );
            let registry = self.registry.read();
            registry.check(method);
            let entry = &registry.entries[method.index.as_usize()];
            entry.lane.release();
            inc(&entry.stats.postactivations);
            return;
        }
        let r = self.resolve(method);
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PostactivationStarted,
        );
        let targets = {
            let mut state = r.cell.state.lock();
            let n = state.bank.concern_count(r.slot);
            let traced = self.trace.is_some();
            let contain = self.panic_policy != PanicPolicy::Propagate;
            {
                let CellState {
                    bank,
                    queues,
                    faults,
                    ..
                } = &mut *state;
                let row = bank.row_mut(r.slot);
                let queue = &mut queues[r.slot.as_usize()];
                let fault_map = &mut faults[r.slot.as_usize()];
                for pos in 0..n {
                    let idx = self.post_index(pos, n);
                    let (concern, aspect) = &mut row.aspects[idx];
                    if contain && Self::is_quarantined(fault_map, concern) {
                        continue;
                    }
                    let delivered = if contain {
                        catch_unwind(AssertUnwindSafe(|| aspect.postaction(ctx))).is_ok()
                    } else {
                        aspect.postaction(ctx);
                        true
                    };
                    if delivered {
                        if traced {
                            let concern = concern.clone();
                            self.emit(
                                ctx.invocation(),
                                &method.id,
                                Some(concern),
                                EventKind::PostactionRun,
                            );
                        }
                    } else {
                        let concern = concern.clone();
                        self.note_panic(
                            fault_map,
                            queue,
                            &r.point,
                            &r.lane,
                            &mut row.fast_eligible,
                            &method.id,
                            &concern,
                            ctx.invocation(),
                            &r.stats,
                        );
                    }
                }
            }
            inc(&r.stats.postactivations);
            // Postactions may have freed what this method's own waiters
            // block on (active flags, slots): wake them too (module
            // docs: self-wake). `wire_wakes` only governs other queues.
            self.wake_own(&mut state, r.slot, &r.point);
            state.wakes[r.slot.as_usize()].clone()
        };
        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
    }

    /// Emits the `MethodInvoked` trace event (Figure 3's `open(ticket)`
    /// arrow) on behalf of a proxy between the two phases.
    #[doc(hidden)]
    pub fn trace_method_invoked(&self, method: &MethodHandle, invocation: u64) {
        self.emit(invocation, &method.id, None, EventKind::MethodInvoked);
    }
}

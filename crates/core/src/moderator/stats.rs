//! Moderator observability: the public counter snapshot types and the
//! per-method atomic shards behind them.
//!
//! The hot path updates a [`StatShard`] with relaxed atomics and no
//! lock; [`AspectModerator::stats`] aggregates the shards on read.

use std::sync::atomic::{AtomicU64, Ordering as MemOrdering};
use std::time::Duration;

use super::{AspectModerator, MethodHandle, WAIT_BUCKETS};

/// Log₂-microsecond histogram of time callers spent blocked before
/// resuming. Bucket 0 counts waits under 1 µs; bucket `b` counts waits
/// in `[2^(b-1), 2^b)` µs; the last bucket is open-ended (≥ ~16 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaitHistogram {
    /// Per-bucket wait counts.
    pub buckets: [u64; WAIT_BUCKETS],
}

impl WaitHistogram {
    /// Total recorded waits.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper-bound estimate, in microseconds, of percentile `p`
    /// (0–100). Returns 0 when no waits were recorded.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << b;
            }
        }
        1u64 << (WAIT_BUCKETS - 1)
    }

    fn merge(&mut self, other: &WaitHistogram) {
        for (into, from) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *into += from;
        }
    }
}

/// Counters describing everything a moderator has done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeratorStats {
    /// Pre-activations started.
    pub preactivations: u64,
    /// Pre-activations that resumed (method allowed to run).
    pub resumes: u64,
    /// Times a caller parked on a wait queue.
    pub blocks: u64,
    /// Times a parked caller was woken.
    pub wakeups: u64,
    /// Notifications sent to wait queues by post-activations (and by
    /// rollback notifications, see the module docs).
    pub notifications: u64,
    /// Activations aborted by an aspect.
    pub aborts: u64,
    /// Non-blocking pre-activations that found the chain blocked and
    /// returned `Ok(false)` instead of parking
    /// ([`AspectModerator::try_preactivation`]).
    pub would_blocks: u64,
    /// Activations aborted by timeout.
    pub timeouts: u64,
    /// Post-activations completed.
    pub postactivations: u64,
    /// Rollback releases delivered to earlier-resumed aspects.
    pub releases: u64,
    /// FIFO tickets handed to parked callers
    /// ([`FairnessPolicy::Fifo`] only; always 0 under `Barging`).
    ///
    /// [`FairnessPolicy::Fifo`]: super::FairnessPolicy::Fifo
    pub tickets_issued: u64,
    /// FIFO tickets whose holder resumed. Tickets cancelled by timeout
    /// or retired by an abort account for the difference.
    pub tickets_served: u64,
    /// Grants delivered by batched admission: evaluations a ticketed
    /// waiter received because a departing predecessor *extended* its
    /// grant (no fresh notification), see the module docs ("Batched
    /// grants"). Always 0 with [`ModeratorBuilder::grant_batching`]
    /// disabled or under [`FairnessPolicy::Barging`]. The number of
    /// one-at-a-time grant handoffs a workload needed is
    /// `tickets_served - batched_grants` (experiment E12).
    ///
    /// [`ModeratorBuilder::grant_batching`]: super::ModeratorBuilder::grant_batching
    /// [`FairnessPolicy::Barging`]: super::FairnessPolicy::Barging
    pub batched_grants: u64,
    /// High-water mark of concurrently parked callers on any single
    /// method's queue (tracked under both fairness policies; aggregated
    /// with `max`, not summed).
    pub max_queue_depth: u64,
    /// Aspect-callback panics caught by the containment layer (always 0
    /// under [`PanicPolicy::Propagate`]).
    ///
    /// [`PanicPolicy::Propagate`]: super::PanicPolicy::Propagate
    pub panics_caught: u64,
    /// Aspect slots disabled by [`PanicPolicy::Quarantine`].
    ///
    /// [`PanicPolicy::Quarantine`]: super::PanicPolicy::Quarantine
    pub quarantined_aspects: u64,
    /// Invocations admitted through the lock-free fast lane: a single
    /// CAS on the method's lane word instead of a locked chain
    /// evaluation, available only while every aspect of the row
    /// declares `pure + veto_free + no_park` and the lane is open (see
    /// the module docs, "Two-phase admission"). Fast admissions still
    /// count in `preactivations`/`resumes`/`postactivations`.
    pub fast_path_admits: u64,
    /// Fast-lane attempts that found the lane *open* but lost the CAS
    /// to contention (or a concurrent close) and fell back to the
    /// locked slow path. Attempts against a closed lane — the normal
    /// state for undeclared rows — are not counted.
    pub fast_path_fallbacks: u64,
    /// Distribution of time spent blocked before resuming.
    pub wait_hist: WaitHistogram,
}

/// One method's shard of the moderator counters. Plain atomics: the hot
/// path updates them without any lock, [`AspectModerator::stats`]
/// aggregates the shards on read.
#[derive(Default)]
pub(super) struct StatShard {
    pub(super) preactivations: AtomicU64,
    pub(super) resumes: AtomicU64,
    pub(super) blocks: AtomicU64,
    pub(super) wakeups: AtomicU64,
    pub(super) notifications: AtomicU64,
    pub(super) aborts: AtomicU64,
    pub(super) would_blocks: AtomicU64,
    pub(super) timeouts: AtomicU64,
    pub(super) postactivations: AtomicU64,
    pub(super) releases: AtomicU64,
    pub(super) tickets_issued: AtomicU64,
    pub(super) tickets_served: AtomicU64,
    pub(super) batched_grants: AtomicU64,
    /// High-water mark of `waiting_now`.
    max_queue_depth: AtomicU64,
    /// Callers currently parked on this method (gauge, not exported).
    waiting_now: AtomicU64,
    pub(super) panics_caught: AtomicU64,
    pub(super) quarantined_aspects: AtomicU64,
    pub(super) fast_path_admits: AtomicU64,
    pub(super) fast_path_fallbacks: AtomicU64,
    wait_hist: [AtomicU64; WAIT_BUCKETS],
}

pub(super) fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, MemOrdering::Relaxed);
}

/// Bumps the moderator-wide invocation counter. Relaxed is correct:
/// the counter only needs uniqueness and monotonicity, never
/// synchronization. This module is the CI allowlist for
/// `Ordering::Relaxed` in the moderator tree — every ordering outside
/// it is `Acquire`/`Release` and justified in the fast-lane table
/// (`cell.rs`).
pub(super) fn next_invocation_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, MemOrdering::Relaxed) + 1
}

impl StatShard {
    /// Records a caller entering the parked state and bumps the
    /// queue-depth high-water mark.
    pub(super) fn note_parked(&self) {
        let depth = self.waiting_now.fetch_add(1, MemOrdering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, MemOrdering::Relaxed);
    }

    pub(super) fn note_unparked(&self) {
        self.waiting_now.fetch_sub(1, MemOrdering::Relaxed);
    }

    /// Buckets one blocked-wait duration into the log₂-µs histogram.
    pub(super) fn record_wait(&self, waited: Duration) {
        let us = waited.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(WAIT_BUCKETS - 1);
        inc(&self.wait_hist[bucket]);
    }

    pub(super) fn snapshot(&self) -> ModeratorStats {
        let mut wait_hist = WaitHistogram::default();
        for (into, from) in wait_hist.buckets.iter_mut().zip(self.wait_hist.iter()) {
            *into = from.load(MemOrdering::Relaxed);
        }
        ModeratorStats {
            preactivations: self.preactivations.load(MemOrdering::Relaxed),
            resumes: self.resumes.load(MemOrdering::Relaxed),
            blocks: self.blocks.load(MemOrdering::Relaxed),
            wakeups: self.wakeups.load(MemOrdering::Relaxed),
            notifications: self.notifications.load(MemOrdering::Relaxed),
            aborts: self.aborts.load(MemOrdering::Relaxed),
            would_blocks: self.would_blocks.load(MemOrdering::Relaxed),
            timeouts: self.timeouts.load(MemOrdering::Relaxed),
            postactivations: self.postactivations.load(MemOrdering::Relaxed),
            releases: self.releases.load(MemOrdering::Relaxed),
            tickets_issued: self.tickets_issued.load(MemOrdering::Relaxed),
            tickets_served: self.tickets_served.load(MemOrdering::Relaxed),
            batched_grants: self.batched_grants.load(MemOrdering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(MemOrdering::Relaxed),
            panics_caught: self.panics_caught.load(MemOrdering::Relaxed),
            quarantined_aspects: self.quarantined_aspects.load(MemOrdering::Relaxed),
            fast_path_admits: self.fast_path_admits.load(MemOrdering::Relaxed),
            fast_path_fallbacks: self.fast_path_fallbacks.load(MemOrdering::Relaxed),
            wait_hist,
        }
    }

    fn add_into(&self, out: &mut ModeratorStats) {
        let s = self.snapshot();
        out.preactivations += s.preactivations;
        out.resumes += s.resumes;
        out.blocks += s.blocks;
        out.wakeups += s.wakeups;
        out.notifications += s.notifications;
        out.aborts += s.aborts;
        out.would_blocks += s.would_blocks;
        out.timeouts += s.timeouts;
        out.postactivations += s.postactivations;
        out.releases += s.releases;
        out.tickets_issued += s.tickets_issued;
        out.tickets_served += s.tickets_served;
        out.batched_grants += s.batched_grants;
        out.max_queue_depth = out.max_queue_depth.max(s.max_queue_depth);
        out.panics_caught += s.panics_caught;
        out.quarantined_aspects += s.quarantined_aspects;
        out.fast_path_admits += s.fast_path_admits;
        out.fast_path_fallbacks += s.fast_path_fallbacks;
        out.wait_hist.merge(&s.wait_hist);
    }
}

impl AspectModerator {
    /// Snapshot of the moderator's counters, aggregated across every
    /// method's shard.
    pub fn stats(&self) -> ModeratorStats {
        let registry = self.registry.read();
        let mut out = ModeratorStats::default();
        for entry in &registry.entries {
            entry.stats.add_into(&mut out);
        }
        out
    }

    /// Snapshot of one method's shard of the counters. Notifications are
    /// credited to the sending method.
    pub fn method_stats(&self, method: &MethodHandle) -> ModeratorStats {
        self.resolve(method).stats.snapshot()
    }
}

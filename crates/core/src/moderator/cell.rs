//! Coordination cells and the method registry.
//!
//! Each declared method owns a *cell* — a mutex guarding its aspect
//! chain, wake wiring, FIFO queue and fault bookkeeping — plus a
//! [`Waiter`] waitpoint supplied by the moderator's [`GrantSource`]
//! engine and a shard of atomic counters. Under
//! [`Coordination::GlobalLock`](super::Coordination::GlobalLock) every
//! method shares one cell. Lock ordering is `registry → at most one
//! cell` (see the module docs in [`super`]).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use amf_concurrency::{TicketQueue, Waiter};
use parking_lot::Mutex;

use super::fault::SlotFault;
use super::queue::{wake_queue, WakeTargets};
use super::stats::StatShard;
use super::{AspectModerator, Coordination, FairnessPolicy, WakeMode};
use crate::aspect::Aspect;
use crate::bank::{AspectBank, MethodIndex};
use crate::concern::{Concern, MethodId};
use crate::error::RegistrationError;
use crate::factory::AspectFactory;
use crate::trace::EventKind;

/// Handle to a declared participating method; obtained from
/// [`AspectModerator::declare_method`] and used for all per-method
/// operations.
///
/// Handles are cheap to clone and are only valid on the moderator that
/// issued them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodHandle {
    pub(crate) index: MethodIndex,
    pub(crate) id: MethodId,
}

impl MethodHandle {
    /// The method's identifier.
    pub fn id(&self) -> &MethodId {
        &self.id
    }

    /// The method's dense index in the issuing moderator's registry.
    pub fn index(&self) -> MethodIndex {
        self.index
    }
}

impl fmt::Display for MethodHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id.as_str())
    }
}

/// The mutable coordination state of one cell: the aspect rows (an
/// [`AspectBank`] with one row per hosted method — exactly one under
/// [`Coordination::Sharded`]) and each hosted method's wake wiring.
pub struct CellState {
    pub(super) bank: AspectBank,
    /// Wake targets per local bank row, parallel to the bank's rows.
    pub(super) wakes: Vec<WakeTargets>,
    /// Ticketed FIFO wait state per local bank row, parallel to the
    /// bank's rows (the workspace-shared discipline from
    /// `amf-concurrency`). Unused (never enqueued into) under
    /// [`FairnessPolicy::Barging`].
    pub(super) queues: Vec<TicketQueue>,
    /// Per-slot panic bookkeeping, keyed by concern, parallel to the
    /// bank's rows. Empty under
    /// [`PanicPolicy::Propagate`](super::PanicPolicy::Propagate).
    pub(super) faults: Vec<HashMap<Concern, SlotFault>>,
}

/// One coordination cell: the lock guarding a method's chain, wake
/// wiring and blocked callers. Under [`Coordination::GlobalLock`] a
/// single cell hosts every method.
pub(super) struct Cell {
    pub(super) state: Mutex<CellState>,
}

impl Cell {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(CellState {
                bank: AspectBank::new(),
                wakes: Vec::new(),
                queues: Vec::new(),
                faults: Vec::new(),
            }),
        })
    }
}

/// Registry entry for one declared method: which cell hosts it, at which
/// local row, plus its waitpoint and stats shard.
pub(super) struct MethodEntry {
    pub(super) id: MethodId,
    pub(super) cell: Arc<Cell>,
    /// The method's row index inside its cell's bank.
    pub(super) slot: MethodIndex,
    /// Where this method's callers park; engine-supplied, so the
    /// protocol never names a concrete parking primitive.
    pub(super) point: Arc<dyn Waiter<CellState>>,
    pub(super) stats: Arc<StatShard>,
}

/// The read-mostly method registry. Write-locked only by
/// `declare_method`; every hot-path operation read-locks it briefly to
/// clone the `Arc`s out and then operates on the cell alone.
#[derive(Default)]
pub(super) struct Registry {
    pub(super) entries: Vec<MethodEntry>,
    pub(super) by_id: HashMap<MethodId, usize>,
    /// The one shared cell under [`Coordination::GlobalLock`].
    shared_cell: Option<Arc<Cell>>,
}

impl Registry {
    pub(super) fn check(&self, method: &MethodHandle) {
        assert!(
            self.entries
                .get(method.index.as_usize())
                .is_some_and(|e| e.id == method.id),
            "method handle `{}` does not belong to this moderator",
            method.id
        );
    }
}

/// A method's coordination handles, cloned out of the registry so the
/// hot path drops the registry read lock before touching the cell.
pub(super) struct Resolved {
    pub(super) cell: Arc<Cell>,
    pub(super) slot: MethodIndex,
    pub(super) point: Arc<dyn Waiter<CellState>>,
    pub(super) stats: Arc<StatShard>,
}

impl AspectModerator {
    /// Clones a method's coordination handles out of the registry.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this moderator.
    pub(super) fn resolve(&self, method: &MethodHandle) -> Resolved {
        let registry = self.registry.read();
        registry.check(method);
        let entry = &registry.entries[method.index.as_usize()];
        Resolved {
            cell: Arc::clone(&entry.cell),
            slot: entry.slot,
            point: Arc::clone(&entry.point),
            stats: Arc::clone(&entry.stats),
        }
    }

    /// Declares a participating method; idempotent.
    pub fn declare_method(&self, id: MethodId) -> MethodHandle {
        let mut registry = self.registry.write();
        if let Some(&ix) = registry.by_id.get(&id) {
            return MethodHandle {
                index: MethodIndex(ix),
                id,
            };
        }
        let cell = match self.coordination {
            Coordination::Sharded => Cell::new(),
            Coordination::GlobalLock => {
                if registry.shared_cell.is_none() {
                    registry.shared_cell = Some(Cell::new());
                }
                Arc::clone(registry.shared_cell.as_ref().expect("just seeded"))
            }
        };
        let slot = {
            let mut state = cell.state.lock();
            let slot = state.bank.declare(id.clone());
            if state.wakes.len() < state.bank.method_count() {
                state.wakes.push(WakeTargets::All);
                state.queues.push(TicketQueue::new(self.grant_batching));
                state.faults.push(HashMap::new());
            }
            slot
        };
        let ix = registry.entries.len();
        registry.by_id.insert(id.clone(), ix);
        registry.entries.push(MethodEntry {
            id: id.clone(),
            cell,
            slot,
            point: self.engine.waiter(),
            stats: Arc::new(StatShard::default()),
        });
        MethodHandle {
            index: MethodIndex(ix),
            id,
        }
    }

    /// Looks up the handle of an already-declared method.
    pub fn method(&self, id: &MethodId) -> Option<MethodHandle> {
        let registry = self.registry.read();
        registry.by_id.get(id).map(|&ix| MethodHandle {
            index: MethodIndex(ix),
            id: id.clone(),
        })
    }

    /// Declared method identifiers, in declaration order.
    pub fn methods(&self) -> Vec<MethodId> {
        self.registry
            .read()
            .entries
            .iter()
            .map(|e| e.id.clone())
            .collect()
    }

    /// Stores an aspect in the (method, concern) cell — the paper's
    /// `registerAspect`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::DuplicateConcern`] if the cell is occupied.
    pub fn register(
        &self,
        method: &MethodHandle,
        concern: Concern,
        aspect: Box<dyn Aspect>,
    ) -> Result<(), RegistrationError> {
        let r = self.resolve(method);
        {
            let mut state = r.cell.state.lock();
            state.bank.register(r.slot, concern.clone(), aspect)?;
        }
        self.emit(0, &method.id, Some(concern), EventKind::AspectRegistered);
        Ok(())
    }

    /// Asks `factory` to create the aspect for (method, concern) and
    /// registers it — the paper's initialization idiom
    /// `moderator.registerAspect(open, SYNC, factory.create(open, SYNC))`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::FactoryRefused`] if the factory returns no
    /// aspect, or [`RegistrationError::DuplicateConcern`] if the cell is
    /// occupied.
    pub fn register_from(
        &self,
        factory: &dyn AspectFactory,
        method: &MethodHandle,
        concern: Concern,
    ) -> Result<(), RegistrationError> {
        let aspect = factory.create(&method.id, &concern).ok_or_else(|| {
            RegistrationError::FactoryRefused {
                method: method.id.clone(),
                concern: concern.clone(),
            }
        })?;
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectCreated,
        );
        self.register(method, concern, aspect)
    }

    /// Removes and returns the aspect in the (method, concern) cell,
    /// waking all of the method's waiters so they re-evaluate against the
    /// shortened chain.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn deregister(
        &self,
        method: &MethodHandle,
        concern: &Concern,
    ) -> Result<Box<dyn Aspect>, RegistrationError> {
        let r = self.resolve(method);
        let aspect = {
            let mut state = r.cell.state.lock();
            let aspect = state.bank.deregister(r.slot, concern)?;
            // Notify while holding the cell lock: a waiter either is
            // already parked (woken now) or still holds the lock and
            // will re-evaluate against the shortened chain anyway.
            // Under Fifo every ticketed waiter must get a turn against
            // the shortened chain, in order — a full sweep.
            if self.fairness == FairnessPolicy::Fifo {
                wake_queue(&mut state.queues[r.slot.as_usize()], WakeMode::NotifyAll);
            }
            r.point.wake_all();
            aspect
        };
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectDeregistered,
        );
        Ok(aspect)
    }

    /// The concerns registered for a method, in registration order.
    pub fn concerns(&self, method: &MethodHandle) -> Vec<Concern> {
        let r = self.resolve(method);
        let state = r.cell.state.lock();
        state.bank.concerns(r.slot)
    }

    /// Restricts which wait queues `method`'s post-activation notifies
    /// (default: all queues). The paper wires `open` → `assign`'s queue
    /// and vice versa.
    ///
    /// The method's *own* queue is always signalled after its
    /// postactions run, independent of this wiring (module docs:
    /// self-wake) — wiring governs cross-method notifications only.
    pub fn wire_wakes(&self, method: &MethodHandle, targets: &[MethodHandle]) {
        {
            let registry = self.registry.read();
            registry.check(method);
            for t in targets {
                registry.check(t);
            }
        }
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        state.wakes[r.slot.as_usize()] =
            WakeTargets::Wired(targets.iter().map(|t| t.index).collect());
    }

    /// Runs `f` with mutable access to the aspect registered under
    /// (method, concern), under the method's cell lock. Administrative
    /// escape hatch for inspecting or adjusting aspect state.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn with_aspect<R>(
        &self,
        method: &MethodHandle,
        concern: &Concern,
        f: impl FnOnce(&mut dyn Aspect) -> R,
    ) -> Result<R, RegistrationError> {
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        match state.bank.aspect_mut(r.slot, concern) {
            Some(aspect) => Ok(f(aspect)),
            None => Err(RegistrationError::UnknownConcern {
                method: method.id.clone(),
                concern: concern.clone(),
            }),
        }
    }
}

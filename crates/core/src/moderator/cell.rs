//! Coordination cells and the method registry.
//!
//! Each declared method owns a *cell* — a mutex guarding its aspect
//! chain, wake wiring, FIFO queue and fault bookkeeping — plus a
//! [`Waiter`] waitpoint supplied by the moderator's [`GrantSource`]
//! engine and a shard of atomic counters. Under
//! [`Coordination::GlobalLock`](super::Coordination::GlobalLock) every
//! method shares one cell. Lock ordering is `registry → at most one
//! cell` (see the module docs in [`super`]).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amf_concurrency::{TicketQueue, Waiter};
use parking_lot::Mutex;

use super::fault::SlotFault;
use super::queue::{refresh_lane, wake_queue, WakeTargets};
use super::stats::StatShard;
use super::{AspectModerator, Coordination, FairnessPolicy, WakeMode};
use crate::aspect::Aspect;
use crate::bank::{AspectBank, MethodIndex};
use crate::concern::{Concern, MethodId};
use crate::error::RegistrationError;
use crate::factory::AspectFactory;
use crate::trace::EventKind;

/// Handle to a declared participating method; obtained from
/// [`AspectModerator::declare_method`] and used for all per-method
/// operations.
///
/// Handles are cheap to clone and are only valid on the moderator that
/// issued them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodHandle {
    pub(crate) index: MethodIndex,
    pub(crate) id: MethodId,
}

impl MethodHandle {
    /// The method's identifier.
    pub fn id(&self) -> &MethodId {
        &self.id
    }

    /// The method's dense index in the issuing moderator's registry.
    pub fn index(&self) -> MethodIndex {
        self.index
    }
}

impl fmt::Display for MethodHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id.as_str())
    }
}

/// Outcome of a fast-lane admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum FastAdmit {
    /// Admitted: the activation count was raised by a successful CAS
    /// while the lane was open. The invocation owes a matching
    /// [`FastLane::release`].
    Admitted,
    /// The lane is closed (ineligible row, waiters pending, quarantine,
    /// or wake wiring); take the locked path. The normal state for
    /// every method that never declared a capability contract, so this
    /// is *not* counted as a fallback.
    Closed,
    /// The lane was open but the CAS lost every retry to concurrent
    /// admissions or a concurrent close; take the locked path and count
    /// a `fast_path_fallbacks`.
    Contended,
}

/// Bounded CAS retries before an open-lane admission gives up and falls
/// back to the locked path (counted in `fast_path_fallbacks`).
const ADMIT_ATTEMPTS: u32 = 8;

/// The per-method fast-lane word: one atomic `u64` packing the
/// fast-path activation count, the lane's open/closed bit and a close
/// epoch. The uncontended hot path admits and releases with a single
/// atomic RMW on this word instead of two cell-lock round trips.
///
/// # Packed layout
///
/// | bits    | field  | meaning |
/// |---------|--------|---------|
/// | 0..=31  | ACTIVE | in-flight fast-lane activations (admit = `+1`, release = `-1`) |
/// | 32      | OPEN   | 1 ⇒ CAS admission allowed; all transitions happen under the cell lock |
/// | 33..=63 | EPOCH  | close generation, bumped on every open→closed transition (wraps) |
///
/// Because the *whole admission predicate* is encoded in the word, a
/// successful `compare_exchange` proves the lane was open at the
/// instant of admission — there is no check-then-act window. The EPOCH
/// field makes the open bit immune to ABA across a close/reopen pair
/// (the word cannot repeat until 2³¹ closes), so a stale snapshot can
/// never be confirmed by a CAS.
///
/// # Memory-ordering table
///
/// Everything here is `Acquire`/`Release`; the moderator's CI gate
/// forbids the `Relaxed` ordering in this module tree outside the stats
/// shard. The pairings:
///
/// | access | ordering | why |
/// |--------|----------|-----|
/// | [`try_admit`](Self::try_admit) load + CAS | `Acquire` / `AcqRel` | the Acquire pairs with [`open`](Self::open)'s Release so an admitted thread sees every write (bank reweave, queue drain) that preceded the lane opening; the Release half publishes the raised count to the next closer |
/// | [`release`](Self::release) `fetch_sub` | `Release` | orders the invocation's body before the departure becomes visible to any observer of the in-flight count |
/// | [`close`](Self::close) / [`open`](Self::open) `fetch_update` | `AcqRel` / `Acquire` | run under the cell lock; Release publishes the new lane state to lock-free admitters, Acquire observes the latest in-flight count |
/// | observer loads (`snapshot`, tests only) | `Acquire` | observer-side pairing with all of the above |
pub(super) struct FastLane {
    word: AtomicU64,
}

const LANE_OPEN: u64 = 1 << 32;
const LANE_ACTIVE_MASK: u64 = LANE_OPEN - 1;
const LANE_EPOCH_SHIFT: u32 = 33;

impl FastLane {
    /// A new lane starts closed; `refresh_lane` opens it once the row's
    /// contract, wiring and queues allow.
    pub(super) fn new() -> Self {
        Self {
            word: AtomicU64::new(0),
        }
    }

    /// Attempts a single-CAS admission. See [`FastAdmit`].
    pub(super) fn try_admit(&self) -> FastAdmit {
        let mut w = self.word.load(Ordering::Acquire);
        for _ in 0..ADMIT_ATTEMPTS {
            if w & LANE_OPEN == 0 {
                return FastAdmit::Closed;
            }
            match self
                .word
                .compare_exchange_weak(w, w + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return FastAdmit::Admitted,
                Err(cur) => w = cur,
            }
        }
        FastAdmit::Contended
    }

    /// Departs a fast-admitted activation. Touches only the ACTIVE
    /// field, so it is correct whether or not the lane has closed since
    /// the admission.
    pub(super) fn release(&self) {
        let prev = self.word.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & LANE_ACTIVE_MASK > 0, "fast-lane release underflow");
    }

    /// Closes the lane (idempotent), bumping the epoch on an actual
    /// open→closed transition. Caller holds the cell lock.
    pub(super) fn close(&self) {
        let _ = self
            .word
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                (w & LANE_OPEN != 0).then(|| (w & !LANE_OPEN).wrapping_add(1 << LANE_EPOCH_SHIFT))
            });
    }

    /// Opens the lane (idempotent). Caller holds the cell lock and has
    /// verified the full predicate (eligible row, empty queue, nobody
    /// parked, no quarantine, empty wake wiring).
    pub(super) fn open(&self) {
        let _ = self
            .word
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                (w & LANE_OPEN == 0).then_some(w | LANE_OPEN)
            });
    }

    /// `(open, in-flight, epoch)` — for assertions and diagnostics.
    #[cfg(test)]
    pub(super) fn snapshot(&self) -> (bool, u64, u64) {
        let w = self.word.load(Ordering::Acquire);
        (
            w & LANE_OPEN != 0,
            w & LANE_ACTIVE_MASK,
            w >> LANE_EPOCH_SHIFT,
        )
    }

    /// In-flight fast-lane activations.
    #[cfg(test)]
    pub(super) fn in_flight(&self) -> u64 {
        self.word.load(Ordering::Acquire) & LANE_ACTIVE_MASK
    }
}

/// The mutable coordination state of one cell: the aspect rows (an
/// [`AspectBank`] with one row per hosted method — exactly one under
/// [`Coordination::Sharded`]) and each hosted method's wake wiring.
pub struct CellState {
    pub(super) bank: AspectBank,
    /// Wake targets per local bank row, parallel to the bank's rows.
    pub(super) wakes: Vec<WakeTargets>,
    /// Ticketed FIFO wait state per local bank row, parallel to the
    /// bank's rows (the workspace-shared discipline from
    /// `amf-concurrency`). Unused (never enqueued into) under
    /// [`FairnessPolicy::Barging`].
    pub(super) queues: Vec<TicketQueue>,
    /// Per-slot panic bookkeeping, keyed by concern, parallel to the
    /// bank's rows. Empty under
    /// [`PanicPolicy::Propagate`](super::PanicPolicy::Propagate).
    pub(super) faults: Vec<HashMap<Concern, SlotFault>>,
    /// Callers parked on each row's waitpoint *outside* the ticket
    /// queue (the barging discipline parks without enqueueing), parallel
    /// to the bank's rows. Together with `queues[slot].has_pending()`
    /// this is the "no waiters" half of the fast-lane predicate.
    pub(super) parked: Vec<u32>,
}

/// One coordination cell: the lock guarding a method's chain, wake
/// wiring and blocked callers. Under [`Coordination::GlobalLock`] a
/// single cell hosts every method.
pub(super) struct Cell {
    pub(super) state: Mutex<CellState>,
}

impl Cell {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(CellState {
                bank: AspectBank::new(),
                wakes: Vec::new(),
                queues: Vec::new(),
                faults: Vec::new(),
                parked: Vec::new(),
            }),
        })
    }
}

/// Registry entry for one declared method: which cell hosts it, at which
/// local row, plus its waitpoint and stats shard.
pub(super) struct MethodEntry {
    pub(super) id: MethodId,
    pub(super) cell: Arc<Cell>,
    /// The method's row index inside its cell's bank.
    pub(super) slot: MethodIndex,
    /// Where this method's callers park; engine-supplied, so the
    /// protocol never names a concrete parking primitive.
    pub(super) point: Arc<dyn Waiter<CellState>>,
    pub(super) stats: Arc<StatShard>,
    /// The method's fast-lane word, read lock-free by the hot path.
    pub(super) lane: Arc<FastLane>,
}

/// The read-mostly method registry. Write-locked only by
/// `declare_method`; locked-path operations read-lock it briefly to
/// clone the `Arc`s out and then operate on the cell alone, while the
/// fast lane admits and releases entirely under the read guard
/// (`admit_fast` in `protocol.rs`) without touching a reference count.
#[derive(Default)]
pub(super) struct Registry {
    pub(super) entries: Vec<MethodEntry>,
    pub(super) by_id: HashMap<MethodId, usize>,
    /// The one shared cell under [`Coordination::GlobalLock`].
    shared_cell: Option<Arc<Cell>>,
}

impl Registry {
    pub(super) fn check(&self, method: &MethodHandle) {
        assert!(
            self.entries
                .get(method.index.as_usize())
                .is_some_and(|e| e.id == method.id),
            "method handle `{}` does not belong to this moderator",
            method.id
        );
    }
}

/// A method's coordination handles, cloned out of the registry so the
/// hot path drops the registry read lock before touching the cell.
pub(super) struct Resolved {
    pub(super) cell: Arc<Cell>,
    pub(super) slot: MethodIndex,
    pub(super) point: Arc<dyn Waiter<CellState>>,
    pub(super) stats: Arc<StatShard>,
    pub(super) lane: Arc<FastLane>,
}

impl AspectModerator {
    /// Clones a method's coordination handles out of the registry.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this moderator.
    pub(super) fn resolve(&self, method: &MethodHandle) -> Resolved {
        let registry = self.registry.read();
        registry.check(method);
        let entry = &registry.entries[method.index.as_usize()];
        Resolved {
            cell: Arc::clone(&entry.cell),
            slot: entry.slot,
            point: Arc::clone(&entry.point),
            stats: Arc::clone(&entry.stats),
            lane: Arc::clone(&entry.lane),
        }
    }

    /// Declares a participating method; idempotent.
    pub fn declare_method(&self, id: MethodId) -> MethodHandle {
        let mut registry = self.registry.write();
        if let Some(&ix) = registry.by_id.get(&id) {
            return MethodHandle {
                index: MethodIndex(ix),
                id,
            };
        }
        let cell = match self.coordination {
            Coordination::Sharded => Cell::new(),
            Coordination::GlobalLock => {
                if registry.shared_cell.is_none() {
                    registry.shared_cell = Some(Cell::new());
                }
                Arc::clone(registry.shared_cell.as_ref().expect("just seeded"))
            }
        };
        let slot = {
            let mut state = cell.state.lock();
            let slot = state.bank.declare(id.clone());
            if state.wakes.len() < state.bank.method_count() {
                // The default broadcast wiring keeps the new method's
                // fast lane closed (`FastLane::new` starts closed): a
                // method whose completion may wake other queues cannot
                // skip its post-activation notify. `wire_wakes(m, &[])`
                // plus an all-capable chain opens it.
                state.wakes.push(WakeTargets::All);
                state.queues.push(TicketQueue::new(self.grant_batching));
                state.faults.push(HashMap::new());
                state.parked.push(0);
            }
            slot
        };
        let ix = registry.entries.len();
        registry.by_id.insert(id.clone(), ix);
        registry.entries.push(MethodEntry {
            id: id.clone(),
            cell,
            slot,
            point: self.engine.waiter(),
            stats: Arc::new(StatShard::default()),
            lane: Arc::new(FastLane::new()),
        });
        MethodHandle {
            index: MethodIndex(ix),
            id,
        }
    }

    /// Looks up the handle of an already-declared method.
    pub fn method(&self, id: &MethodId) -> Option<MethodHandle> {
        let registry = self.registry.read();
        registry.by_id.get(id).map(|&ix| MethodHandle {
            index: MethodIndex(ix),
            id: id.clone(),
        })
    }

    /// Declared method identifiers, in declaration order.
    pub fn methods(&self) -> Vec<MethodId> {
        self.registry
            .read()
            .entries
            .iter()
            .map(|e| e.id.clone())
            .collect()
    }

    /// Stores an aspect in the (method, concern) cell — the paper's
    /// `registerAspect`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::DuplicateConcern`] if the cell is occupied.
    pub fn register(
        &self,
        method: &MethodHandle,
        concern: Concern,
        aspect: Box<dyn Aspect>,
    ) -> Result<(), RegistrationError> {
        let r = self.resolve(method);
        {
            let mut state = r.cell.state.lock();
            state.bank.register(r.slot, concern.clone(), aspect)?;
            refresh_lane(&state, &r.lane, r.slot);
        }
        self.emit(0, &method.id, Some(concern), EventKind::AspectRegistered);
        Ok(())
    }

    /// Asks `factory` to create the aspect for (method, concern) and
    /// registers it — the paper's initialization idiom
    /// `moderator.registerAspect(open, SYNC, factory.create(open, SYNC))`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::FactoryRefused`] if the factory returns no
    /// aspect, or [`RegistrationError::DuplicateConcern`] if the cell is
    /// occupied.
    pub fn register_from(
        &self,
        factory: &dyn AspectFactory,
        method: &MethodHandle,
        concern: Concern,
    ) -> Result<(), RegistrationError> {
        let aspect = factory.create(&method.id, &concern).ok_or_else(|| {
            RegistrationError::FactoryRefused {
                method: method.id.clone(),
                concern: concern.clone(),
            }
        })?;
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectCreated,
        );
        self.register(method, concern, aspect)
    }

    /// Removes and returns the aspect in the (method, concern) cell,
    /// waking all of the method's waiters so they re-evaluate against the
    /// shortened chain.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn deregister(
        &self,
        method: &MethodHandle,
        concern: &Concern,
    ) -> Result<Box<dyn Aspect>, RegistrationError> {
        let r = self.resolve(method);
        let aspect = {
            let mut state = r.cell.state.lock();
            let aspect = state.bank.deregister(r.slot, concern)?;
            // Notify while holding the cell lock: a waiter either is
            // already parked (woken now) or still holds the lock and
            // will re-evaluate against the shortened chain anyway.
            // Under Fifo every ticketed waiter must get a turn against
            // the shortened chain, in order — a full sweep.
            if self.fairness == FairnessPolicy::Fifo {
                wake_queue(&mut state.queues[r.slot.as_usize()], WakeMode::NotifyAll);
            }
            r.point.wake_all();
            refresh_lane(&state, &r.lane, r.slot);
            aspect
        };
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectDeregistered,
        );
        Ok(aspect)
    }

    /// The concerns registered for a method, in registration order.
    pub fn concerns(&self, method: &MethodHandle) -> Vec<Concern> {
        let r = self.resolve(method);
        let state = r.cell.state.lock();
        state.bank.concerns(r.slot)
    }

    /// Restricts which wait queues `method`'s post-activation notifies
    /// (default: all queues). The paper wires `open` → `assign`'s queue
    /// and vice versa.
    ///
    /// The method's *own* queue is always signalled after its
    /// postactions run, independent of this wiring (module docs:
    /// self-wake) — wiring governs cross-method notifications only.
    pub fn wire_wakes(&self, method: &MethodHandle, targets: &[MethodHandle]) {
        {
            let registry = self.registry.read();
            registry.check(method);
            for t in targets {
                registry.check(t);
            }
        }
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        state.wakes[r.slot.as_usize()] =
            WakeTargets::Wired(targets.iter().map(|t| t.index).collect());
        refresh_lane(&state, &r.lane, r.slot);
    }

    /// Runs `f` with mutable access to the aspect registered under
    /// (method, concern), under the method's cell lock. Administrative
    /// escape hatch for inspecting or adjusting aspect state.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn with_aspect<R>(
        &self,
        method: &MethodHandle,
        concern: &Concern,
        f: impl FnOnce(&mut dyn Aspect) -> R,
    ) -> Result<R, RegistrationError> {
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        let out = match state.bank.aspect_mut(r.slot, concern) {
            Some(aspect) => Ok(f(aspect)),
            None => Err(RegistrationError::UnknownConcern {
                method: method.id.clone(),
                concern: concern.clone(),
            }),
        };
        if out.is_ok() {
            // `f` may have changed the aspect's declared contract.
            state.bank.recompute_fast_eligibility(r.slot);
            refresh_lane(&state, &r.lane, r.slot);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::{FastAdmit, FastLane};

    #[test]
    fn lane_starts_closed_and_admits_only_while_open() {
        let lane = FastLane::new();
        assert_eq!(lane.snapshot(), (false, 0, 0));
        assert!(matches!(lane.try_admit(), FastAdmit::Closed));
        lane.open();
        assert!(matches!(lane.try_admit(), FastAdmit::Admitted));
        assert!(matches!(lane.try_admit(), FastAdmit::Admitted));
        assert_eq!(lane.in_flight(), 2);
        lane.release();
        lane.release();
        assert_eq!(lane.snapshot(), (true, 0, 0));
    }

    #[test]
    fn close_bumps_the_epoch_only_on_a_real_transition() {
        let lane = FastLane::new();
        lane.close(); // already closed: no transition, no bump
        assert_eq!(lane.snapshot(), (false, 0, 0));
        lane.open();
        lane.open(); // idempotent
        lane.close();
        assert_eq!(lane.snapshot(), (false, 0, 1));
        lane.open();
        lane.close();
        assert_eq!(lane.snapshot(), (false, 0, 2), "one bump per open→closed");
    }

    #[test]
    fn release_is_valid_after_the_lane_closes() {
        let lane = FastLane::new();
        lane.open();
        assert!(matches!(lane.try_admit(), FastAdmit::Admitted));
        lane.close();
        assert_eq!(lane.snapshot(), (false, 1, 1));
        lane.release(); // touches only the ACTIVE field
        assert_eq!(lane.snapshot(), (false, 0, 1));
        assert!(matches!(lane.try_admit(), FastAdmit::Closed));
    }
}

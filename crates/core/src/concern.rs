//! Identifiers for the two dimensions of the aspect bank.
//!
//! The paper composes a system along two axes: *participating methods*
//! (`open`, `assign`, ...) and *concerns* (`SYNC`, `AUTHENTICATE`, ...).
//! [`MethodId`] and [`Concern`] are cheap-to-clone, hashable newtypes over
//! interned strings so misuse (passing a concern where a method is
//! expected) is a compile error rather than the stringly-typed lookups of
//! the paper's Java code.

use std::fmt;
use std::sync::Arc;

/// Name of a participating method on a functional component.
///
/// ```
/// use amf_core::MethodId;
///
/// let open = MethodId::new("open");
/// assert_eq!(open.as_str(), "open");
/// assert_eq!(open, MethodId::from("open"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(Arc<str>);

impl MethodId {
    /// Creates a method identifier from any string-like value.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Self(name.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MethodId({})", self.0)
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MethodId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for MethodId {
    fn from(s: String) -> Self {
        Self::new(s)
    }
}

impl AsRef<str> for MethodId {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Name of a crosscutting concern (the second dimension of the aspect
/// bank).
///
/// The paper's examples use `SYNC` and `AUTHENTICATE`; constructors for
/// the concern vocabulary it enumerates (synchronization, scheduling,
/// security, audits, ...) are provided, and arbitrary concerns can be
/// created with [`Concern::new`].
///
/// ```
/// use amf_core::Concern;
///
/// let sync = Concern::synchronization();
/// assert_eq!(sync.as_str(), "sync");
/// let custom = Concern::new("load-balancing");
/// assert_ne!(sync, custom);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Concern(Arc<str>);

impl Concern {
    /// Creates a concern from any string-like value.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Self(name.into())
    }

    /// The concern name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Synchronization constraints (the paper's `SYNC`).
    pub fn synchronization() -> Self {
        Self::new("sync")
    }

    /// Authentication (the paper's `AUTHENTICATE`).
    pub fn authentication() -> Self {
        Self::new("authenticate")
    }

    /// Role-based authorization.
    pub fn authorization() -> Self {
        Self::new("authorize")
    }

    /// Request scheduling / ordering.
    pub fn scheduling() -> Self {
        Self::new("scheduling")
    }

    /// Audit trails ("audits" in the paper's concern list).
    pub fn audit() -> Self {
        Self::new("audit")
    }

    /// Performance metrics collection.
    pub fn metrics() -> Self {
        Self::new("metrics")
    }

    /// Per-principal quotas.
    pub fn quota() -> Self {
        Self::new("quota")
    }

    /// Fault tolerance (circuit breaking, failure isolation).
    pub fn fault_tolerance() -> Self {
        Self::new("fault-tolerance")
    }

    /// Throughput throttling / rate limiting.
    pub fn throttling() -> Self {
        Self::new("throttling")
    }
}

impl fmt::Debug for Concern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Concern({})", self.0)
    }
}

impl fmt::Display for Concern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Concern {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for Concern {
    fn from(s: String) -> Self {
        Self::new(s)
    }
}

impl AsRef<str> for Concern {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn method_id_equality_is_by_name() {
        assert_eq!(MethodId::new("open"), MethodId::from(String::from("open")));
        assert_ne!(MethodId::new("open"), MethodId::new("assign"));
    }

    #[test]
    fn method_id_display_and_debug() {
        let m = MethodId::new("open");
        assert_eq!(m.to_string(), "open");
        assert_eq!(format!("{m:?}"), "MethodId(open)");
    }

    #[test]
    fn concern_vocabulary_is_distinct() {
        let all = [
            Concern::synchronization(),
            Concern::authentication(),
            Concern::authorization(),
            Concern::scheduling(),
            Concern::audit(),
            Concern::metrics(),
            Concern::quota(),
            Concern::fault_tolerance(),
            Concern::throttling(),
        ];
        let set: HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn concerns_hash_and_order() {
        let mut v = [Concern::new("b"), Concern::new("a")];
        v.sort();
        assert_eq!(v[0].as_str(), "a");
    }

    #[test]
    fn as_ref_str() {
        fn takes_str(s: impl AsRef<str>) -> usize {
            s.as_ref().len()
        }
        assert_eq!(takes_str(MethodId::new("open")), 4);
        assert_eq!(takes_str(Concern::synchronization()), 4);
    }

    #[test]
    fn clone_is_cheap_pointer_copy() {
        let c = Concern::new("x");
        let d = c.clone();
        assert!(Arc::ptr_eq(&c.0, &d.0));
    }
}

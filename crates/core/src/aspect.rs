//! The aspect abstraction: first-class objects capturing one concern of
//! one participating method.
//!
//! Mirrors the paper's `AspectIF` (`precondition()` / `postaction()`),
//! with one extension: [`Aspect::on_release`], a rollback hook invoked
//! when a *later* aspect in the chain blocks or aborts after this one
//! already resumed. The paper's single-aspect examples never hit that
//! case; composed chains do (see DESIGN.md, experiment E7).

use std::fmt;

use crate::context::InvocationContext;
use crate::verdict::Verdict;

/// The capability contract an aspect declares for fast-lane admission
/// (Design-by-Contract applied to composition: the framework cannot
/// check a closure for purity, so the aspect *declares* it and the
/// moderator holds it to the claim).
///
/// An invocation may skip the locked chain evaluation entirely — a
/// single-CAS admit on the method's fast lane — only when **every**
/// aspect of the method declares all three capabilities:
///
/// * [`pure`](Self::pure) — the precondition and postaction read and
///   write no shared state; skipping them is unobservable.
/// * [`veto_free`](Self::veto_free) — the precondition never returns
///   [`Verdict::Block`] or [`Verdict::Abort`], so admission cannot be
///   refused.
/// * [`no_park`](Self::no_park) — no callback blocks the calling
///   thread (sleeps, I/O, lock acquisition).
///
/// The default is *no* capabilities: existing aspects are conservative
/// and never fast-lane eligible. A contained panic in any callback of
/// a row **falsifies** that row's declared contract (a pure function
/// does not panic) and revokes its eligibility until the row is woven
/// again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AspectCapabilities {
    /// Callbacks have no moderator-visible side effects.
    pub pure: bool,
    /// The precondition always returns [`Verdict::Resume`].
    pub veto_free: bool,
    /// No callback blocks the calling thread.
    pub no_park: bool,
}

impl AspectCapabilities {
    /// No declared capabilities — the conservative default; never
    /// fast-lane eligible.
    pub const fn none() -> Self {
        Self {
            pure: false,
            veto_free: false,
            no_park: false,
        }
    }

    /// All three capabilities: `pure`, `veto_free` and `no_park`.
    pub const fn all() -> Self {
        Self {
            pure: true,
            veto_free: true,
            no_park: true,
        }
    }

    /// Whether this contract admits the fast lane (all three
    /// capabilities declared).
    pub const fn fast_path_eligible(self) -> bool {
        self.pure && self.veto_free && self.no_park
    }
}

/// Why a previously resumed aspect is being released before the method
/// ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReleaseCause {
    /// A later aspect in the chain returned [`Verdict::Block`]; the whole
    /// chain will be re-evaluated after a notification.
    Blocked,
    /// A later aspect in the chain returned [`Verdict::Abort`]; the
    /// activation failed.
    Aborted,
}

/// One concern of one participating method, as a first-class object.
///
/// The moderator calls [`Aspect::precondition`] during pre-activation and
/// [`Aspect::postaction`] during post-activation, always under the
/// moderator's lock — so implementations can use plain fields (like the
/// paper's `ActiveOpen` counters) without any internal synchronization.
///
/// ```
/// use amf_core::{Aspect, InvocationContext, Verdict};
///
/// /// At most `limit` activations may ever proceed.
/// #[derive(Debug)]
/// struct Budget { left: u32 }
///
/// impl Aspect for Budget {
///     fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
///         if self.left == 0 {
///             return Verdict::abort("budget exhausted");
///         }
///         self.left -= 1;
///         Verdict::Resume
///     }
///     fn postaction(&mut self, _ctx: &mut InvocationContext) {}
/// }
/// ```
pub trait Aspect: Send {
    /// Evaluates this aspect's activation constraint.
    ///
    /// Returning [`Verdict::Resume`] may *reserve* state (increment
    /// counters, take a slot); if a later aspect then blocks or aborts,
    /// the moderator undoes the reservation via [`Aspect::on_release`].
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict;

    /// Runs after the functional method completed; updates the aspect's
    /// state and typically triggers notifications (handled by the
    /// moderator's wake wiring).
    fn postaction(&mut self, ctx: &mut InvocationContext);

    /// Undoes a successful [`Aspect::precondition`] when a later aspect
    /// in the chain blocked or aborted. Default: no-op, which is correct
    /// for aspects whose precondition is read-only (authentication,
    /// quota *checks*, ...).
    fn on_release(&mut self, ctx: &InvocationContext, cause: ReleaseCause) {
        let _ = (ctx, cause);
    }

    /// Called when a *blocked* caller gives up (timed out) and will never
    /// re-evaluate this method's chain for this invocation. Aspects that
    /// remember waiters across `Block` verdicts (admission queues) clean
    /// up their enrollment here. Default: no-op.
    fn on_cancel(&mut self, ctx: &InvocationContext) {
        let _ = ctx;
    }

    /// Short human-readable description used by traces and `Debug` output.
    fn describe(&self) -> &str {
        "aspect"
    }

    /// The capability contract this aspect declares for fast-lane
    /// admission. Default: [`AspectCapabilities::none`] — conservative,
    /// never eligible. See [`AspectCapabilities`].
    fn capabilities(&self) -> AspectCapabilities {
        AspectCapabilities::none()
    }
}

impl fmt::Debug for dyn Aspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Aspect({})", self.describe())
    }
}

/// An aspect that always resumes and does nothing — the unit of
/// composition, used to measure pure framework overhead (experiment E1).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopAspect;

impl Aspect for NoopAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        Verdict::Resume
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {}

    fn describe(&self) -> &str {
        "noop"
    }

    fn capabilities(&self) -> AspectCapabilities {
        // Trivially holds every contract: both phases are empty.
        AspectCapabilities::all()
    }
}

type PreFn = Box<dyn FnMut(&mut InvocationContext) -> Verdict + Send>;
type PostFn = Box<dyn FnMut(&mut InvocationContext) + Send>;
type ReleaseFn = Box<dyn FnMut(&InvocationContext, ReleaseCause) + Send>;
type CancelFn = Box<dyn FnMut(&InvocationContext) + Send>;

/// Closure-backed [`Aspect`] for one-off concerns, tests and examples.
///
/// ```
/// use amf_core::{Aspect, FnAspect, InvocationContext, MethodId, Verdict};
///
/// let mut calls = 0_u32;
/// let mut aspect = FnAspect::new("trace")
///     .on_precondition(move |_ctx| Verdict::Resume)
///     .on_postaction(|_ctx| { /* flush trace */ });
/// let mut ctx = InvocationContext::new(MethodId::new("m"), 0);
/// assert!(aspect.precondition(&mut ctx).is_resume());
/// # let _ = calls; calls += 1;
/// ```
pub struct FnAspect {
    name: String,
    pre: Option<PreFn>,
    post: Option<PostFn>,
    release: Option<ReleaseFn>,
    cancel: Option<CancelFn>,
    caps: AspectCapabilities,
}

impl fmt::Debug for FnAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnAspect({})", self.name)
    }
}

impl FnAspect {
    /// Creates a named aspect whose phases default to
    /// resume-and-do-nothing.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            pre: None,
            post: None,
            release: None,
            cancel: None,
            caps: AspectCapabilities::none(),
        }
    }

    /// Declares the aspect's capability contract (the framework cannot
    /// verify a closure, so the caller asserts it; a contained panic in
    /// any phase later falsifies the claim and revokes eligibility).
    #[must_use]
    pub fn declare_capabilities(mut self, caps: AspectCapabilities) -> Self {
        self.caps = caps;
        self
    }

    /// Sets the precondition closure.
    #[must_use]
    pub fn on_precondition(
        mut self,
        f: impl FnMut(&mut InvocationContext) -> Verdict + Send + 'static,
    ) -> Self {
        self.pre = Some(Box::new(f));
        self
    }

    /// Sets the postaction closure.
    #[must_use]
    pub fn on_postaction(mut self, f: impl FnMut(&mut InvocationContext) + Send + 'static) -> Self {
        self.post = Some(Box::new(f));
        self
    }

    /// Sets the release (rollback) closure.
    #[must_use]
    pub fn on_release_do(
        mut self,
        f: impl FnMut(&InvocationContext, ReleaseCause) + Send + 'static,
    ) -> Self {
        self.release = Some(Box::new(f));
        self
    }

    /// Sets the cancel (timed-out waiter) closure.
    #[must_use]
    pub fn on_cancel_do(mut self, f: impl FnMut(&InvocationContext) + Send + 'static) -> Self {
        self.cancel = Some(Box::new(f));
        self
    }
}

impl Aspect for FnAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        match &mut self.pre {
            Some(f) => f(ctx),
            None => Verdict::Resume,
        }
    }

    fn postaction(&mut self, ctx: &mut InvocationContext) {
        if let Some(f) = &mut self.post {
            f(ctx);
        }
    }

    fn on_release(&mut self, ctx: &InvocationContext, cause: ReleaseCause) {
        if let Some(f) = &mut self.release {
            f(ctx, cause);
        }
    }

    fn on_cancel(&mut self, ctx: &InvocationContext) {
        if let Some(f) = &mut self.cancel {
            f(ctx);
        }
    }

    fn describe(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> AspectCapabilities {
        self.caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concern::MethodId;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn ctx() -> InvocationContext {
        InvocationContext::new(MethodId::new("m"), 0)
    }

    #[test]
    fn noop_always_resumes() {
        let mut a = NoopAspect;
        let mut c = ctx();
        assert!(a.precondition(&mut c).is_resume());
        a.postaction(&mut c);
        a.on_release(&c, ReleaseCause::Blocked);
        assert_eq!(a.describe(), "noop");
    }

    #[test]
    fn fn_aspect_defaults_resume() {
        let mut a = FnAspect::new("empty");
        let mut c = ctx();
        assert!(a.precondition(&mut c).is_resume());
        a.postaction(&mut c); // no-op, must not panic
    }

    #[test]
    fn fn_aspect_runs_closures() {
        let pre_calls = Arc::new(AtomicU32::new(0));
        let post_calls = Arc::new(AtomicU32::new(0));
        let release_calls = Arc::new(AtomicU32::new(0));
        let (p1, p2, p3) = (
            Arc::clone(&pre_calls),
            Arc::clone(&post_calls),
            Arc::clone(&release_calls),
        );
        let mut a = FnAspect::new("counted")
            .on_precondition(move |_| {
                p1.fetch_add(1, Ordering::SeqCst);
                Verdict::Resume
            })
            .on_postaction(move |_| {
                p2.fetch_add(1, Ordering::SeqCst);
            })
            .on_release_do(move |_, _| {
                p3.fetch_add(1, Ordering::SeqCst);
            });
        let mut c = ctx();
        a.precondition(&mut c);
        a.postaction(&mut c);
        a.on_release(&c, ReleaseCause::Aborted);
        assert_eq!(pre_calls.load(Ordering::SeqCst), 1);
        assert_eq!(post_calls.load(Ordering::SeqCst), 1);
        assert_eq!(release_calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fn_aspect_can_mutate_captured_state() {
        let mut a = FnAspect::new("stateful").on_precondition({
            let mut remaining = 2;
            move |_| {
                if remaining == 0 {
                    Verdict::abort("done")
                } else {
                    remaining -= 1;
                    Verdict::Resume
                }
            }
        });
        let mut c = ctx();
        assert!(a.precondition(&mut c).is_resume());
        assert!(a.precondition(&mut c).is_resume());
        assert!(a.precondition(&mut c).is_abort());
    }

    #[test]
    fn dyn_aspect_debug_uses_describe() {
        let a: Box<dyn Aspect> = Box::new(FnAspect::new("pretty"));
        assert_eq!(format!("{a:?}"), "Aspect(pretty)");
    }

    #[test]
    fn capabilities_default_conservative() {
        assert!(!AspectCapabilities::none().fast_path_eligible());
        assert!(AspectCapabilities::all().fast_path_eligible());
        assert!(!AspectCapabilities {
            pure: true,
            veto_free: true,
            no_park: false,
        }
        .fast_path_eligible());
        // NoopAspect trivially honors every contract; a bare closure
        // aspect declares nothing until told otherwise.
        assert!(NoopAspect.capabilities().fast_path_eligible());
        assert!(!FnAspect::new("f").capabilities().fast_path_eligible());
        assert!(FnAspect::new("f")
            .declare_capabilities(AspectCapabilities::all())
            .capabilities()
            .fast_path_eligible());
    }

    #[test]
    fn aspects_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NoopAspect>();
        assert_send::<FnAspect>();
        assert_send::<Box<dyn Aspect>>();
    }
}

//! Error types for the framework's fallible operations.
//!
//! The paper's Java code signals failure by returning `null` from the
//! factory, printing `"ABORT"`, or throwing unchecked exceptions; here
//! every failure mode is a typed, `std::error::Error`-implementing value.

use std::error::Error;
use std::fmt;

use crate::concern::{Concern, MethodId};
use crate::verdict::AbortReason;

/// A guarded activation failed: some aspect vetoed it, or it timed out
/// waiting to be resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortError {
    /// An aspect's precondition returned [`Verdict::Abort`](crate::Verdict::Abort).
    Aspect {
        /// The participating method whose activation failed.
        method: MethodId,
        /// The concern whose aspect aborted.
        concern: Concern,
        /// The aspect's stated reason.
        reason: AbortReason,
    },
    /// An aspect callback panicked and the moderator contained the
    /// unwind (under `PanicPolicy::AbortInvocation` or `Quarantine`);
    /// the invocation is aborted with the chain fully rolled back.
    AspectPanicked {
        /// The participating method whose activation failed.
        method: MethodId,
        /// The concern whose aspect panicked.
        concern: Concern,
        /// The panic payload, rendered as a string when possible.
        message: String,
    },
    /// The caller's wait for a `Resume` exceeded its timeout.
    Timeout {
        /// The participating method whose activation timed out.
        method: MethodId,
    },
}

impl AbortError {
    /// The method whose activation failed.
    pub fn method(&self) -> &MethodId {
        match self {
            AbortError::Aspect { method, .. }
            | AbortError::AspectPanicked { method, .. }
            | AbortError::Timeout { method } => method,
        }
    }

    /// The concern that aborted or panicked, if an aspect (rather than a
    /// timeout) was responsible.
    pub fn concern(&self) -> Option<&Concern> {
        match self {
            AbortError::Aspect { concern, .. } | AbortError::AspectPanicked { concern, .. } => {
                Some(concern)
            }
            AbortError::Timeout { .. } => None,
        }
    }

    /// Whether this abort came from a timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self, AbortError::Timeout { .. })
    }

    /// Whether this abort came from a contained aspect panic.
    pub fn is_panic(&self) -> bool {
        matches!(self, AbortError::AspectPanicked { .. })
    }
}

impl fmt::Display for AbortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortError::Aspect {
                method,
                concern,
                reason,
            } => write!(
                f,
                "activation of `{method}` aborted by concern `{concern}`: {reason}"
            ),
            AbortError::AspectPanicked {
                method,
                concern,
                message,
            } => write!(
                f,
                "activation of `{method}` aborted: aspect for concern `{concern}` panicked: {message}"
            ),
            AbortError::Timeout { method } => {
                write!(f, "activation of `{method}` timed out waiting to resume")
            }
        }
    }
}

impl Error for AbortError {}

/// Registering or resolving an aspect failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistrationError {
    /// The (method, concern) cell of the aspect bank is already occupied.
    DuplicateConcern {
        /// The occupied method.
        method: MethodId,
        /// The occupied concern.
        concern: Concern,
    },
    /// The method was never declared on this moderator.
    UnknownMethod {
        /// The undeclared method.
        method: MethodId,
    },
    /// No aspect is registered under (method, concern).
    UnknownConcern {
        /// The method looked up.
        method: MethodId,
        /// The missing concern.
        concern: Concern,
    },
    /// The factory declined to create an aspect for (method, concern) —
    /// the typed version of the paper's factory returning `null`.
    FactoryRefused {
        /// The requested method.
        method: MethodId,
        /// The requested concern.
        concern: Concern,
    },
}

impl fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistrationError::DuplicateConcern { method, concern } => write!(
                f,
                "aspect bank cell (`{method}`, `{concern}`) is already occupied"
            ),
            RegistrationError::UnknownMethod { method } => {
                write!(f, "method `{method}` was never declared on this moderator")
            }
            RegistrationError::UnknownConcern { method, concern } => {
                write!(f, "no aspect registered under (`{method}`, `{concern}`)")
            }
            RegistrationError::FactoryRefused { method, concern } => write!(
                f,
                "factory declined to create an aspect for (`{method}`, `{concern}`)"
            ),
        }
    }
}

impl Error for RegistrationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_error_accessors() {
        let e = AbortError::Aspect {
            method: MethodId::new("open"),
            concern: Concern::authentication(),
            reason: AbortReason::new("bad token"),
        };
        assert_eq!(e.method().as_str(), "open");
        assert_eq!(e.concern().unwrap().as_str(), "authenticate");
        assert!(!e.is_timeout());
        assert_eq!(
            e.to_string(),
            "activation of `open` aborted by concern `authenticate`: bad token"
        );
    }

    #[test]
    fn panic_error_accessors() {
        let e = AbortError::AspectPanicked {
            method: MethodId::new("open"),
            concern: Concern::metrics(),
            message: "index out of bounds".to_string(),
        };
        assert_eq!(e.method().as_str(), "open");
        assert_eq!(e.concern(), Some(&Concern::metrics()));
        assert!(e.is_panic());
        assert!(!e.is_timeout());
        assert!(e.to_string().contains("panicked: index out of bounds"));
    }

    #[test]
    fn timeout_error() {
        let e = AbortError::Timeout {
            method: MethodId::new("assign"),
        };
        assert!(e.is_timeout());
        assert!(e.concern().is_none());
        assert!(e.to_string().contains("timed out"));
    }

    #[test]
    fn registration_error_messages() {
        let m = MethodId::new("open");
        let c = Concern::synchronization();
        let cases: Vec<(RegistrationError, &str)> = vec![
            (
                RegistrationError::DuplicateConcern {
                    method: m.clone(),
                    concern: c.clone(),
                },
                "already occupied",
            ),
            (
                RegistrationError::UnknownMethod { method: m.clone() },
                "never declared",
            ),
            (
                RegistrationError::UnknownConcern {
                    method: m.clone(),
                    concern: c.clone(),
                },
                "no aspect registered",
            ),
            (
                RegistrationError::FactoryRefused {
                    method: m,
                    concern: c,
                },
                "factory declined",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should contain {needle}"
            );
        }
    }

    #[test]
    fn errors_are_std_errors_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AbortError>();
        assert_err::<RegistrationError>();
    }
}

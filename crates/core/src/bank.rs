//! The aspect bank: a two-dimensional registry *participating methods ×
//! concerns* holding aspect objects.
//!
//! The paper stores aspects in a two-dimensional array inside the
//! moderator (`aspectArray[OPEN][SYNC] = aspectObject`) and calls the
//! resulting structure an *aspect bank* — "a hierarchical two-dimensional
//! composition of the system in terms of aspects and components".
//! [`AspectBank`] is that structure with dynamic dimensions: methods get
//! dense indices as they are declared, and each method row keeps its
//! aspects in registration order (the order the moderator composes them
//! in).
//!
//! Since the moderator's coordination state was sharded into per-method
//! cells, the moderator no longer holds one bank for the whole system:
//! each coordination cell owns a bank holding the rows it coordinates
//! (one row per cell under [`Coordination::Sharded`], every row in the
//! single shared cell under [`Coordination::GlobalLock`]). A method's
//! chain is therefore guarded by its cell's lock alone, which is what
//! lets disjoint methods evaluate their chains concurrently. The bank
//! itself stays single-threaded and lock-free; whoever owns it provides
//! the exclusion, exactly as the moderator's cells do.
//!
//! [`Coordination::Sharded`]: crate::Coordination::Sharded
//! [`Coordination::GlobalLock`]: crate::Coordination::GlobalLock

use std::collections::HashMap;
use std::fmt;

use crate::aspect::Aspect;
use crate::concern::{Concern, MethodId};
use crate::error::RegistrationError;

/// Dense index assigned to a declared method; valid only for the bank
/// that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodIndex(pub(crate) usize);

impl MethodIndex {
    /// The raw index value.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

pub(crate) struct MethodRow {
    pub(crate) id: MethodId,
    /// (concern, aspect) pairs in registration order.
    pub(crate) aspects: Vec<(Concern, Box<dyn Aspect>)>,
    /// Cached conjunction of the row's declared capability contracts
    /// ([`Aspect::capabilities`]): true iff every aspect declares
    /// `pure + veto_free + no_park`. Recomputed on every weave/unweave
    /// and *revoked* (set false without recomputation) when a contained
    /// panic falsifies the contract — the hot path must read one flag,
    /// never walk the chain.
    pub(crate) fast_eligible: bool,
}

impl MethodRow {
    fn recompute_fast_eligibility(&mut self) {
        self.fast_eligible = self
            .aspects
            .iter()
            .all(|(_, a)| a.capabilities().fast_path_eligible());
    }
}

/// Two-dimensional registry of aspects, indexed by (method, concern).
///
/// Usually owned by an [`AspectModerator`](crate::AspectModerator); usable
/// standalone when building custom coordination machinery.
///
/// ```
/// use amf_core::{AspectBank, Concern, MethodId, NoopAspect};
///
/// let mut bank = AspectBank::new();
/// let open = bank.declare(MethodId::new("open"));
/// bank.register(open, Concern::synchronization(), Box::new(NoopAspect)).unwrap();
/// assert!(bank.contains(open, &Concern::synchronization()));
/// ```
#[derive(Default)]
pub struct AspectBank {
    rows: Vec<MethodRow>,
    by_id: HashMap<MethodId, usize>,
}

impl fmt::Debug for AspectBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for row in &self.rows {
            let concerns: Vec<&str> = row.aspects.iter().map(|(c, _)| c.as_str()).collect();
            map.entry(&row.id.as_str(), &concerns);
        }
        map.finish()
    }
}

impl AspectBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a participating method, returning its dense index.
    /// Idempotent: re-declaring an existing method returns the original
    /// index.
    pub fn declare(&mut self, id: MethodId) -> MethodIndex {
        if let Some(&ix) = self.by_id.get(&id) {
            return MethodIndex(ix);
        }
        let ix = self.rows.len();
        self.by_id.insert(id.clone(), ix);
        self.rows.push(MethodRow {
            id,
            aspects: Vec::new(),
            // An empty chain vacuously satisfies every contract.
            fast_eligible: true,
        });
        MethodIndex(ix)
    }

    /// Looks up the index of a declared method.
    pub fn index_of(&self, id: &MethodId) -> Option<MethodIndex> {
        self.by_id.get(id).copied().map(MethodIndex)
    }

    /// The method identifier at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` did not come from this bank.
    pub fn method_id(&self, index: MethodIndex) -> &MethodId {
        &self.rows[index.0].id
    }

    /// Number of declared methods.
    pub fn method_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterates over declared method identifiers in declaration order.
    pub fn methods(&self) -> impl Iterator<Item = &MethodId> {
        self.rows.iter().map(|r| &r.id)
    }

    /// Stores `aspect` in the (method, concern) cell — the paper's
    /// `registerAspect`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::DuplicateConcern`] if the cell is occupied;
    /// use [`AspectBank::replace`] to overwrite.
    pub fn register(
        &mut self,
        method: MethodIndex,
        concern: Concern,
        aspect: Box<dyn Aspect>,
    ) -> Result<(), RegistrationError> {
        let row = &mut self.rows[method.0];
        if row.aspects.iter().any(|(c, _)| *c == concern) {
            return Err(RegistrationError::DuplicateConcern {
                method: row.id.clone(),
                concern,
            });
        }
        row.aspects.push((concern, aspect));
        row.recompute_fast_eligibility();
        Ok(())
    }

    /// Overwrites the (method, concern) cell, returning the previous
    /// occupant if any. Keeps the cell's original position in the
    /// composition order when replacing.
    pub fn replace(
        &mut self,
        method: MethodIndex,
        concern: Concern,
        aspect: Box<dyn Aspect>,
    ) -> Option<Box<dyn Aspect>> {
        let row = &mut self.rows[method.0];
        if let Some(slot) = row.aspects.iter_mut().find(|(c, _)| *c == concern) {
            let old = std::mem::replace(&mut slot.1, aspect);
            row.recompute_fast_eligibility();
            return Some(old);
        }
        row.aspects.push((concern, aspect));
        row.recompute_fast_eligibility();
        None
    }

    /// Removes and returns the aspect in the (method, concern) cell.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn deregister(
        &mut self,
        method: MethodIndex,
        concern: &Concern,
    ) -> Result<Box<dyn Aspect>, RegistrationError> {
        let row = &mut self.rows[method.0];
        match row.aspects.iter().position(|(c, _)| c == concern) {
            Some(pos) => {
                let aspect = row.aspects.remove(pos).1;
                row.recompute_fast_eligibility();
                Ok(aspect)
            }
            None => Err(RegistrationError::UnknownConcern {
                method: row.id.clone(),
                concern: concern.clone(),
            }),
        }
    }

    /// Whether the (method, concern) cell is occupied.
    pub fn contains(&self, method: MethodIndex, concern: &Concern) -> bool {
        self.rows[method.0]
            .aspects
            .iter()
            .any(|(c, _)| c == concern)
    }

    /// The concerns registered for `method`, in registration order.
    pub fn concerns(&self, method: MethodIndex) -> Vec<Concern> {
        self.rows[method.0]
            .aspects
            .iter()
            .map(|(c, _)| c.clone())
            .collect()
    }

    /// Number of aspects registered for `method`.
    pub fn concern_count(&self, method: MethodIndex) -> usize {
        self.rows[method.0].aspects.len()
    }

    /// Total number of occupied cells across all methods.
    pub fn aspect_count(&self) -> usize {
        self.rows.iter().map(|r| r.aspects.len()).sum()
    }

    /// Whether `method`'s cached capability conjunction currently admits
    /// the fast lane: every registered aspect declares
    /// `pure + veto_free + no_park` (see
    /// [`AspectCapabilities`](crate::AspectCapabilities)) and no
    /// contained panic has revoked the contract since the last weave.
    pub fn fast_path_eligible(&self, method: MethodIndex) -> bool {
        self.rows[method.0].fast_eligible
    }

    /// Recomputes `method`'s cached eligibility from its chain's current
    /// declarations — for callers that mutated aspect state out-of-band
    /// (e.g. via [`AspectBank::aspect_mut`]).
    pub(crate) fn recompute_fast_eligibility(&mut self, method: MethodIndex) {
        self.rows[method.0].recompute_fast_eligibility();
    }

    /// Mutable access to a method's composition chain, for the
    /// moderator's evaluation loop.
    pub(crate) fn row_mut(&mut self, method: MethodIndex) -> &mut MethodRow {
        &mut self.rows[method.0]
    }

    /// Mutable access to one aspect, for callers that need to inspect or
    /// adjust aspect state out-of-band (e.g. administrative tooling).
    pub fn aspect_mut(
        &mut self,
        method: MethodIndex,
        concern: &Concern,
    ) -> Option<&mut (dyn Aspect + 'static)> {
        self.rows[method.0]
            .aspects
            .iter_mut()
            .find(|(c, _)| c == concern)
            .map(|(_, a)| a.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::{FnAspect, NoopAspect};

    fn bank_with_open() -> (AspectBank, MethodIndex) {
        let mut b = AspectBank::new();
        let ix = b.declare(MethodId::new("open"));
        (b, ix)
    }

    #[test]
    fn declare_is_idempotent() {
        let mut b = AspectBank::new();
        let a = b.declare(MethodId::new("open"));
        let b2 = b.declare(MethodId::new("open"));
        assert_eq!(a, b2);
        assert_eq!(b.method_count(), 1);
    }

    #[test]
    fn declare_assigns_dense_indices() {
        let mut b = AspectBank::new();
        let open = b.declare(MethodId::new("open"));
        let assign = b.declare(MethodId::new("assign"));
        assert_eq!(open.as_usize(), 0);
        assert_eq!(assign.as_usize(), 1);
        assert_eq!(b.method_id(assign).as_str(), "assign");
        assert_eq!(b.index_of(&MethodId::new("open")), Some(open));
        assert_eq!(b.index_of(&MethodId::new("close")), None);
    }

    #[test]
    fn register_fills_cell() {
        let (mut b, open) = bank_with_open();
        b.register(open, Concern::synchronization(), Box::new(NoopAspect))
            .unwrap();
        assert!(b.contains(open, &Concern::synchronization()));
        assert!(!b.contains(open, &Concern::authentication()));
        assert_eq!(b.aspect_count(), 1);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let (mut b, open) = bank_with_open();
        b.register(open, Concern::synchronization(), Box::new(NoopAspect))
            .unwrap();
        let err = b
            .register(open, Concern::synchronization(), Box::new(NoopAspect))
            .unwrap_err();
        assert!(matches!(err, RegistrationError::DuplicateConcern { .. }));
    }

    #[test]
    fn replace_returns_previous() {
        let (mut b, open) = bank_with_open();
        assert!(b
            .replace(open, Concern::audit(), Box::new(FnAspect::new("v1")))
            .is_none());
        let old = b
            .replace(open, Concern::audit(), Box::new(FnAspect::new("v2")))
            .unwrap();
        assert_eq!(old.describe(), "v1");
        assert_eq!(b.concern_count(open), 1);
    }

    #[test]
    fn replace_preserves_composition_position() {
        let (mut b, open) = bank_with_open();
        b.register(open, Concern::synchronization(), Box::new(NoopAspect))
            .unwrap();
        b.register(open, Concern::audit(), Box::new(NoopAspect))
            .unwrap();
        b.replace(open, Concern::synchronization(), Box::new(NoopAspect));
        assert_eq!(
            b.concerns(open),
            vec![Concern::synchronization(), Concern::audit()],
            "replacing must not move the concern to the end"
        );
    }

    #[test]
    fn deregister_removes_and_returns() {
        let (mut b, open) = bank_with_open();
        b.register(open, Concern::audit(), Box::new(FnAspect::new("a")))
            .unwrap();
        let a = b.deregister(open, &Concern::audit()).unwrap();
        assert_eq!(a.describe(), "a");
        assert!(!b.contains(open, &Concern::audit()));
        assert!(matches!(
            b.deregister(open, &Concern::audit()),
            Err(RegistrationError::UnknownConcern { .. })
        ));
    }

    #[test]
    fn concerns_keep_registration_order() {
        let (mut b, open) = bank_with_open();
        for c in [
            Concern::synchronization(),
            Concern::authentication(),
            Concern::audit(),
        ] {
            b.register(open, c, Box::new(NoopAspect)).unwrap();
        }
        assert_eq!(
            b.concerns(open),
            vec![
                Concern::synchronization(),
                Concern::authentication(),
                Concern::audit()
            ]
        );
    }

    #[test]
    fn aspect_mut_gives_access() {
        let (mut b, open) = bank_with_open();
        b.register(open, Concern::audit(), Box::new(FnAspect::new("x")))
            .unwrap();
        assert_eq!(
            b.aspect_mut(open, &Concern::audit()).unwrap().describe(),
            "x"
        );
        assert!(b.aspect_mut(open, &Concern::quota()).is_none());
    }

    #[test]
    fn debug_lists_cells() {
        let (mut b, open) = bank_with_open();
        b.register(open, Concern::synchronization(), Box::new(NoopAspect))
            .unwrap();
        let s = format!("{b:?}");
        assert!(s.contains("open"));
        assert!(s.contains("sync"));
    }

    #[test]
    fn fast_eligibility_tracks_the_weave() {
        use crate::aspect::AspectCapabilities;
        let (mut b, open) = bank_with_open();
        // Empty chain: vacuously eligible.
        assert!(b.fast_path_eligible(open));
        // Noop declares every capability; a bare closure declares none.
        b.register(open, Concern::synchronization(), Box::new(NoopAspect))
            .unwrap();
        assert!(b.fast_path_eligible(open));
        b.register(open, Concern::audit(), Box::new(FnAspect::new("a")))
            .unwrap();
        assert!(!b.fast_path_eligible(open));
        // Replacing the undeclared aspect with a declared one restores
        // eligibility; unweaving it does too.
        b.replace(
            open,
            Concern::audit(),
            Box::new(FnAspect::new("a").declare_capabilities(AspectCapabilities::all())),
        );
        assert!(b.fast_path_eligible(open));
        // A contained panic revokes the contract until the next weave
        // (the moderator's `note_panic` clears the row's cached flag).
        b.row_mut(open).fast_eligible = false;
        assert!(!b.fast_path_eligible(open));
        b.deregister(open, &Concern::audit()).unwrap();
        assert!(b.fast_path_eligible(open));
    }

    #[test]
    fn methods_iterates_in_declaration_order() {
        let mut b = AspectBank::new();
        b.declare(MethodId::new("open"));
        b.declare(MethodId::new("assign"));
        let names: Vec<&str> = b.methods().map(|m| m.as_str()).collect();
        assert_eq!(names, vec!["open", "assign"]);
    }
}

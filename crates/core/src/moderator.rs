//! The aspect moderator: the coordination engine of the framework.
//!
//! The moderator owns the aspect registry and drives the paper's
//! protocol (Figure 11): *pre-activation* evaluates the preconditions of
//! every aspect registered for a participating method — blocking the
//! caller on the method's wait queue while any returns `BLOCKED`,
//! failing the activation if any returns `ABORT` — and *post-activation*
//! runs every aspect's postaction and notifies the wait queues of
//! dependent methods.
//!
//! # Locking model
//!
//! The paper's `synchronized` moderator serializes every activation of
//! every method behind one lock. This implementation **shards** that
//! coordination state into per-method *cells* (see [`Coordination`]):
//!
//! * Each declared method owns a cell — a mutex guarding its aspect
//!   chain and wake wiring — plus its own condition variable and a shard
//!   of atomic counters. Activations of *different* methods coordinate
//!   on different locks and proceed in parallel.
//! * One method's aspect chain is never evaluated concurrently with
//!   itself: the chain runs under the method's cell lock, so aspects
//!   still need no internal synchronization for per-method state.
//!   State shared *across* methods (e.g. the producer/consumer buffer
//!   counters of `amf-aspects`) must carry its own lock, as every
//!   aspect in this workspace already does.
//! * Moderator-global state is lock-free: the invocation counter is an
//!   atomic, stats are per-method atomic shards aggregated on read, and
//!   the method-name→index registry sits behind an `RwLock` that the
//!   hot path only ever read-locks (writes happen in `declare_method`).
//! * **Notify discipline**: post-activation runs postactions under its
//!   own cell, releases it, then signals each target method's condvar
//!   *while holding that target's cell lock*. A waiter holds its cell
//!   lock continuously from chain evaluation to parking, so a
//!   cross-method wakeup (open→assign) can never land in the window
//!   between "evaluated: blocked" and "parked" — it would have to wait
//!   for the cell lock first.
//! * **Rollback notification**: with sharding, another method's chain
//!   may observe a reservation that a blocked or aborted chain later
//!   rolls back (impossible under the single lock, where whole-chain
//!   evaluation was atomic). Whenever rollback releases at least one
//!   aspect, the moderator therefore notifies the method's wake targets
//!   — the rollback is semantically a mini post-activation — and a
//!   blocked caller that rolled back re-checks its chain on a short
//!   backstop interval to close the residual race.
//! * **Self-wake**: postactions (and rollbacks) mutate the very state a
//!   method's *own* waiters are guarded by — the paper's `ActiveOpen ==
//!   0` flag frees a fellow producer, not a consumer. Relying on the
//!   *other* method's next post-activation to deliver that wakeup
//!   deadlocks once that method has gone quiet (two producers, one
//!   parked on the active flag, after the last consumer finished). The
//!   moderator therefore always signals the method's own condvar after
//!   postactions and after a rollback that released a reservation.
//!   [`AspectModerator::wire_wakes`] restricts which *other* queues are
//!   notified; the self-wake is uncounted and untraced.
//! * **Fairness**: by default waiters barge — the condvar picks the
//!   winner and a fresh arrival may overtake every parked waiter.
//!   [`FairnessPolicy::Fifo`] replaces that with a ticketed FIFO queue
//!   per cell: wake permits are recorded as queue state under the cell
//!   lock (so none is lost in an unlocked window), grants go strictly
//!   first-parked-first-served, newcomers finding waiters park without
//!   evaluating their chain, and a timed-out ticket hands pending
//!   permits to its successor on cancellation. See DESIGN.md
//!   ("Fairness") for the full ticket lifecycle.
//! * **Fault containment**: aspects are foreign code running inside the
//!   coordination engine, under the cell lock. Under a non-default
//!   [`PanicPolicy`] every aspect callback (precondition, postaction,
//!   release, cancel) runs inside `catch_unwind`; a precondition panic
//!   takes the same compensation path as a mid-chain `Verdict::Abort`
//!   (prefix rollback + rollback notification), a postaction panic
//!   still finishes the remaining postactions and releases the
//!   activation, and [`PanicPolicy::Quarantine`] disables a repeatedly
//!   panicking slot so one bad concern degrades gracefully instead of
//!   taking its method down. See DESIGN.md ("Fault containment").
//!
//! Lock ordering is `registry → at most one cell`: no code path holds a
//! cell lock while acquiring the registry lock, and no path holds two
//! cell locks at once, so the lock graph is acyclic by construction.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as MemOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use crate::aspect::{Aspect, ReleaseCause};
use crate::bank::{AspectBank, MethodIndex};
use crate::concern::{Concern, MethodId};
use crate::context::InvocationContext;
use crate::error::{AbortError, RegistrationError};
use crate::factory::AspectFactory;
use crate::trace::{EventKind, TraceEvent, TraceSink};
use crate::verdict::Verdict;

/// How often a caller that blocked *after rolling back a reservation*
/// re-evaluates its chain while parked. This backstop closes the
/// sharded-moderator race where another method's chain observed the
/// transient reservation; see the module docs ("Rollback notification").
const ROLLBACK_RECHECK: Duration = Duration::from_millis(1);

/// In what order a method's aspects compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingPolicy {
    /// Later-registered aspects *wrap* earlier ones: preconditions run
    /// newest-first, postactions oldest-first. This matches the paper's
    /// adaptability example (Figure 14): authentication, registered by the
    /// extended proxy *after* synchronization, runs its precondition
    /// first and its postaction last.
    #[default]
    Nested,
    /// Aspects run in registration order on both phases' entry side:
    /// preconditions oldest-first, postactions newest-first.
    Declaration,
}

/// Which wait queues a method's post-activation notifies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum WakeTargets {
    /// Notify every declared method's queue (safe default).
    #[default]
    All,
    /// Notify exactly these methods' queues (the paper wires open→assign
    /// and assign→open by hand; [`AspectModerator::wire_wakes`] does the
    /// same declaratively).
    Wired(Vec<MethodIndex>),
}

/// How a notification wakes a method's waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WakeMode {
    /// Wake every waiter; each re-evaluates and possibly re-blocks.
    /// Never loses a wakeup (default).
    #[default]
    NotifyAll,
    /// Wake a single waiter per notification, like Java's `notify()` used
    /// in the paper. Cheaper under contention but can strand waiters when
    /// the woken thread re-blocks without progress; compared in
    /// experiment E6.
    NotifyOne,
}

/// Whether earlier-resumed aspects are rolled back (via
/// [`Aspect::on_release`]) when a later aspect in the chain blocks or
/// aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RollbackPolicy {
    /// Roll back (default; fixes the multi-aspect composition anomaly,
    /// see DESIGN.md and experiment E7).
    #[default]
    Release,
    /// Do not roll back — the paper's literal semantics.
    None,
}

/// How coordination state is laid out across participating methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Coordination {
    /// One coordination cell (lock + condvar + counters) per method:
    /// activations of disjoint methods proceed in parallel (default).
    #[default]
    Sharded,
    /// Every method shares a single cell, serializing all coordination
    /// behind one lock — the paper's `synchronized` moderator. Retained
    /// as the measured baseline for experiment E9; protocol semantics
    /// are identical (each method still has its own wait queue).
    GlobalLock,
}

/// Which blocked caller proceeds when a notification opens the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FairnessPolicy {
    /// Waiters race for the grant: the condvar (ultimately the
    /// scheduler) picks the winner, and a newly arriving caller
    /// evaluates its chain immediately — overtaking every parked waiter
    /// whose precondition would now resume. The paper's
    /// `wait()`/`notify()` semantics; cheapest, starvation-prone under
    /// contention (default).
    #[default]
    Barging,
    /// Ticketed FIFO: each parked caller holds a monotonically
    /// increasing per-cell ticket and grants are strictly
    /// first-parked-first-served. A newly arriving caller finding
    /// waiters queues behind them *without* evaluating its chain
    /// (barging prevention), and a timed wait that cancels surrenders
    /// its ticket to its successors. See the module docs ("Fairness")
    /// and DESIGN.md.
    Fifo,
}

/// What the moderator does when an aspect callback panics.
///
/// Aspects run inside the coordination engine, under the method's cell
/// lock; an uncontained panic there unwinds with the chain
/// half-evaluated, leaking reservations and stranding waiters. The
/// non-default policies wrap every callback in `catch_unwind` and route
/// a precondition panic through the same compensation path a mid-chain
/// [`Verdict::Abort`] takes (prefix rollback + notifications), so no
/// reservation or wake permit leaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PanicPolicy {
    /// No containment: the panic unwinds through the moderator to the
    /// caller, exactly as if the aspect had been called directly. The
    /// paper's (implicit) semantics, and zero-overhead: callbacks are
    /// invoked without a `catch_unwind` frame (default).
    #[default]
    Propagate,
    /// Catch the panic and abort the invocation with
    /// [`AbortError::AspectPanicked`], rolling back the
    /// already-evaluated prefix of the chain. The aspect stays
    /// registered and will run again on the next invocation.
    AbortInvocation,
    /// Like [`PanicPolicy::AbortInvocation`], but after an aspect slot
    /// has panicked `after` times it is *quarantined*: from then on it
    /// evaluates as `Resume`/no-op, the method keeps serving, and the
    /// slot is reported in [`AspectModerator::quarantined_concerns`].
    /// Quarantining shortens the effective chain, so the method's
    /// waiters are woken to re-evaluate (same discipline as
    /// [`AspectModerator::deregister`]).
    Quarantine {
        /// Number of caught panics after which the slot is disabled.
        after: u32,
    },
}

/// Number of buckets in a [`WaitHistogram`].
pub const WAIT_BUCKETS: usize = 16;

/// Log₂-microsecond histogram of time callers spent blocked before
/// resuming. Bucket 0 counts waits under 1 µs; bucket `b` counts waits
/// in `[2^(b-1), 2^b)` µs; the last bucket is open-ended (≥ ~16 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaitHistogram {
    /// Per-bucket wait counts.
    pub buckets: [u64; WAIT_BUCKETS],
}

impl WaitHistogram {
    /// Total recorded waits.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper-bound estimate, in microseconds, of percentile `p`
    /// (0–100). Returns 0 when no waits were recorded.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << b;
            }
        }
        1u64 << (WAIT_BUCKETS - 1)
    }

    fn merge(&mut self, other: &WaitHistogram) {
        for (into, from) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *into += from;
        }
    }
}

/// Counters describing everything a moderator has done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeratorStats {
    /// Pre-activations started.
    pub preactivations: u64,
    /// Pre-activations that resumed (method allowed to run).
    pub resumes: u64,
    /// Times a caller parked on a wait queue.
    pub blocks: u64,
    /// Times a parked caller was woken.
    pub wakeups: u64,
    /// Notifications sent to wait queues by post-activations (and by
    /// rollback notifications, see the module docs).
    pub notifications: u64,
    /// Activations aborted by an aspect.
    pub aborts: u64,
    /// Non-blocking pre-activations that found the chain blocked and
    /// returned `Ok(false)` instead of parking
    /// ([`AspectModerator::try_preactivation`]).
    pub would_blocks: u64,
    /// Activations aborted by timeout.
    pub timeouts: u64,
    /// Post-activations completed.
    pub postactivations: u64,
    /// Rollback releases delivered to earlier-resumed aspects.
    pub releases: u64,
    /// FIFO tickets handed to parked callers
    /// ([`FairnessPolicy::Fifo`] only; always 0 under `Barging`).
    pub tickets_issued: u64,
    /// FIFO tickets whose holder resumed. Tickets cancelled by timeout
    /// or retired by an abort account for the difference.
    pub tickets_served: u64,
    /// High-water mark of concurrently parked callers on any single
    /// method's queue (tracked under both fairness policies; aggregated
    /// with `max`, not summed).
    pub max_queue_depth: u64,
    /// Aspect-callback panics caught by the containment layer (always 0
    /// under [`PanicPolicy::Propagate`]).
    pub panics_caught: u64,
    /// Aspect slots disabled by [`PanicPolicy::Quarantine`].
    pub quarantined_aspects: u64,
    /// Distribution of time spent blocked before resuming.
    pub wait_hist: WaitHistogram,
}

/// One method's shard of the moderator counters. Plain atomics: the hot
/// path updates them without any lock, [`AspectModerator::stats`]
/// aggregates the shards on read.
#[derive(Default)]
struct StatShard {
    preactivations: AtomicU64,
    resumes: AtomicU64,
    blocks: AtomicU64,
    wakeups: AtomicU64,
    notifications: AtomicU64,
    aborts: AtomicU64,
    would_blocks: AtomicU64,
    timeouts: AtomicU64,
    postactivations: AtomicU64,
    releases: AtomicU64,
    tickets_issued: AtomicU64,
    tickets_served: AtomicU64,
    /// High-water mark of `waiting_now`.
    max_queue_depth: AtomicU64,
    /// Callers currently parked on this method (gauge, not exported).
    waiting_now: AtomicU64,
    panics_caught: AtomicU64,
    quarantined_aspects: AtomicU64,
    wait_hist: [AtomicU64; WAIT_BUCKETS],
}

fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, MemOrdering::Relaxed);
}

impl StatShard {
    /// Records a caller entering the parked state and bumps the
    /// queue-depth high-water mark.
    fn note_parked(&self) {
        let depth = self.waiting_now.fetch_add(1, MemOrdering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, MemOrdering::Relaxed);
    }

    fn note_unparked(&self) {
        self.waiting_now.fetch_sub(1, MemOrdering::Relaxed);
    }

    /// Buckets one blocked-wait duration into the log₂-µs histogram.
    fn record_wait(&self, waited: Duration) {
        let us = waited.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(WAIT_BUCKETS - 1);
        inc(&self.wait_hist[bucket]);
    }

    fn snapshot(&self) -> ModeratorStats {
        let mut wait_hist = WaitHistogram::default();
        for (into, from) in wait_hist.buckets.iter_mut().zip(self.wait_hist.iter()) {
            *into = from.load(MemOrdering::Relaxed);
        }
        ModeratorStats {
            preactivations: self.preactivations.load(MemOrdering::Relaxed),
            resumes: self.resumes.load(MemOrdering::Relaxed),
            blocks: self.blocks.load(MemOrdering::Relaxed),
            wakeups: self.wakeups.load(MemOrdering::Relaxed),
            notifications: self.notifications.load(MemOrdering::Relaxed),
            aborts: self.aborts.load(MemOrdering::Relaxed),
            would_blocks: self.would_blocks.load(MemOrdering::Relaxed),
            timeouts: self.timeouts.load(MemOrdering::Relaxed),
            postactivations: self.postactivations.load(MemOrdering::Relaxed),
            releases: self.releases.load(MemOrdering::Relaxed),
            tickets_issued: self.tickets_issued.load(MemOrdering::Relaxed),
            tickets_served: self.tickets_served.load(MemOrdering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(MemOrdering::Relaxed),
            panics_caught: self.panics_caught.load(MemOrdering::Relaxed),
            quarantined_aspects: self.quarantined_aspects.load(MemOrdering::Relaxed),
            wait_hist,
        }
    }

    fn add_into(&self, out: &mut ModeratorStats) {
        let s = self.snapshot();
        out.preactivations += s.preactivations;
        out.resumes += s.resumes;
        out.blocks += s.blocks;
        out.wakeups += s.wakeups;
        out.notifications += s.notifications;
        out.aborts += s.aborts;
        out.would_blocks += s.would_blocks;
        out.timeouts += s.timeouts;
        out.postactivations += s.postactivations;
        out.releases += s.releases;
        out.tickets_issued += s.tickets_issued;
        out.tickets_served += s.tickets_served;
        out.max_queue_depth = out.max_queue_depth.max(s.max_queue_depth);
        out.panics_caught += s.panics_caught;
        out.quarantined_aspects += s.quarantined_aspects;
        out.wait_hist.merge(&s.wait_hist);
    }
}

/// Handle to a declared participating method; obtained from
/// [`AspectModerator::declare_method`] and used for all per-method
/// operations.
///
/// Handles are cheap to clone and are only valid on the moderator that
/// issued them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodHandle {
    pub(crate) index: MethodIndex,
    pub(crate) id: MethodId,
}

impl MethodHandle {
    /// The method's identifier.
    pub fn id(&self) -> &MethodId {
        &self.id
    }

    /// The method's dense index in the issuing moderator's registry.
    pub fn index(&self) -> MethodIndex {
        self.index
    }
}

impl fmt::Display for MethodHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id.as_str())
    }
}

/// How a caller obtained the right to evaluate its chain under
/// [`FairnessPolicy::Fifo`]; determines which queue state to consume
/// when the evaluation settles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Grant {
    /// First evaluation of a caller that found the queue empty — it
    /// holds no ticket yet.
    First,
    /// The ticket is the cursor of an active broadcast sweep.
    Sweep,
    /// The ticket is the queue head and a single-waiter signal is
    /// pending.
    Signal,
    /// Rollback-recheck backstop: an out-of-band re-evaluation granted
    /// to a waiter that rolled back a reservation (module docs).
    Backstop,
}

/// Ticketed FIFO wait state for one method under
/// [`FairnessPolicy::Fifo`]. All operations run under the method's cell
/// lock.
///
/// Wake permits are *state* — pending signals and broadcast sweeps —
/// rather than bare condvar pulses, so a notification landing while a
/// waiter's cell lock is released (e.g. during rollback notification)
/// is retained instead of lost. The condvar only says "queue state
/// changed, re-check"; eligibility lives here.
#[derive(Debug, Default)]
struct FifoQueue {
    /// Next ticket to issue; per-(cell, slot) monotonic.
    next_ticket: u64,
    /// Parked tickets, oldest first. Always sorted ascending: tickets
    /// are issued in order and removals preserve order.
    waiting: VecDeque<u64>,
    /// Pending [`WakeMode::NotifyOne`] permits: the queue head may
    /// evaluate once per signal. Never exceeds the queue length.
    signals: u64,
    /// Active [`WakeMode::NotifyAll`] sweep as `(cursor, end)`: every
    /// ticket below `end` gets one evaluation in ticket order; `cursor`
    /// is the ticket currently allowed to evaluate.
    sweep: Option<(u64, u64)>,
}

impl FifoQueue {
    fn has_waiters(&self) -> bool {
        !self.waiting.is_empty()
    }

    /// Whether any unconsumed wake permit exists.
    fn has_pending(&self) -> bool {
        self.signals > 0 || self.sweep.is_some()
    }

    /// Issues the next ticket and parks it at the back of the queue.
    fn enqueue(&mut self) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.waiting.push_back(ticket);
        ticket
    }

    /// The permit, if any, entitling `ticket` to evaluate its chain now.
    fn grant_for(&self, ticket: u64) -> Option<Grant> {
        if self.sweep.is_some_and(|(cursor, _)| cursor == ticket) {
            return Some(Grant::Sweep);
        }
        if self.signals > 0 && self.waiting.front() == Some(&ticket) {
            return Some(Grant::Signal);
        }
        None
    }

    /// Records one notification. Under `NotifyAll` this (re)starts a
    /// sweep over every currently ticketed waiter; under `NotifyOne` it
    /// adds a single head-of-queue permit. A notification with no
    /// waiters is lost (condition-queue semantics), same as a condvar
    /// signal with nobody parked.
    fn wake(&mut self, mode: WakeMode) {
        if self.waiting.is_empty() {
            return;
        }
        match mode {
            WakeMode::NotifyAll => {
                // Restarting from the head on merge gives already-swept
                // tickets a harmless extra evaluation; each sweep stays
                // finite because `end` is fixed at permit time.
                self.sweep = Some((self.waiting[0], self.next_ticket));
            }
            WakeMode::NotifyOne => {
                self.signals = (self.signals + 1).min(self.waiting.len() as u64);
            }
        }
    }

    /// Consumes the permit behind a finished evaluation; removes the
    /// ticket when its holder is leaving the queue (resume or abort).
    fn settle(&mut self, ticket: u64, grant: Grant, leaving: bool) {
        match grant {
            Grant::Sweep => self.advance_sweep(ticket),
            Grant::Signal => self.signals -= 1,
            Grant::First | Grant::Backstop => {}
        }
        if leaving {
            self.remove(ticket);
        }
    }

    /// Surrenders a cancelled (timed-out) ticket. Pending permits are
    /// *not* discarded: signals re-attach to the new head and an active
    /// sweep advances past the leaver, so successors are never stranded
    /// by a cancellation.
    fn cancel(&mut self, ticket: u64) {
        self.remove(ticket);
    }

    fn remove(&mut self, ticket: u64) {
        // A departing ticket may hold the sweep cursor under a grant
        // other than `Sweep`: a wake issued *during its own evaluation*
        // (aspect quarantine, deregister from an aspect) starts the
        // sweep at the queue head — the evaluator itself. Pass the
        // cursor on, or the sweep dangles and strands every successor.
        if self.sweep.is_some_and(|(cursor, _)| cursor == ticket) {
            self.advance_sweep(ticket);
        }
        if let Some(pos) = self.waiting.iter().position(|&t| t == ticket) {
            self.waiting.remove(pos);
        }
        self.signals = self.signals.min(self.waiting.len() as u64);
        if self.waiting.is_empty() {
            self.sweep = None;
        }
    }

    /// Moves an active sweep's cursor to the next ticketed waiter after
    /// `after`, ending the sweep when none remains below its end.
    fn advance_sweep(&mut self, after: u64) {
        let Some((_, end)) = self.sweep else { return };
        self.sweep = self
            .waiting
            .iter()
            .copied()
            .find(|&t| t > after && t < end)
            .map(|next| (next, end));
    }
}

/// Containment bookkeeping for one aspect slot: how often its callbacks
/// have panicked and whether [`PanicPolicy::Quarantine`] has disabled
/// it. Lives in the cell (not the bank) so replacing an aspect via
/// `deregister`/`register` keeps the slot's fault history.
#[derive(Debug, Clone, Copy, Default)]
struct SlotFault {
    panics: u32,
    quarantined: bool,
}

/// The mutable coordination state of one cell: the aspect rows (an
/// [`AspectBank`] with one row per hosted method — exactly one under
/// [`Coordination::Sharded`]) and each hosted method's wake wiring.
struct CellState {
    bank: AspectBank,
    /// Wake targets per local bank row, parallel to the bank's rows.
    wakes: Vec<WakeTargets>,
    /// FIFO wait state per local bank row, parallel to the bank's rows.
    /// Unused (never enqueued into) under [`FairnessPolicy::Barging`].
    queues: Vec<FifoQueue>,
    /// Per-slot panic bookkeeping, keyed by concern, parallel to the
    /// bank's rows. Empty under [`PanicPolicy::Propagate`].
    faults: Vec<HashMap<Concern, SlotFault>>,
}

/// One coordination cell: the lock guarding a method's chain, wake
/// wiring and blocked callers. Under [`Coordination::GlobalLock`] a
/// single cell hosts every method.
struct Cell {
    state: Mutex<CellState>,
}

impl Cell {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(CellState {
                bank: AspectBank::new(),
                wakes: Vec::new(),
                queues: Vec::new(),
                faults: Vec::new(),
            }),
        })
    }
}

/// Registry entry for one declared method: which cell hosts it, at which
/// local row, plus its wait queue and stats shard.
struct MethodEntry {
    id: MethodId,
    cell: Arc<Cell>,
    /// The method's row index inside its cell's bank.
    slot: MethodIndex,
    cond: Arc<Condvar>,
    stats: Arc<StatShard>,
}

/// The read-mostly method registry. Write-locked only by
/// `declare_method`; every hot-path operation read-locks it briefly to
/// clone the `Arc`s out and then operates on the cell alone.
#[derive(Default)]
struct Registry {
    entries: Vec<MethodEntry>,
    by_id: HashMap<MethodId, usize>,
    /// The one shared cell under [`Coordination::GlobalLock`].
    shared_cell: Option<Arc<Cell>>,
}

impl Registry {
    fn check(&self, method: &MethodHandle) {
        assert!(
            self.entries
                .get(method.index.as_usize())
                .is_some_and(|e| e.id == method.id),
            "method handle `{}` does not belong to this moderator",
            method.id
        );
    }
}

/// A method's coordination handles, cloned out of the registry so the
/// hot path drops the registry read lock before touching the cell.
struct Resolved {
    cell: Arc<Cell>,
    slot: MethodIndex,
    cond: Arc<Condvar>,
    stats: Arc<StatShard>,
}

/// Configures and builds an [`AspectModerator`].
///
/// ```
/// use amf_core::{AspectModerator, OrderingPolicy, WakeMode};
/// use amf_core::trace::MemoryTrace;
///
/// let trace = MemoryTrace::shared();
/// let moderator = AspectModerator::builder()
///     .ordering(OrderingPolicy::Nested)
///     .wake_mode(WakeMode::NotifyAll)
///     .trace(trace)
///     .build();
/// # let _ = moderator;
/// ```
#[derive(Default)]
pub struct ModeratorBuilder {
    ordering: OrderingPolicy,
    wake_mode: WakeMode,
    rollback: RollbackPolicy,
    coordination: Coordination,
    fairness: FairnessPolicy,
    panic_policy: PanicPolicy,
    trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for ModeratorBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModeratorBuilder")
            .field("ordering", &self.ordering)
            .field("wake_mode", &self.wake_mode)
            .field("rollback", &self.rollback)
            .field("coordination", &self.coordination)
            .field("fairness", &self.fairness)
            .field("panic_policy", &self.panic_policy)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

impl ModeratorBuilder {
    /// Sets the aspect composition order (default [`OrderingPolicy::Nested`]).
    #[must_use]
    pub fn ordering(mut self, ordering: OrderingPolicy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets how notifications wake waiters (default [`WakeMode::NotifyAll`]).
    #[must_use]
    pub fn wake_mode(mut self, mode: WakeMode) -> Self {
        self.wake_mode = mode;
        self
    }

    /// Sets the rollback policy (default [`RollbackPolicy::Release`]).
    #[must_use]
    pub fn rollback(mut self, rollback: RollbackPolicy) -> Self {
        self.rollback = rollback;
        self
    }

    /// Sets the coordination layout (default [`Coordination::Sharded`]).
    #[must_use]
    pub fn coordination(mut self, coordination: Coordination) -> Self {
        self.coordination = coordination;
        self
    }

    /// Sets which blocked caller proceeds when a gate opens (default
    /// [`FairnessPolicy::Barging`]).
    #[must_use]
    pub fn fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// Sets what happens when an aspect callback panics (default
    /// [`PanicPolicy::Propagate`]).
    #[must_use]
    pub fn panic_policy(mut self, policy: PanicPolicy) -> Self {
        self.panic_policy = policy;
        self
    }

    /// Attaches a protocol trace sink.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Builds the moderator.
    pub fn build(self) -> AspectModerator {
        AspectModerator {
            registry: RwLock::new(Registry::default()),
            invocations: AtomicU64::new(0),
            ordering: self.ordering,
            wake_mode: self.wake_mode,
            rollback: self.rollback,
            coordination: self.coordination,
            fairness: self.fairness,
            panic_policy: self.panic_policy,
            trace: self.trace,
        }
    }
}

/// The coordination engine: owns the aspect registry, evaluates pre/post
/// activation, parks and wakes callers.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use amf_core::{AspectModerator, Concern, FnAspect, InvocationContext, MethodId, Verdict};
///
/// let moderator = AspectModerator::new();
/// let open = moderator.declare_method(MethodId::new("open"));
///
/// // A capacity-1 "buffer" captured by the aspect.
/// moderator.register(
///     &open,
///     Concern::synchronization(),
///     Box::new(FnAspect::new("cap1").on_precondition({
///         let mut used = false;
///         move |_| { let v = Verdict::resume_if(!used); if !used { used = true; } v }
///     })),
/// ).unwrap();
///
/// let mut ctx = InvocationContext::new(open.id().clone(), moderator.next_invocation());
/// moderator.preactivation(&open, &mut ctx).unwrap();
/// // ... run the functional method here ...
/// moderator.postactivation(&open, &mut ctx);
/// ```
pub struct AspectModerator {
    registry: RwLock<Registry>,
    invocations: AtomicU64,
    ordering: OrderingPolicy,
    wake_mode: WakeMode,
    rollback: RollbackPolicy,
    coordination: Coordination,
    fairness: FairnessPolicy,
    panic_policy: PanicPolicy,
    trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for AspectModerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let registry = self.registry.read();
        let aspects: usize = registry
            .entries
            .iter()
            .map(|e| e.cell.state.lock().bank.concern_count(e.slot))
            .sum();
        f.debug_struct("AspectModerator")
            .field("methods", &registry.entries.len())
            .field("aspects", &aspects)
            .field("ordering", &self.ordering)
            .field("wake_mode", &self.wake_mode)
            .field("rollback", &self.rollback)
            .field("coordination", &self.coordination)
            .field("fairness", &self.fairness)
            .field("panic_policy", &self.panic_policy)
            .finish()
    }
}

impl Default for AspectModerator {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one pass over a method's precondition chain. `released`
/// counts the rollback releases the pass performed; a non-zero count
/// obliges the caller to send a rollback notification (module docs).
enum ChainOutcome {
    Resumed,
    Blocked {
        released: usize,
    },
    Aborted {
        concern: Concern,
        reason: crate::verdict::AbortReason,
        released: usize,
        /// True when the abort is a contained aspect panic rather than a
        /// `Verdict::Abort`; surfaced as [`AbortError::AspectPanicked`].
        panicked: bool,
    },
}

/// Renders a caught panic payload for diagnostics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl AspectModerator {
    /// Creates a moderator with default policies and no trace.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts configuring a moderator.
    pub fn builder() -> ModeratorBuilder {
        ModeratorBuilder::default()
    }

    /// Convenience: a default moderator already wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn emit(&self, invocation: u64, method: &MethodId, concern: Option<Concern>, kind: EventKind) {
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent {
                invocation,
                method: method.clone(),
                concern,
                kind,
            });
        }
    }

    /// Clones a method's coordination handles out of the registry.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this moderator.
    fn resolve(&self, method: &MethodHandle) -> Resolved {
        let registry = self.registry.read();
        registry.check(method);
        let entry = &registry.entries[method.index.as_usize()];
        Resolved {
            cell: Arc::clone(&entry.cell),
            slot: entry.slot,
            cond: Arc::clone(&entry.cond),
            stats: Arc::clone(&entry.stats),
        }
    }

    /// Declares a participating method; idempotent.
    pub fn declare_method(&self, id: MethodId) -> MethodHandle {
        let mut registry = self.registry.write();
        if let Some(&ix) = registry.by_id.get(&id) {
            return MethodHandle {
                index: MethodIndex(ix),
                id,
            };
        }
        let cell = match self.coordination {
            Coordination::Sharded => Cell::new(),
            Coordination::GlobalLock => {
                if registry.shared_cell.is_none() {
                    registry.shared_cell = Some(Cell::new());
                }
                Arc::clone(registry.shared_cell.as_ref().expect("just seeded"))
            }
        };
        let slot = {
            let mut state = cell.state.lock();
            let slot = state.bank.declare(id.clone());
            if state.wakes.len() < state.bank.method_count() {
                state.wakes.push(WakeTargets::All);
                state.queues.push(FifoQueue::default());
                state.faults.push(HashMap::new());
            }
            slot
        };
        let ix = registry.entries.len();
        registry.by_id.insert(id.clone(), ix);
        registry.entries.push(MethodEntry {
            id: id.clone(),
            cell,
            slot,
            cond: Arc::new(Condvar::new()),
            stats: Arc::new(StatShard::default()),
        });
        MethodHandle {
            index: MethodIndex(ix),
            id,
        }
    }

    /// Looks up the handle of an already-declared method.
    pub fn method(&self, id: &MethodId) -> Option<MethodHandle> {
        let registry = self.registry.read();
        registry.by_id.get(id).map(|&ix| MethodHandle {
            index: MethodIndex(ix),
            id: id.clone(),
        })
    }

    /// Declared method identifiers, in declaration order.
    pub fn methods(&self) -> Vec<MethodId> {
        self.registry
            .read()
            .entries
            .iter()
            .map(|e| e.id.clone())
            .collect()
    }

    /// Stores an aspect in the (method, concern) cell — the paper's
    /// `registerAspect`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::DuplicateConcern`] if the cell is occupied.
    pub fn register(
        &self,
        method: &MethodHandle,
        concern: Concern,
        aspect: Box<dyn Aspect>,
    ) -> Result<(), RegistrationError> {
        let r = self.resolve(method);
        {
            let mut state = r.cell.state.lock();
            state.bank.register(r.slot, concern.clone(), aspect)?;
        }
        self.emit(0, &method.id, Some(concern), EventKind::AspectRegistered);
        Ok(())
    }

    /// Asks `factory` to create the aspect for (method, concern) and
    /// registers it — the paper's initialization idiom
    /// `moderator.registerAspect(open, SYNC, factory.create(open, SYNC))`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::FactoryRefused`] if the factory returns no
    /// aspect, or [`RegistrationError::DuplicateConcern`] if the cell is
    /// occupied.
    pub fn register_from(
        &self,
        factory: &dyn AspectFactory,
        method: &MethodHandle,
        concern: Concern,
    ) -> Result<(), RegistrationError> {
        let aspect = factory.create(&method.id, &concern).ok_or_else(|| {
            RegistrationError::FactoryRefused {
                method: method.id.clone(),
                concern: concern.clone(),
            }
        })?;
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectCreated,
        );
        self.register(method, concern, aspect)
    }

    /// Removes and returns the aspect in the (method, concern) cell,
    /// waking all of the method's waiters so they re-evaluate against the
    /// shortened chain.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn deregister(
        &self,
        method: &MethodHandle,
        concern: &Concern,
    ) -> Result<Box<dyn Aspect>, RegistrationError> {
        let r = self.resolve(method);
        let aspect = {
            let mut state = r.cell.state.lock();
            let aspect = state.bank.deregister(r.slot, concern)?;
            // Notify while holding the cell lock: a waiter either is
            // already parked (woken now) or still holds the lock and
            // will re-evaluate against the shortened chain anyway.
            // Under Fifo every ticketed waiter must get a turn against
            // the shortened chain, in order — a full sweep.
            if self.fairness == FairnessPolicy::Fifo {
                state.queues[r.slot.as_usize()].wake(WakeMode::NotifyAll);
            }
            r.cond.notify_all();
            aspect
        };
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectDeregistered,
        );
        Ok(aspect)
    }

    /// The concerns registered for a method, in registration order.
    pub fn concerns(&self, method: &MethodHandle) -> Vec<Concern> {
        let r = self.resolve(method);
        let state = r.cell.state.lock();
        state.bank.concerns(r.slot)
    }

    /// Restricts which wait queues `method`'s post-activation notifies
    /// (default: all queues). The paper wires `open` → `assign`'s queue
    /// and vice versa.
    ///
    /// The method's *own* queue is always signalled after its
    /// postactions run, independent of this wiring (module docs:
    /// self-wake) — wiring governs cross-method notifications only.
    pub fn wire_wakes(&self, method: &MethodHandle, targets: &[MethodHandle]) {
        {
            let registry = self.registry.read();
            registry.check(method);
            for t in targets {
                registry.check(t);
            }
        }
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        state.wakes[r.slot.as_usize()] =
            WakeTargets::Wired(targets.iter().map(|t| t.index).collect());
    }

    /// Issues the next invocation number (used by proxies to build
    /// contexts).
    pub fn next_invocation(&self) -> u64 {
        self.invocations.fetch_add(1, MemOrdering::Relaxed) + 1
    }

    /// Snapshot of the moderator's counters, aggregated across every
    /// method's shard.
    pub fn stats(&self) -> ModeratorStats {
        let registry = self.registry.read();
        let mut out = ModeratorStats::default();
        for entry in &registry.entries {
            entry.stats.add_into(&mut out);
        }
        out
    }

    /// Snapshot of one method's shard of the counters. Notifications are
    /// credited to the sending method.
    pub fn method_stats(&self, method: &MethodHandle) -> ModeratorStats {
        self.resolve(method).stats.snapshot()
    }

    /// The moderator's panic containment policy.
    pub fn panic_policy(&self) -> PanicPolicy {
        self.panic_policy
    }

    /// Per-slot caught-panic counts for `method`, in registration order.
    /// Slots that never panicked are reported with a count of 0.
    pub fn panic_counts(&self, method: &MethodHandle) -> Vec<(Concern, u32)> {
        let r = self.resolve(method);
        let state = r.cell.state.lock();
        let fault_map = &state.faults[r.slot.as_usize()];
        state
            .bank
            .concerns(r.slot)
            .into_iter()
            .map(|c| {
                let panics = fault_map.get(&c).map_or(0, |f| f.panics);
                (c, panics)
            })
            .collect()
    }

    /// The concerns of `method` currently quarantined by
    /// [`PanicPolicy::Quarantine`], in registration order.
    pub fn quarantined_concerns(&self, method: &MethodHandle) -> Vec<Concern> {
        let r = self.resolve(method);
        let state = r.cell.state.lock();
        let fault_map = &state.faults[r.slot.as_usize()];
        state
            .bank
            .concerns(r.slot)
            .into_iter()
            .filter(|c| fault_map.get(c).is_some_and(|f| f.quarantined))
            .collect()
    }

    /// Index of the `pos`-th aspect (of `n`) in precondition order.
    #[inline]
    fn pre_index(&self, pos: usize, n: usize) -> usize {
        match self.ordering {
            OrderingPolicy::Nested => n - 1 - pos,
            OrderingPolicy::Declaration => pos,
        }
    }

    /// Index of the `pos`-th aspect (of `n`) in postaction order —
    /// the reverse of the precondition order (proper nesting).
    #[inline]
    fn post_index(&self, pos: usize, n: usize) -> usize {
        match self.ordering {
            OrderingPolicy::Nested => pos,
            OrderingPolicy::Declaration => n - 1 - pos,
        }
    }

    /// Records one contained aspect panic: bumps the counters and the
    /// slot's fault entry, emits [`EventKind::PanicCaught`], and — under
    /// [`PanicPolicy::Quarantine`] — disables the slot once its budget
    /// is spent. Quarantining shortens the effective chain exactly like
    /// `deregister`, so the method's own waiters are woken (full sweep
    /// under Fifo) to re-evaluate. The caller must hold the cell lock.
    #[allow(clippy::too_many_arguments)]
    fn note_panic(
        &self,
        fault_map: &mut HashMap<Concern, SlotFault>,
        queue: &mut FifoQueue,
        cond: &Condvar,
        method: &MethodId,
        concern: &Concern,
        invocation: u64,
        stats: &StatShard,
    ) {
        inc(&stats.panics_caught);
        self.emit(
            invocation,
            method,
            Some(concern.clone()),
            EventKind::PanicCaught,
        );
        let entry = fault_map.entry(concern.clone()).or_default();
        entry.panics = entry.panics.saturating_add(1);
        if let PanicPolicy::Quarantine { after } = self.panic_policy {
            if !entry.quarantined && entry.panics >= after {
                entry.quarantined = true;
                inc(&stats.quarantined_aspects);
                self.emit(
                    invocation,
                    method,
                    Some(concern.clone()),
                    EventKind::AspectQuarantined,
                );
                if self.fairness == FairnessPolicy::Fifo {
                    queue.wake(WakeMode::NotifyAll);
                }
                cond.notify_all();
            }
        }
    }

    /// Whether `concern`'s slot has been quarantined (always false under
    /// policies other than [`PanicPolicy::Quarantine`], which never set
    /// the flag).
    fn is_quarantined(fault_map: &HashMap<Concern, SlotFault>, concern: &Concern) -> bool {
        fault_map.get(concern).is_some_and(|f| f.quarantined)
    }

    /// Builds the error for a chain that ended in `Aborted`: a contained
    /// panic surfaces as [`AbortError::AspectPanicked`], a
    /// [`Verdict::Abort`] as [`AbortError::Aspect`].
    fn abort_error(
        method: &MethodId,
        concern: Concern,
        reason: crate::verdict::AbortReason,
        panicked: bool,
    ) -> AbortError {
        if panicked {
            AbortError::AspectPanicked {
                method: method.clone(),
                concern,
                message: reason.message().to_string(),
            }
        } else {
            AbortError::Aspect {
                method: method.clone(),
                concern,
                reason,
            }
        }
    }

    /// Delivers `on_cancel` to every aspect in a method's row (the
    /// timeout path), with containment per policy: quarantined slots are
    /// skipped and a panicking `on_cancel` is caught and counted so the
    /// remaining aspects still see the cancellation.
    fn cancel_all(
        &self,
        state: &mut CellState,
        slot: MethodIndex,
        method: &MethodId,
        ctx: &InvocationContext,
        cond: &Condvar,
        stats: &StatShard,
    ) {
        let contain = self.panic_policy != PanicPolicy::Propagate;
        let CellState {
            bank,
            queues,
            faults,
            ..
        } = state;
        let row = bank.row_mut(slot);
        let queue = &mut queues[slot.as_usize()];
        let fault_map = &mut faults[slot.as_usize()];
        for (concern, aspect) in row.aspects.iter_mut() {
            if contain && Self::is_quarantined(fault_map, concern) {
                continue;
            }
            let delivered = if contain {
                catch_unwind(AssertUnwindSafe(|| aspect.on_cancel(ctx))).is_ok()
            } else {
                aspect.on_cancel(ctx);
                true
            };
            if !delivered {
                let concern = concern.clone();
                self.note_panic(
                    fault_map,
                    queue,
                    cond,
                    method,
                    &concern,
                    ctx.invocation(),
                    stats,
                );
            }
        }
    }

    /// One pass over the chain, under the method's cell lock. On
    /// `Blocked` or `Aborted`, earlier-resumed aspects have been released
    /// per policy and the release count is reported in the outcome.
    ///
    /// Under a containing [`PanicPolicy`] each precondition runs inside
    /// `catch_unwind`; a panic is treated as an abort at that position
    /// (same prefix rollback), and quarantined slots are skipped
    /// (evaluate as `Resume` without running).
    fn evaluate_chain(
        &self,
        state: &mut CellState,
        slot: MethodIndex,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        cond: &Condvar,
        stats: &StatShard,
    ) -> ChainOutcome {
        let n = state.bank.concern_count(slot);
        let traced = self.trace.is_some();
        let contain = self.panic_policy != PanicPolicy::Propagate;
        let CellState {
            bank,
            queues,
            faults,
            ..
        } = state;
        let row = bank.row_mut(slot);
        let queue = &mut queues[slot.as_usize()];
        let fault_map = &mut faults[slot.as_usize()];
        for pos in 0..n {
            let idx = self.pre_index(pos, n);
            let (concern, aspect) = &mut row.aspects[idx];
            if contain && Self::is_quarantined(fault_map, concern) {
                continue;
            }
            let verdict = if contain {
                match catch_unwind(AssertUnwindSafe(|| aspect.precondition(ctx))) {
                    Ok(v) => v,
                    Err(payload) => {
                        let concern = concern.clone();
                        let message = panic_message(payload.as_ref());
                        self.note_panic(
                            fault_map,
                            queue,
                            cond,
                            &method.id,
                            &concern,
                            ctx.invocation(),
                            stats,
                        );
                        // Same compensation path as a mid-chain Abort:
                        // unwind the already-evaluated prefix so no
                        // reservation leaks past the panic.
                        let released = self.release_prefix(
                            row,
                            fault_map,
                            queue,
                            cond,
                            pos,
                            n,
                            ctx,
                            ReleaseCause::Aborted,
                            stats,
                        );
                        return ChainOutcome::Aborted {
                            concern,
                            reason: crate::verdict::AbortReason::new(message),
                            released,
                            panicked: true,
                        };
                    }
                }
            } else {
                aspect.precondition(ctx)
            };
            match verdict {
                Verdict::Resume => {
                    if traced {
                        let concern = concern.clone();
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern),
                            EventKind::PreconditionResumed,
                        );
                    }
                }
                Verdict::Block => {
                    if traced {
                        let concern = concern.clone();
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern),
                            EventKind::PreconditionBlocked,
                        );
                    }
                    let released = self.release_prefix(
                        row,
                        fault_map,
                        queue,
                        cond,
                        pos,
                        n,
                        ctx,
                        ReleaseCause::Blocked,
                        stats,
                    );
                    return ChainOutcome::Blocked { released };
                }
                Verdict::Abort(reason) => {
                    let concern = concern.clone();
                    if traced {
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern.clone()),
                            EventKind::PreconditionAborted,
                        );
                    }
                    let released = self.release_prefix(
                        row,
                        fault_map,
                        queue,
                        cond,
                        pos,
                        n,
                        ctx,
                        ReleaseCause::Aborted,
                        stats,
                    );
                    return ChainOutcome::Aborted {
                        concern,
                        reason,
                        released,
                        panicked: false,
                    };
                }
            }
        }
        ChainOutcome::Resumed
    }

    /// Releases the `evaluated` already-resumed aspects (precondition
    /// positions `0..evaluated`) in reverse evaluation order — unwinding
    /// the onion. Returns the number of release deliveries attempted.
    ///
    /// Under a containing [`PanicPolicy`], quarantined slots are skipped
    /// (their precondition never ran in this pass, so there is nothing
    /// to undo) and a panicking `on_release` is caught and counted so
    /// the unwind still reaches every remaining aspect in the prefix.
    #[allow(clippy::too_many_arguments)]
    fn release_prefix(
        &self,
        row: &mut crate::bank::MethodRow,
        fault_map: &mut HashMap<Concern, SlotFault>,
        queue: &mut FifoQueue,
        cond: &Condvar,
        evaluated: usize,
        n: usize,
        ctx: &InvocationContext,
        cause: ReleaseCause,
        stats: &StatShard,
    ) -> usize {
        if self.rollback == RollbackPolicy::None {
            return 0;
        }
        let contain = self.panic_policy != PanicPolicy::Propagate;
        let mut attempted = 0;
        for pos in (0..evaluated).rev() {
            let idx = self.pre_index(pos, n);
            let (concern, aspect) = &mut row.aspects[idx];
            if contain && Self::is_quarantined(fault_map, concern) {
                continue;
            }
            attempted += 1;
            let delivered = if contain {
                catch_unwind(AssertUnwindSafe(|| aspect.on_release(ctx, cause))).is_ok()
            } else {
                aspect.on_release(ctx, cause);
                true
            };
            if delivered {
                inc(&stats.releases);
                if self.trace.is_some() {
                    self.emit(
                        ctx.invocation(),
                        ctx.method(),
                        Some(concern.clone()),
                        EventKind::AspectReleased,
                    );
                }
            } else {
                let concern = concern.clone();
                self.note_panic(
                    fault_map,
                    queue,
                    cond,
                    ctx.method(),
                    &concern,
                    ctx.invocation(),
                    stats,
                );
            }
        }
        attempted
    }

    /// Signals a method's *own* condvar (module docs: self-wake). The
    /// caller must hold that method's cell lock. Deliberately neither
    /// counted in [`ModeratorStats::notifications`] nor traced as
    /// [`EventKind::NotificationSent`]: `wire_wakes` semantics (and the
    /// tests pinning them) describe cross-method notifications only.
    ///
    /// Under [`FairnessPolicy::Fifo`] the wake is recorded as a queue
    /// permit first; the condvar broadcast only tells parked waiters to
    /// re-check their eligibility.
    fn wake_own(&self, state: &mut CellState, slot: MethodIndex, cond: &Condvar) {
        match self.fairness {
            FairnessPolicy::Barging => match self.wake_mode {
                WakeMode::NotifyAll => {
                    cond.notify_all();
                }
                WakeMode::NotifyOne => {
                    cond.notify_one();
                }
            },
            FairnessPolicy::Fifo => {
                state.queues[slot.as_usize()].wake(self.wake_mode);
                cond.notify_all();
            }
        }
    }

    /// Notifies the wait queues named by `targets`, signalling each
    /// target's condvar **while holding that target's cell lock** — the
    /// discipline that makes cross-method wakeups race-free (module
    /// docs). The caller must not hold any cell lock.
    fn notify_targets(
        &self,
        targets: &WakeTargets,
        stats: &StatShard,
        invocation: u64,
        source: &MethodId,
    ) {
        let resolved: Vec<(Arc<Cell>, MethodIndex, Arc<Condvar>, MethodId)> = {
            let registry = self.registry.read();
            let pick = |e: &MethodEntry| {
                (
                    Arc::clone(&e.cell),
                    e.slot,
                    Arc::clone(&e.cond),
                    e.id.clone(),
                )
            };
            match targets {
                WakeTargets::All => registry.entries.iter().map(pick).collect(),
                WakeTargets::Wired(t) => t
                    .iter()
                    .map(|ix| pick(&registry.entries[ix.as_usize()]))
                    .collect(),
            }
        };
        for (cell, slot, cond, target_id) in resolved {
            {
                let mut state = cell.state.lock();
                match self.fairness {
                    FairnessPolicy::Barging => match self.wake_mode {
                        WakeMode::NotifyAll => {
                            cond.notify_all();
                        }
                        WakeMode::NotifyOne => {
                            cond.notify_one();
                        }
                    },
                    FairnessPolicy::Fifo => {
                        state.queues[slot.as_usize()].wake(self.wake_mode);
                        cond.notify_all();
                    }
                }
                // Emit while still holding the target cell: the woken
                // waiter cannot log `WaitWoken` until it reacquires the
                // lock, keeping notify→woken ordered in the trace.
                if self.trace.is_some() {
                    self.emit(
                        invocation,
                        source,
                        None,
                        EventKind::NotificationSent(target_id),
                    );
                }
            }
            inc(&stats.notifications);
        }
    }

    /// Runs the pre-activation phase for one invocation, blocking until
    /// every registered aspect resumes.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] if any aspect's precondition aborts.
    pub fn preactivation(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> Result<(), AbortError> {
        self.preactivation_inner(method, ctx, None)
    }

    /// Like [`AspectModerator::preactivation`] but gives up after
    /// `timeout` spent blocked.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] on an aspect abort, [`AbortError::Timeout`]
    /// if the timeout elapses while blocked.
    pub fn preactivation_timeout(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        timeout: Duration,
    ) -> Result<(), AbortError> {
        self.preactivation_inner(method, ctx, Some(Instant::now() + timeout))
    }

    fn preactivation_inner(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        deadline: Option<Instant>,
    ) -> Result<(), AbortError> {
        let r = self.resolve(method);
        inc(&r.stats.preactivations);
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PreactivationStarted,
        );
        match self.fairness {
            FairnessPolicy::Barging => self.preactivation_barging(&r, method, ctx, deadline),
            FairnessPolicy::Fifo => self.preactivation_fifo(&r, method, ctx, deadline),
        }
    }

    fn preactivation_barging(
        &self,
        r: &Resolved,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        deadline: Option<Instant>,
    ) -> Result<(), AbortError> {
        let mut state = r.cell.state.lock();
        // Set on the first block; drives the wait histogram and the
        // queue-depth gauge.
        let mut blocked_at: Option<Instant> = None;
        loop {
            match self.evaluate_chain(&mut state, r.slot, method, ctx, &r.cond, &r.stats) {
                ChainOutcome::Resumed => {
                    if let Some(start) = blocked_at {
                        r.stats.note_unparked();
                        r.stats.record_wait(start.elapsed());
                    }
                    inc(&r.stats.resumes);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationResumed,
                    );
                    return Ok(());
                }
                ChainOutcome::Aborted {
                    concern,
                    reason,
                    released,
                    panicked,
                } => {
                    if blocked_at.is_some() {
                        r.stats.note_unparked();
                    }
                    inc(&r.stats.aborts);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationAborted,
                    );
                    let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                    if plan.is_some() {
                        self.wake_own(&mut state, r.slot, &r.cond);
                    }
                    drop(state);
                    if let Some(targets) = plan {
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                    }
                    return Err(Self::abort_error(&method.id, concern, reason, panicked));
                }
                ChainOutcome::Blocked { released } => {
                    inc(&r.stats.blocks);
                    if blocked_at.is_none() {
                        blocked_at = Some(Instant::now());
                        r.stats.note_parked();
                    }
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitStarted);
                    let mut backstop = None;
                    if released > 0 {
                        // Rollback notification: another method's chain
                        // may have blocked against the reservation this
                        // pass just rolled back. Wake our targets, then
                        // park with a short recheck backstop to close
                        // the unlocked window (module docs).
                        let targets = state.wakes[r.slot.as_usize()].clone();
                        self.wake_own(&mut state, r.slot, &r.cond);
                        drop(state);
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                        state = r.cell.state.lock();
                        backstop = Some(Instant::now() + ROLLBACK_RECHECK);
                    }
                    let wait_until = match (deadline, backstop) {
                        (Some(d), Some(b)) => Some(d.min(b)),
                        (Some(d), None) => Some(d),
                        (None, b) => b,
                    };
                    match wait_until {
                        None => r.cond.wait(&mut state),
                        Some(until) => {
                            let timed_out = r.cond.wait_until(&mut state, until).timed_out();
                            if timed_out && deadline.is_some_and(|d| Instant::now() >= d) {
                                r.stats.note_unparked();
                                inc(&r.stats.timeouts);
                                // Let enrollment-style aspects (admission
                                // queues) forget this invocation.
                                self.cancel_all(
                                    &mut state, r.slot, &method.id, ctx, &r.cond, &r.stats,
                                );
                                self.emit(
                                    ctx.invocation(),
                                    &method.id,
                                    None,
                                    EventKind::ActivationAborted,
                                );
                                return Err(AbortError::Timeout {
                                    method: method.id.clone(),
                                });
                            }
                        }
                    }
                    inc(&r.stats.wakeups);
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitWoken);
                }
            }
        }
    }

    /// Pre-activation under [`FairnessPolicy::Fifo`].
    ///
    /// The caller evaluates its chain only while holding a *grant*: its
    /// first pass with an empty queue, a queue permit naming its ticket
    /// (head signal or sweep cursor), or the rollback-recheck backstop.
    /// A caller arriving to a non-empty queue takes a ticket and parks
    /// without evaluating — even if its chain would resume — which is
    /// what prevents barging. Queue order equals ticket order equals
    /// park order, all maintained under the cell lock.
    ///
    /// On `Blocked { released > 0 }` the caller is already ticketed, so
    /// cross-cell notifications landing while the lock is dropped for
    /// the rollback notification persist as queue permits; its own
    /// re-check still uses the [`ROLLBACK_RECHECK`] backstop (an
    /// out-of-band grant, the one documented exception to strict FIFO),
    /// because granting itself a permit would let a head-of-queue
    /// rollback loop spin hot.
    fn preactivation_fifo(
        &self,
        r: &Resolved,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        deadline: Option<Instant>,
    ) -> Result<(), AbortError> {
        let slot = r.slot.as_usize();
        let mut state = r.cell.state.lock();
        let mut ticket: Option<u64> = None;
        let mut blocked_at: Option<Instant> = None;
        let mut backstop: Option<Instant> = None;
        loop {
            let grant = match ticket {
                None => (!state.queues[slot].has_waiters()).then_some(Grant::First),
                Some(t) => state.queues[slot].grant_for(t).or_else(|| {
                    backstop
                        .is_some_and(|b| Instant::now() >= b)
                        .then_some(Grant::Backstop)
                }),
            };
            let Some(grant) = grant else {
                if ticket.is_none() {
                    // Barging prevention: earlier tickets are waiting,
                    // so this caller may not evaluate (and possibly
                    // reserve) ahead of them. Queue up and park.
                    ticket = Some(state.queues[slot].enqueue());
                    inc(&r.stats.blocks);
                    inc(&r.stats.tickets_issued);
                    r.stats.note_parked();
                    blocked_at = Some(Instant::now());
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitStarted);
                    continue;
                }
                let wait_until = match (deadline, backstop) {
                    (Some(d), Some(b)) => Some(d.min(b)),
                    (Some(d), None) => Some(d),
                    (None, b) => b,
                };
                match wait_until {
                    None => r.cond.wait(&mut state),
                    Some(until) => {
                        let timed_out = r.cond.wait_until(&mut state, until).timed_out();
                        if timed_out && deadline.is_some_and(|d| Instant::now() >= d) {
                            // Surrender the ticket. `cancel` re-attaches
                            // pending permits to the successor, so the
                            // cancellation strands nobody; broadcast so
                            // the new head notices its inheritance.
                            let q = &mut state.queues[slot];
                            q.cancel(ticket.expect("timed out while ticketed"));
                            if q.has_pending() && q.has_waiters() {
                                r.cond.notify_all();
                            }
                            r.stats.note_unparked();
                            inc(&r.stats.timeouts);
                            self.cancel_all(&mut state, r.slot, &method.id, ctx, &r.cond, &r.stats);
                            self.emit(
                                ctx.invocation(),
                                &method.id,
                                None,
                                EventKind::ActivationAborted,
                            );
                            return Err(AbortError::Timeout {
                                method: method.id.clone(),
                            });
                        }
                    }
                }
                continue;
            };
            if ticket.is_some() {
                inc(&r.stats.wakeups);
                self.emit(ctx.invocation(), &method.id, None, EventKind::WaitWoken);
            }
            if grant == Grant::Backstop {
                // One out-of-band re-check per arming; re-armed below
                // only if this evaluation rolls back again.
                backstop = None;
            }
            match self.evaluate_chain(&mut state, r.slot, method, ctx, &r.cond, &r.stats) {
                ChainOutcome::Resumed => {
                    if let Some(t) = ticket {
                        let q = &mut state.queues[slot];
                        q.settle(t, grant, true);
                        inc(&r.stats.tickets_served);
                        r.stats.note_unparked();
                        if q.has_pending() && q.has_waiters() {
                            r.cond.notify_all();
                        }
                    }
                    if let Some(start) = blocked_at {
                        r.stats.record_wait(start.elapsed());
                    }
                    inc(&r.stats.resumes);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationResumed,
                    );
                    return Ok(());
                }
                ChainOutcome::Aborted {
                    concern,
                    reason,
                    released,
                    panicked,
                } => {
                    if let Some(t) = ticket {
                        let q = &mut state.queues[slot];
                        q.settle(t, grant, true);
                        r.stats.note_unparked();
                        if q.has_pending() && q.has_waiters() {
                            r.cond.notify_all();
                        }
                    }
                    inc(&r.stats.aborts);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationAborted,
                    );
                    let plan = (released > 0).then(|| state.wakes[slot].clone());
                    if plan.is_some() {
                        self.wake_own(&mut state, r.slot, &r.cond);
                    }
                    drop(state);
                    if let Some(targets) = plan {
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                    }
                    return Err(Self::abort_error(&method.id, concern, reason, panicked));
                }
                ChainOutcome::Blocked { released } => {
                    match ticket {
                        Some(t) => state.queues[slot].settle(t, grant, false),
                        None => {
                            ticket = Some(state.queues[slot].enqueue());
                            inc(&r.stats.tickets_issued);
                            r.stats.note_parked();
                            blocked_at = Some(Instant::now());
                        }
                    }
                    inc(&r.stats.blocks);
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitStarted);
                    if released > 0 {
                        // Rollback notification (module docs). No
                        // own-queue permit: our successors cannot pass
                        // us anyway, and self-granting would make a
                        // blocked queue head spin on its own rollback.
                        let targets = state.wakes[slot].clone();
                        drop(state);
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                        state = r.cell.state.lock();
                        backstop = Some(Instant::now() + ROLLBACK_RECHECK);
                    }
                }
            }
        }
    }

    /// Non-blocking pre-activation: evaluates the chain once and
    /// returns `Ok(false)` instead of parking if any aspect blocks
    /// (earlier reservations are rolled back per policy). `Ok(true)`
    /// means the activation resumed and post-activation is owed.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] if an aspect's precondition aborts.
    pub fn try_preactivation(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> Result<bool, AbortError> {
        let r = self.resolve(method);
        inc(&r.stats.preactivations);
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PreactivationStarted,
        );
        let state = r.cell.state.lock();
        let mut state = state;
        if self.fairness == FairnessPolicy::Fifo && state.queues[r.slot.as_usize()].has_waiters() {
            // Barging prevention applies to the non-blocking form too:
            // evaluating (and possibly reserving) ahead of ticketed
            // waiters would be exactly the overtake Fifo forbids.
            inc(&r.stats.would_blocks);
            self.emit(
                ctx.invocation(),
                &method.id,
                None,
                EventKind::ActivationAborted,
            );
            return Ok(false);
        }
        match self.evaluate_chain(&mut state, r.slot, method, ctx, &r.cond, &r.stats) {
            ChainOutcome::Resumed => {
                inc(&r.stats.resumes);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationResumed,
                );
                Ok(true)
            }
            ChainOutcome::Blocked { released } => {
                // Would block: the chain already rolled back. Counted as
                // a would-block, not an abort — the caller chose not to
                // park; no aspect vetoed anything.
                inc(&r.stats.would_blocks);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationAborted,
                );
                let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                if plan.is_some() {
                    self.wake_own(&mut state, r.slot, &r.cond);
                }
                drop(state);
                if let Some(targets) = plan {
                    self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                }
                Ok(false)
            }
            ChainOutcome::Aborted {
                concern,
                reason,
                released,
                panicked,
            } => {
                inc(&r.stats.aborts);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationAborted,
                );
                let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                if plan.is_some() {
                    self.wake_own(&mut state, r.slot, &r.cond);
                }
                drop(state);
                if let Some(targets) = plan {
                    self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                }
                Err(Self::abort_error(&method.id, concern, reason, panicked))
            }
        }
    }

    /// Runs the post-activation phase: every aspect's postaction (in
    /// reverse precondition order) under the method's cell lock, then —
    /// after releasing it — notifies the wait queues wired for this
    /// method under the notify-while-locking-target discipline.
    ///
    /// Under a containing [`PanicPolicy`] a panicking postaction is
    /// caught and counted; the remaining postactions still run and the
    /// activation is still released (post-activation completes, waiters
    /// are notified), so one bad postaction cannot leak the activation.
    pub fn postactivation(&self, method: &MethodHandle, ctx: &mut InvocationContext) {
        let r = self.resolve(method);
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PostactivationStarted,
        );
        let targets = {
            let mut state = r.cell.state.lock();
            let n = state.bank.concern_count(r.slot);
            let traced = self.trace.is_some();
            let contain = self.panic_policy != PanicPolicy::Propagate;
            {
                let CellState {
                    bank,
                    queues,
                    faults,
                    ..
                } = &mut *state;
                let row = bank.row_mut(r.slot);
                let queue = &mut queues[r.slot.as_usize()];
                let fault_map = &mut faults[r.slot.as_usize()];
                for pos in 0..n {
                    let idx = self.post_index(pos, n);
                    let (concern, aspect) = &mut row.aspects[idx];
                    if contain && Self::is_quarantined(fault_map, concern) {
                        continue;
                    }
                    let delivered = if contain {
                        catch_unwind(AssertUnwindSafe(|| aspect.postaction(ctx))).is_ok()
                    } else {
                        aspect.postaction(ctx);
                        true
                    };
                    if delivered {
                        if traced {
                            let concern = concern.clone();
                            self.emit(
                                ctx.invocation(),
                                &method.id,
                                Some(concern),
                                EventKind::PostactionRun,
                            );
                        }
                    } else {
                        let concern = concern.clone();
                        self.note_panic(
                            fault_map,
                            queue,
                            &r.cond,
                            &method.id,
                            &concern,
                            ctx.invocation(),
                            &r.stats,
                        );
                    }
                }
            }
            inc(&r.stats.postactivations);
            // Postactions may have freed what this method's own waiters
            // block on (active flags, slots): wake them too (module
            // docs: self-wake). `wire_wakes` only governs other queues.
            self.wake_own(&mut state, r.slot, &r.cond);
            state.wakes[r.slot.as_usize()].clone()
        };
        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
    }

    /// Emits the `MethodInvoked` trace event (Figure 3's `open(ticket)`
    /// arrow) on behalf of a proxy between the two phases.
    #[doc(hidden)]
    pub fn trace_method_invoked(&self, method: &MethodHandle, invocation: u64) {
        self.emit(invocation, &method.id, None, EventKind::MethodInvoked);
    }

    /// Runs `f` with mutable access to the aspect registered under
    /// (method, concern), under the method's cell lock. Administrative
    /// escape hatch for inspecting or adjusting aspect state.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn with_aspect<R>(
        &self,
        method: &MethodHandle,
        concern: &Concern,
        f: impl FnOnce(&mut dyn Aspect) -> R,
    ) -> Result<R, RegistrationError> {
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        match state.bank.aspect_mut(r.slot, concern) {
            Some(aspect) => Ok(f(aspect)),
            None => Err(RegistrationError::UnknownConcern {
                method: method.id.clone(),
                concern: concern.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::{FnAspect, NoopAspect};
    use crate::trace::MemoryTrace;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
    use std::thread;

    fn ctx_for(moderator: &AspectModerator, m: &MethodHandle) -> InvocationContext {
        InvocationContext::new(m.id().clone(), moderator.next_invocation())
    }

    #[test]
    fn declare_method_is_idempotent() {
        let m = AspectModerator::new();
        let a = m.declare_method(MethodId::new("open"));
        let b = m.declare_method(MethodId::new("open"));
        assert_eq!(a, b);
        assert_eq!(m.methods(), vec![MethodId::new("open")]);
    }

    #[test]
    fn method_lookup() {
        let m = AspectModerator::new();
        assert!(m.method(&MethodId::new("open")).is_none());
        let h = m.declare_method(MethodId::new("open"));
        assert_eq!(m.method(&MethodId::new("open")), Some(h));
    }

    #[test]
    fn empty_chain_resumes_immediately() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let s = m.stats();
        assert_eq!(s.preactivations, 1);
        assert_eq!(s.resumes, 1);
        assert_eq!(s.postactivations, 1);
        assert_eq!(s.blocks, 0);
    }

    #[test]
    fn abort_surfaces_concern_and_reason() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::authentication(),
            Box::new(FnAspect::new("deny").on_precondition(|_| Verdict::abort("no token"))),
        )
        .unwrap();
        let mut ctx = ctx_for(&m, &open);
        let err = m.preactivation(&open, &mut ctx).unwrap_err();
        match err {
            AbortError::Aspect {
                method,
                concern,
                reason,
            } => {
                assert_eq!(method.as_str(), "open");
                assert_eq!(concern, Concern::authentication());
                assert_eq!(reason.message(), "no token");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.stats().aborts, 1);
    }

    #[test]
    fn blocked_caller_resumes_after_postactivation() {
        let m = Arc::new(AspectModerator::new());
        let open = m.declare_method(MethodId::new("open"));
        let assign = m.declare_method(MethodId::new("assign"));
        // `assign` blocks until one `open` has completed (item count > 0).
        let items = Arc::new(AtomicU64::new(0));
        {
            let items = Arc::clone(&items);
            m.register(
                &assign,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    Verdict::resume_if(items.load(AtomicOrdering::SeqCst) > 0)
                })),
            )
            .unwrap();
        }
        let consumer = {
            let m = Arc::clone(&m);
            let assign = assign.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &assign);
                m.preactivation(&assign, &mut ctx).unwrap();
                m.postactivation(&assign, &mut ctx);
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // Produce: run open's (empty) activation; its postactivation
        // notifies all queues.
        items.store(1, AtomicOrdering::SeqCst);
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        consumer.join().unwrap();
        let s = m.stats();
        assert!(s.blocks >= 1);
        assert!(s.wakeups >= 1);
        assert_eq!(s.resumes, 2);
    }

    #[test]
    fn timeout_aborts_blocked_caller() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::synchronization(),
            Box::new(FnAspect::new("never").on_precondition(|_| Verdict::Block)),
        )
        .unwrap();
        let mut ctx = ctx_for(&m, &open);
        let err = m
            .preactivation_timeout(&open, &mut ctx, Duration::from_millis(20))
            .unwrap_err();
        assert!(err.is_timeout());
        assert_eq!(m.stats().timeouts, 1);
    }

    #[test]
    fn nested_ordering_runs_newest_pre_first_and_post_last() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::new(); // Nested default
        let open = m.declare_method(MethodId::new("open"));
        for (name, pre_tag, post_tag) in [
            ("sync", "sync-pre", "sync-post"),
            ("auth", "auth-pre", "auth-post"),
        ] {
            let l1 = Arc::clone(&log);
            let l2 = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(
                    FnAspect::new(name)
                        .on_precondition(move |_| {
                            l1.lock().push(pre_tag);
                            Verdict::Resume
                        })
                        .on_postaction(move |_| l2.lock().push(post_tag)),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        // auth registered last => wraps sync (paper Figure 14).
        assert_eq!(
            *log.lock(),
            vec!["auth-pre", "sync-pre", "sync-post", "auth-post"]
        );
    }

    #[test]
    fn declaration_ordering_runs_oldest_pre_first() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::builder()
            .ordering(OrderingPolicy::Declaration)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        for name in ["first", "second"] {
            let l = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(FnAspect::new(name).on_precondition(move |_| {
                    l.lock().push(name);
                    Verdict::Resume
                })),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        assert_eq!(*log.lock(), vec!["first", "second"]);
    }

    #[test]
    fn declaration_ordering_posts_newest_first() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::builder()
            .ordering(OrderingPolicy::Declaration)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        for (name, tag) in [("first", "first-post"), ("second", "second-post")] {
            let l = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(FnAspect::new(name).on_postaction(move |_| l.lock().push(tag))),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        // Declaration: pre oldest-first, so post (its reverse) is
        // newest-first.
        assert_eq!(*log.lock(), vec!["second-post", "first-post"]);
    }

    #[test]
    fn rollback_releases_earlier_resumed_aspects() {
        let released = Arc::new(AtomicU64::new(0));
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        // Under Nested ordering, "outer" (registered second) runs first.
        {
            let released = Arc::clone(&released);
            m.register(
                &open,
                Concern::new("inner-abort"),
                Box::new(FnAspect::new("inner").on_precondition(|_| Verdict::abort("nope"))),
            )
            .unwrap();
            m.register(
                &open,
                Concern::new("outer-reserve"),
                Box::new(
                    FnAspect::new("outer")
                        .on_precondition(|_| Verdict::Resume)
                        .on_release_do(move |_, cause| {
                            assert_eq!(cause, ReleaseCause::Aborted);
                            released.fetch_add(1, AtomicOrdering::SeqCst);
                        }),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).is_err());
        assert_eq!(released.load(AtomicOrdering::SeqCst), 1);
        assert_eq!(m.stats().releases, 1);
    }

    #[test]
    fn rollback_none_skips_release() {
        let released = Arc::new(AtomicU64::new(0));
        let m = AspectModerator::builder()
            .rollback(RollbackPolicy::None)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        {
            let released = Arc::clone(&released);
            m.register(
                &open,
                Concern::new("inner-abort"),
                Box::new(FnAspect::new("inner").on_precondition(|_| Verdict::abort("nope"))),
            )
            .unwrap();
            m.register(
                &open,
                Concern::new("outer-reserve"),
                Box::new(
                    FnAspect::new("outer")
                        .on_precondition(|_| Verdict::Resume)
                        .on_release_do(move |_, _| {
                            released.fetch_add(1, AtomicOrdering::SeqCst);
                        }),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).is_err());
        assert_eq!(released.load(AtomicOrdering::SeqCst), 0);
        assert_eq!(m.stats().releases, 0);
    }

    #[test]
    fn wire_wakes_restricts_notifications() {
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let assign = m.declare_method(MethodId::new("assign"));
        m.wire_wakes(&open, std::slice::from_ref(&assign));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let notifications: Vec<_> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::NotificationSent(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(notifications, vec![MethodId::new("assign")]);
    }

    #[test]
    fn default_wakes_notify_every_queue() {
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let _assign = m.declare_method(MethodId::new("assign"));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let count = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NotificationSent(_)))
            .count();
        assert_eq!(count, 2, "both queues notified under WakeTargets::All");
    }

    #[test]
    fn register_from_factory_creates_and_registers() {
        use crate::factory::RegistryFactory;
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let mut factory = RegistryFactory::new();
        factory.provide_for_concern(Concern::synchronization(), || Box::new(NoopAspect));
        m.register_from(&factory, &open, Concern::synchronization())
            .unwrap();
        assert_eq!(m.concerns(&open), vec![Concern::synchronization()]);
        // Figure 2: create precedes register.
        let kinds: Vec<_> = trace.events().into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::AspectCreated, EventKind::AspectRegistered]
        );
        // Unknown concern: factory refuses.
        let err = m
            .register_from(&factory, &open, Concern::quota())
            .unwrap_err();
        assert!(matches!(err, RegistrationError::FactoryRefused { .. }));
    }

    #[test]
    fn deregister_removes_and_wakes() {
        let m = Arc::new(AspectModerator::new());
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::synchronization(),
            Box::new(FnAspect::new("block-forever").on_precondition(|_| Verdict::Block)),
        )
        .unwrap();
        let waiter = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation(&open, &mut ctx)
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // Removing the blocking aspect lets the waiter resume on an empty
        // chain.
        let removed = m.deregister(&open, &Concern::synchronization()).unwrap();
        assert_eq!(removed.describe(), "block-forever");
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn with_aspect_gives_mut_access() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(&open, Concern::audit(), Box::new(FnAspect::new("a")))
            .unwrap();
        let name = m
            .with_aspect(&open, &Concern::audit(), |a| a.describe().to_string())
            .unwrap();
        assert_eq!(name, "a");
        assert!(m.with_aspect(&open, &Concern::quota(), |_| ()).is_err());
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_handle_is_rejected() {
        let m1 = AspectModerator::new();
        let m2 = AspectModerator::new();
        let h1 = m1.declare_method(MethodId::new("open"));
        let _h2 = m2.declare_method(MethodId::new("other"));
        let mut ctx = InvocationContext::new(h1.id().clone(), 1);
        // h1's index 0 exists on m2 but names a different method.
        let _ = m2.preactivation(&h1, &mut ctx);
    }

    #[test]
    fn invocation_numbers_are_monotonic() {
        let m = AspectModerator::new();
        let a = m.next_invocation();
        let b = m.next_invocation();
        assert!(b > a);
    }

    #[test]
    fn debug_output_mentions_shape() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(&open, Concern::audit(), Box::new(NoopAspect))
            .unwrap();
        let s = format!("{m:?}");
        assert!(s.contains("methods: 1"));
        assert!(s.contains("aspects: 1"));
    }

    #[test]
    fn notify_one_pipeline_completes() {
        // WakeMode::NotifyOne (Java's `notify()`, as in the paper) must
        // stay live for the producer/consumer pattern: every completion
        // frees exactly one opportunity, so waking one waiter suffices.
        let m = Arc::new(
            AspectModerator::builder()
                .wake_mode(WakeMode::NotifyOne)
                .build(),
        );
        let put = m.declare_method(MethodId::new("put"));
        let take = m.declare_method(MethodId::new("take"));
        m.wire_wakes(&put, std::slice::from_ref(&take));
        m.wire_wakes(&take, std::slice::from_ref(&put));
        let items = Arc::new(Mutex::new(0_u32));
        {
            let items = Arc::clone(&items);
            m.register(
                &put,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-full").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i < 1 {
                        *i += 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        {
            let items = Arc::clone(&items);
            m.register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i > 0 {
                        *i -= 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        let rounds = 500;
        let run = |method: MethodHandle, m: Arc<AspectModerator>| {
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &method);
                    m.preactivation(&method, &mut ctx).unwrap();
                    m.postactivation(&method, &mut ctx);
                }
            })
        };
        let p = run(put, Arc::clone(&m));
        let c = run(take, Arc::clone(&m));
        p.join().unwrap();
        c.join().unwrap();
        assert_eq!(*items.lock(), 0);
        assert_eq!(m.stats().resumes, rounds * 2);
    }

    /// A token-gated method plus a `tick` method whose postaction mints
    /// one token and whose post-activation notifies the gated queue —
    /// the harness for the FIFO tests below.
    fn gated(m: &AspectModerator, tokens: &Arc<AtomicU64>) -> (MethodHandle, MethodHandle) {
        let open = m.declare_method(MethodId::new("open"));
        let tick = m.declare_method(MethodId::new("tick"));
        {
            let tokens = Arc::clone(tokens);
            m.register(
                &open,
                Concern::synchronization(),
                Box::new(FnAspect::new("token-gate").on_precondition(move |_| {
                    if tokens.load(AtomicOrdering::SeqCst) > 0 {
                        tokens.fetch_sub(1, AtomicOrdering::SeqCst);
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        {
            let tokens = Arc::clone(tokens);
            m.register(
                &tick,
                Concern::new("mint"),
                Box::new(FnAspect::new("mint").on_postaction(move |_| {
                    tokens.fetch_add(1, AtomicOrdering::SeqCst);
                })),
            )
            .unwrap();
        }
        m.wire_wakes(&tick, std::slice::from_ref(&open));
        m.wire_wakes(&open, &[]);
        (open, tick)
    }

    fn fifo_grant_order(wake_mode: WakeMode) {
        let m = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .wake_mode(wake_mode)
                .build(),
        );
        let tokens = Arc::new(AtomicU64::new(0));
        let (open, tick) = gated(&m, &tokens);
        let order = Arc::new(Mutex::new(Vec::new()));
        let waiters = 4;
        let mut handles = Vec::new();
        for i in 0..waiters {
            let mc = Arc::clone(&m);
            let open = open.clone();
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                let mut ctx = ctx_for(&mc, &open);
                mc.preactivation(&open, &mut ctx).unwrap();
                order.lock().push(i);
                mc.postactivation(&open, &mut ctx);
            }));
            // Serialize arrival so park order is [0, 1, 2, 3].
            while m.stats().blocks < i + 1 {
                thread::yield_now();
            }
        }
        for served in 1..=waiters {
            let mut ctx = ctx_for(&m, &tick);
            m.preactivation(&tick, &mut ctx).unwrap();
            m.postactivation(&tick, &mut ctx);
            while (order.lock().len() as u64) < served {
                thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3], "grant order != park order");
        let s = m.stats();
        assert_eq!(s.tickets_issued, waiters);
        assert_eq!(s.tickets_served, waiters);
        assert_eq!(s.max_queue_depth, waiters);
        assert_eq!(s.wait_hist.count(), waiters);
    }

    #[test]
    fn fifo_serves_waiters_in_park_order_notify_one() {
        fifo_grant_order(WakeMode::NotifyOne);
    }

    #[test]
    fn fifo_serves_waiters_in_park_order_notify_all() {
        fifo_grant_order(WakeMode::NotifyAll);
    }

    #[test]
    fn fifo_newcomer_cannot_overtake_parked_waiter() {
        let m = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .build(),
        );
        let tokens = Arc::new(AtomicU64::new(0));
        let (open, tick) = gated(&m, &tokens);
        let order = Arc::new(Mutex::new(Vec::new()));
        let spawn_caller = |tag: &'static str| {
            let m = Arc::clone(&m);
            let open = open.clone();
            let order = Arc::clone(&order);
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation(&open, &mut ctx).unwrap();
                order.lock().push(tag);
                m.postactivation(&open, &mut ctx);
            })
        };
        let early = spawn_caller("early");
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // A token appears, but no notification is sent: the parked
        // waiter owns the queue head. A newcomer whose chain *would*
        // resume must queue behind it instead of taking the token.
        tokens.store(1, AtomicOrdering::SeqCst);
        let late = spawn_caller("late");
        while m.stats().blocks < 2 {
            thread::yield_now();
        }
        assert!(order.lock().is_empty(), "a caller ran before any grant");
        // Two ticks: each wakes the head and mints one more token.
        for _ in 0..2 {
            let mut ctx = ctx_for(&m, &tick);
            m.preactivation(&tick, &mut ctx).unwrap();
            m.postactivation(&tick, &mut ctx);
        }
        early.join().unwrap();
        late.join().unwrap();
        assert_eq!(*order.lock(), vec!["early", "late"]);
    }

    #[test]
    fn fifo_try_preactivation_respects_queue() {
        let m = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .build(),
        );
        let tokens = Arc::new(AtomicU64::new(0));
        let (open, _tick) = gated(&m, &tokens);
        let waiter = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation_timeout(&open, &mut ctx, Duration::from_secs(5))
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        tokens.store(1, AtomicOrdering::SeqCst);
        // The chain would resume, but an earlier ticket is parked:
        // try_preactivation must refuse rather than overtake.
        let mut ctx = ctx_for(&m, &open);
        assert!(!m.try_preactivation(&open, &mut ctx).unwrap());
        assert_eq!(m.stats().would_blocks, 1);
        assert_eq!(tokens.load(AtomicOrdering::SeqCst), 1, "token untouched");
        // Unblock the waiter so the test exits cleanly.
        m.deregister(&open, &Concern::synchronization()).unwrap();
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn fifo_timed_out_ticket_does_not_strand_successor() {
        let m = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .wake_mode(WakeMode::NotifyOne)
                .build(),
        );
        let tokens = Arc::new(AtomicU64::new(0));
        let (open, tick) = gated(&m, &tokens);
        // Head waiter gives up quickly...
        let head = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation_timeout(&open, &mut ctx, Duration::from_millis(30))
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // ...while a successor waits indefinitely behind it.
        let successor = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation(&open, &mut ctx).unwrap();
                m.postactivation(&open, &mut ctx);
            })
        };
        while m.stats().blocks < 2 {
            thread::yield_now();
        }
        let err = head.join().unwrap().unwrap_err();
        assert!(err.is_timeout());
        // One grant must now reach the successor, not the ghost of the
        // cancelled head ticket.
        let mut ctx = ctx_for(&m, &tick);
        m.preactivation(&tick, &mut ctx).unwrap();
        m.postactivation(&tick, &mut ctx);
        successor.join().unwrap();
        let s = m.stats();
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.tickets_issued, 2);
        assert_eq!(s.tickets_served, 1);
    }

    #[test]
    fn fifo_pipeline_stays_live() {
        // The capacity-1 producer/consumer hammer from
        // `notify_one_pipeline_completes`, under Fifo in both wake
        // modes: fairness must not cost liveness.
        for wake_mode in [WakeMode::NotifyOne, WakeMode::NotifyAll] {
            let m = Arc::new(
                AspectModerator::builder()
                    .fairness(FairnessPolicy::Fifo)
                    .wake_mode(wake_mode)
                    .build(),
            );
            let put = m.declare_method(MethodId::new("put"));
            let take = m.declare_method(MethodId::new("take"));
            m.wire_wakes(&put, std::slice::from_ref(&take));
            m.wire_wakes(&take, std::slice::from_ref(&put));
            let items = Arc::new(Mutex::new(0_u32));
            {
                let items = Arc::clone(&items);
                m.register(
                    &put,
                    Concern::synchronization(),
                    Box::new(FnAspect::new("not-full").on_precondition(move |_| {
                        let mut i = items.lock();
                        if *i < 1 {
                            *i += 1;
                            Verdict::Resume
                        } else {
                            Verdict::Block
                        }
                    })),
                )
                .unwrap();
            }
            {
                let items = Arc::clone(&items);
                m.register(
                    &take,
                    Concern::synchronization(),
                    Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                        let mut i = items.lock();
                        if *i > 0 {
                            *i -= 1;
                            Verdict::Resume
                        } else {
                            Verdict::Block
                        }
                    })),
                )
                .unwrap();
            }
            let rounds = 500;
            let run = |method: MethodHandle, m: Arc<AspectModerator>| {
                thread::spawn(move || {
                    for _ in 0..rounds {
                        let mut ctx = ctx_for(&m, &method);
                        m.preactivation(&method, &mut ctx).unwrap();
                        m.postactivation(&method, &mut ctx);
                    }
                })
            };
            let threads = [
                run(put.clone(), Arc::clone(&m)),
                run(put, Arc::clone(&m)),
                run(take.clone(), Arc::clone(&m)),
                run(take, Arc::clone(&m)),
            ];
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(*items.lock(), 0);
            assert_eq!(m.stats().resumes, rounds * 4);
        }
    }

    #[test]
    fn concurrent_producers_consumers_respect_capacity_one() {
        // A tiny end-to-end bounded-buffer built directly on the
        // moderator: capacity 1, shared counters in the aspects.
        struct Slots {
            used: u64,
        }
        let slots = Arc::new(Mutex::new(Slots { used: 0 }));
        let m = Arc::new(AspectModerator::new());
        let put = m.declare_method(MethodId::new("put"));
        let take = m.declare_method(MethodId::new("take"));
        {
            let s = Arc::clone(&slots);
            m.register(
                &put,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("not-full")
                        .on_precondition({
                            let s = Arc::clone(&s);
                            move |_| {
                                let mut s = s.lock();
                                if s.used < 1 {
                                    s.used += 1; // reserve
                                    Verdict::Resume
                                } else {
                                    Verdict::Block
                                }
                            }
                        })
                        .on_postaction(|_| {}),
                ),
            )
            .unwrap();
        }
        {
            let s = Arc::clone(&slots);
            m.register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    let mut s = s.lock();
                    if s.used > 0 {
                        s.used -= 1; // release
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        let rounds = 200;
        let producer = {
            let m = Arc::clone(&m);
            let put = put.clone();
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &put);
                    m.preactivation(&put, &mut ctx).unwrap();
                    m.postactivation(&put, &mut ctx);
                }
            })
        };
        let consumer = {
            let m = Arc::clone(&m);
            let take = take.clone();
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &take);
                    m.preactivation(&take, &mut ctx).unwrap();
                    m.postactivation(&take, &mut ctx);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert_eq!(slots.lock().used, 0);
        let s = m.stats();
        assert_eq!(s.resumes, rounds * 2);
    }

    #[test]
    fn propagate_policy_lets_aspect_panics_escape() {
        // The default policy adds no containment frame: the unwind
        // crosses preactivation untouched. Observed with an explicit
        // catch_unwind at the call site, not #[should_panic] — no test
        // may rely on an implicitly propagating aspect panic.
        let m = AspectModerator::new();
        assert_eq!(m.panic_policy(), PanicPolicy::Propagate);
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::new("bomb"),
            Box::new(FnAspect::new("bomb").on_precondition(|_| panic!("kaboom"))),
        )
        .unwrap();
        let mut ctx = ctx_for(&m, &open);
        let unwound =
            std::panic::catch_unwind(AssertUnwindSafe(|| m.preactivation(&open, &mut ctx)));
        assert!(unwound.is_err(), "panic must escape under Propagate");
        assert_eq!(m.stats().panics_caught, 0);
    }

    #[test]
    fn precondition_panic_aborts_and_rolls_back_prefix() {
        let released = Arc::new(AtomicU64::new(0));
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder()
            .panic_policy(PanicPolicy::AbortInvocation)
            .trace(trace.clone())
            .build();
        let open = m.declare_method(MethodId::new("open"));
        // Nested ordering: "reserve" (registered second) runs first, so
        // it has resumed by the time "bomb" panics.
        m.register(
            &open,
            Concern::new("bomb"),
            Box::new(FnAspect::new("bomb").on_precondition(|_| panic!("kaboom"))),
        )
        .unwrap();
        {
            let released = Arc::clone(&released);
            m.register(
                &open,
                Concern::new("reserve"),
                Box::new(
                    FnAspect::new("reserve")
                        .on_precondition(|_| Verdict::Resume)
                        .on_release_do(move |_, cause| {
                            assert_eq!(cause, ReleaseCause::Aborted);
                            released.fetch_add(1, AtomicOrdering::SeqCst);
                        }),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        let err = m.preactivation(&open, &mut ctx).unwrap_err();
        match &err {
            AbortError::AspectPanicked {
                method,
                concern,
                message,
            } => {
                assert_eq!(method.as_str(), "open");
                assert_eq!(concern.as_str(), "bomb");
                assert_eq!(message, "kaboom");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.is_panic());
        // Same compensation as a mid-chain Abort: the prefix unwound.
        assert_eq!(released.load(AtomicOrdering::SeqCst), 1);
        let s = m.stats();
        assert_eq!(s.panics_caught, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.releases, 1);
        assert_eq!(s.quarantined_aspects, 0, "AbortInvocation never disables");
        assert!(trace
            .events()
            .iter()
            .any(|e| e.kind == EventKind::PanicCaught));
        // The slot stays armed: the next activation panics again.
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).unwrap_err().is_panic());
        assert_eq!(
            m.panic_counts(&open),
            vec![(Concern::new("bomb"), 2), (Concern::new("reserve"), 0)]
        );
    }

    #[test]
    fn postaction_panic_finishes_chain_and_releases_activation() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::builder()
            .panic_policy(PanicPolicy::AbortInvocation)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        // Nested postaction order is registration order: the bomb runs
        // before "audit", which must still see the postaction.
        m.register(
            &open,
            Concern::new("bomb"),
            Box::new(FnAspect::new("bomb").on_postaction(|_| panic!("post kaboom"))),
        )
        .unwrap();
        {
            let log = Arc::clone(&log);
            m.register(
                &open,
                Concern::new("audit"),
                Box::new(FnAspect::new("audit").on_postaction(move |_| log.lock().push("audit"))),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        assert_eq!(*log.lock(), vec!["audit"]);
        let s = m.stats();
        assert_eq!(s.panics_caught, 1);
        assert_eq!(s.postactivations, 1, "activation still released");
        // The invocation as a whole succeeded — no abort was recorded.
        assert_eq!(s.aborts, 0);
    }

    #[test]
    fn quarantine_disables_slot_after_budget() {
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder()
            .panic_policy(PanicPolicy::Quarantine { after: 2 })
            .trace(trace.clone())
            .build();
        let open = m.declare_method(MethodId::new("open"));
        let runs = Arc::new(AtomicU64::new(0));
        {
            let runs = Arc::clone(&runs);
            m.register(
                &open,
                Concern::new("flaky"),
                Box::new(FnAspect::new("flaky").on_precondition(move |_| {
                    runs.fetch_add(1, AtomicOrdering::SeqCst);
                    panic!("always broken")
                })),
            )
            .unwrap();
        }
        for _ in 0..2 {
            let mut ctx = ctx_for(&m, &open);
            assert!(m.preactivation(&open, &mut ctx).unwrap_err().is_panic());
        }
        // Budget spent: the slot now evaluates as Resume without running.
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        assert_eq!(runs.load(AtomicOrdering::SeqCst), 2, "quarantined slot ran");
        let s = m.stats();
        assert_eq!(s.panics_caught, 2);
        assert_eq!(s.quarantined_aspects, 1);
        assert_eq!(s.resumes, 1);
        assert_eq!(m.panic_counts(&open), vec![(Concern::new("flaky"), 2)]);
        assert_eq!(m.quarantined_concerns(&open), vec![Concern::new("flaky")]);
        assert!(trace
            .events()
            .iter()
            .any(|e| e.kind == EventKind::AspectQuarantined));
    }

    #[test]
    fn quarantine_wakes_parked_waiter_barging() {
        // A waiter parked on a blocking aspect must be woken when that
        // aspect is quarantined out of the chain — quarantining shortens
        // the chain exactly like deregister, and the same wake applies.
        let m = Arc::new(
            AspectModerator::builder()
                .panic_policy(PanicPolicy::Quarantine { after: 1 })
                .build(),
        );
        let open = m.declare_method(MethodId::new("open"));
        let armed = Arc::new(AtomicU64::new(0));
        {
            let armed = Arc::clone(&armed);
            m.register(
                &open,
                Concern::new("gate"),
                Box::new(FnAspect::new("gate").on_precondition(move |_| {
                    if armed.load(AtomicOrdering::SeqCst) == 1 {
                        panic!("armed")
                    }
                    Verdict::Block
                })),
            )
            .unwrap();
        }
        let waiter = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation(&open, &mut ctx).unwrap();
                m.postactivation(&open, &mut ctx);
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // A second caller trips the panic; quarantine (budget 1) disables
        // the gate and must wake the parked waiter onto the empty chain.
        armed.store(1, AtomicOrdering::SeqCst);
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).unwrap_err().is_panic());
        armed.store(2, AtomicOrdering::SeqCst); // disarm; slot is dead anyway
        waiter.join().unwrap();
        let s = m.stats();
        assert_eq!(s.quarantined_aspects, 1);
        assert_eq!(s.resumes, 1);
    }

    #[test]
    fn quarantine_wakes_fifo_successor_after_head_panics() {
        // Fifo: the head waiter's re-evaluation panics and quarantines
        // the slot. The successor holds a later ticket and no grant is
        // in flight — only the quarantine wake (full sweep) frees it.
        let m = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .wake_mode(WakeMode::NotifyOne)
                .panic_policy(PanicPolicy::Quarantine { after: 1 })
                .build(),
        );
        let open = m.declare_method(MethodId::new("open"));
        let tick = m.declare_method(MethodId::new("tick"));
        m.wire_wakes(&tick, std::slice::from_ref(&open));
        m.wire_wakes(&open, &[]);
        let evals = Arc::new(AtomicU64::new(0));
        {
            let evals = Arc::clone(&evals);
            m.register(
                &open,
                Concern::new("flaky-gate"),
                Box::new(FnAspect::new("flaky-gate").on_precondition(move |_| {
                    // First evaluation parks the head; the re-evaluation
                    // after the tick's grant panics.
                    if evals.fetch_add(1, AtomicOrdering::SeqCst) == 0 {
                        Verdict::Block
                    } else {
                        panic!("flaky gate")
                    }
                })),
            )
            .unwrap();
        }
        let head = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation(&open, &mut ctx)
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        let successor = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation(&open, &mut ctx).unwrap();
                m.postactivation(&open, &mut ctx);
            })
        };
        while m.stats().blocks < 2 {
            thread::yield_now();
        }
        // Grant the head: its re-evaluation panics and quarantines the
        // gate; the successor must then resume on the shortened chain.
        let mut ctx = ctx_for(&m, &tick);
        m.preactivation(&tick, &mut ctx).unwrap();
        m.postactivation(&tick, &mut ctx);
        assert!(head.join().unwrap().unwrap_err().is_panic());
        successor.join().unwrap();
        let s = m.stats();
        assert_eq!(s.quarantined_aspects, 1);
        assert_eq!(s.panics_caught, 1);
    }

    #[test]
    fn contained_panic_never_leaks_reservation_or_strands_other_cell() {
        // The cross-cell regression: `put` reserves capacity, then a
        // later aspect in its chain panics. The rollback must release
        // the reservation (else capacity leaks) and the `take` waiter
        // parked on the *other* cell must still complete after a good
        // put — the PR-2 wake discipline under unwind.
        let m = Arc::new(
            AspectModerator::builder()
                .panic_policy(PanicPolicy::AbortInvocation)
                .build(),
        );
        let put = m.declare_method(MethodId::new("put"));
        let take = m.declare_method(MethodId::new("take"));
        m.wire_wakes(&put, std::slice::from_ref(&take));
        m.wire_wakes(&take, std::slice::from_ref(&put));
        let items = Arc::new(Mutex::new(0_u32));
        let armed = Arc::new(AtomicU64::new(1));
        // Nested ordering: "sync" (registered second) reserves before
        // "bomb" (registered first) runs — the panic lands mid-chain
        // with a reservation held.
        {
            let armed = Arc::clone(&armed);
            m.register(
                &put,
                Concern::new("bomb"),
                Box::new(FnAspect::new("bomb").on_precondition(move |_| {
                    if armed.load(AtomicOrdering::SeqCst) == 1 {
                        panic!("mid-chain")
                    }
                    Verdict::Resume
                })),
            )
            .unwrap();
        }
        {
            let items = Arc::clone(&items);
            let undo = Arc::clone(&items);
            m.register(
                &put,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("not-full")
                        .on_precondition(move |_| {
                            let mut i = items.lock();
                            if *i < 1 {
                                *i += 1;
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_release_do(move |_, _| {
                            *undo.lock() -= 1;
                        }),
                ),
            )
            .unwrap();
        }
        {
            let items = Arc::clone(&items);
            m.register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i > 0 {
                        *i -= 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        let consumer = {
            let m = Arc::clone(&m);
            let take = take.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &take);
                m.preactivation(&take, &mut ctx).unwrap();
                m.postactivation(&take, &mut ctx);
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // Panicking put: contained, reservation rolled back.
        let mut ctx = ctx_for(&m, &put);
        assert!(m.preactivation(&put, &mut ctx).unwrap_err().is_panic());
        assert_eq!(*items.lock(), 0, "reservation leaked past the panic");
        // A good put now fits in the capacity-1 buffer and frees the
        // parked consumer.
        armed.store(0, AtomicOrdering::SeqCst);
        let mut ctx = ctx_for(&m, &put);
        m.preactivation(&put, &mut ctx).unwrap();
        m.postactivation(&put, &mut ctx);
        consumer.join().unwrap();
        assert_eq!(*items.lock(), 0);
        assert_eq!(m.stats().panics_caught, 1);
    }

    #[test]
    fn cancel_panic_is_contained_and_chain_still_cancelled() {
        // A timeout delivers on_cancel to every aspect; a panicking
        // on_cancel must not rob the remaining aspects of theirs.
        let cancelled = Arc::new(AtomicU64::new(0));
        let m = AspectModerator::builder()
            .panic_policy(PanicPolicy::AbortInvocation)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::new("gate"),
            Box::new(FnAspect::new("gate").on_precondition(|_| Verdict::Block)),
        )
        .unwrap();
        m.register(
            &open,
            Concern::new("bomb"),
            Box::new(
                FnAspect::new("bomb")
                    .on_precondition(|_| Verdict::Resume)
                    .on_cancel_do(|_| panic!("cancel kaboom")),
            ),
        )
        .unwrap();
        {
            let cancelled = Arc::clone(&cancelled);
            m.register(
                &open,
                Concern::new("audit"),
                Box::new(FnAspect::new("audit").on_cancel_do(move |_| {
                    cancelled.fetch_add(1, AtomicOrdering::SeqCst);
                })),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        let err = m
            .preactivation_timeout(&open, &mut ctx, Duration::from_millis(20))
            .unwrap_err();
        assert!(err.is_timeout());
        assert_eq!(cancelled.load(AtomicOrdering::SeqCst), 1);
        assert_eq!(m.stats().panics_caught, 1);
    }
}

//! The aspect moderator: the coordination engine of the framework.
//!
//! The moderator owns the aspect registry and drives the paper's
//! protocol (Figure 11): *pre-activation* evaluates the preconditions of
//! every aspect registered for a participating method — blocking the
//! caller on the method's wait queue while any returns `BLOCKED`,
//! failing the activation if any returns `ABORT` — and *post-activation*
//! runs every aspect's postaction and notifies the wait queues of
//! dependent methods.
//!
//! # Locking model
//!
//! The paper's `synchronized` moderator serializes every activation of
//! every method behind one lock. This implementation **shards** that
//! coordination state into per-method *cells* (see [`Coordination`]):
//!
//! * Each declared method owns a cell — a mutex guarding its aspect
//!   chain and wake wiring — plus its own condition variable and a shard
//!   of atomic counters. Activations of *different* methods coordinate
//!   on different locks and proceed in parallel.
//! * One method's aspect chain is never evaluated concurrently with
//!   itself: the chain runs under the method's cell lock, so aspects
//!   still need no internal synchronization for per-method state.
//!   State shared *across* methods (e.g. the producer/consumer buffer
//!   counters of `amf-aspects`) must carry its own lock, as every
//!   aspect in this workspace already does.
//! * Moderator-global state is lock-free: the invocation counter is an
//!   atomic, stats are per-method atomic shards aggregated on read, and
//!   the method-name→index registry sits behind an `RwLock` that the
//!   hot path only ever read-locks (writes happen in `declare_method`).
//! * **Notify discipline**: post-activation runs postactions under its
//!   own cell, releases it, then signals each target method's condvar
//!   *while holding that target's cell lock*. A waiter holds its cell
//!   lock continuously from chain evaluation to parking, so a
//!   cross-method wakeup (open→assign) can never land in the window
//!   between "evaluated: blocked" and "parked" — it would have to wait
//!   for the cell lock first.
//! * **Rollback notification**: with sharding, another method's chain
//!   may observe a reservation that a blocked or aborted chain later
//!   rolls back (impossible under the single lock, where whole-chain
//!   evaluation was atomic). Whenever rollback releases at least one
//!   aspect, the moderator therefore notifies the method's wake targets
//!   — the rollback is semantically a mini post-activation — and a
//!   blocked caller that rolled back re-checks its chain on a short
//!   backstop interval to close the residual race.
//! * **Self-wake**: postactions (and rollbacks) mutate the very state a
//!   method's *own* waiters are guarded by — the paper's `ActiveOpen ==
//!   0` flag frees a fellow producer, not a consumer. Relying on the
//!   *other* method's next post-activation to deliver that wakeup
//!   deadlocks once that method has gone quiet (two producers, one
//!   parked on the active flag, after the last consumer finished). The
//!   moderator therefore always signals the method's own condvar after
//!   postactions and after a rollback that released a reservation.
//!   [`AspectModerator::wire_wakes`] restricts which *other* queues are
//!   notified; the self-wake is uncounted and untraced.
//!
//! Lock ordering is `registry → at most one cell`: no code path holds a
//! cell lock while acquiring the registry lock, and no path holds two
//! cell locks at once, so the lock graph is acyclic by construction.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as MemOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use crate::aspect::{Aspect, ReleaseCause};
use crate::bank::{AspectBank, MethodIndex};
use crate::concern::{Concern, MethodId};
use crate::context::InvocationContext;
use crate::error::{AbortError, RegistrationError};
use crate::factory::AspectFactory;
use crate::trace::{EventKind, TraceEvent, TraceSink};
use crate::verdict::Verdict;

/// How often a caller that blocked *after rolling back a reservation*
/// re-evaluates its chain while parked. This backstop closes the
/// sharded-moderator race where another method's chain observed the
/// transient reservation; see the module docs ("Rollback notification").
const ROLLBACK_RECHECK: Duration = Duration::from_millis(1);

/// In what order a method's aspects compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingPolicy {
    /// Later-registered aspects *wrap* earlier ones: preconditions run
    /// newest-first, postactions oldest-first. This matches the paper's
    /// adaptability example (Figure 14): authentication, registered by the
    /// extended proxy *after* synchronization, runs its precondition
    /// first and its postaction last.
    #[default]
    Nested,
    /// Aspects run in registration order on both phases' entry side:
    /// preconditions oldest-first, postactions newest-first.
    Declaration,
}

/// Which wait queues a method's post-activation notifies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum WakeTargets {
    /// Notify every declared method's queue (safe default).
    #[default]
    All,
    /// Notify exactly these methods' queues (the paper wires open→assign
    /// and assign→open by hand; [`AspectModerator::wire_wakes`] does the
    /// same declaratively).
    Wired(Vec<MethodIndex>),
}

/// How a notification wakes a method's waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WakeMode {
    /// Wake every waiter; each re-evaluates and possibly re-blocks.
    /// Never loses a wakeup (default).
    #[default]
    NotifyAll,
    /// Wake a single waiter per notification, like Java's `notify()` used
    /// in the paper. Cheaper under contention but can strand waiters when
    /// the woken thread re-blocks without progress; compared in
    /// experiment E6.
    NotifyOne,
}

/// Whether earlier-resumed aspects are rolled back (via
/// [`Aspect::on_release`]) when a later aspect in the chain blocks or
/// aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RollbackPolicy {
    /// Roll back (default; fixes the multi-aspect composition anomaly,
    /// see DESIGN.md and experiment E7).
    #[default]
    Release,
    /// Do not roll back — the paper's literal semantics.
    None,
}

/// How coordination state is laid out across participating methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Coordination {
    /// One coordination cell (lock + condvar + counters) per method:
    /// activations of disjoint methods proceed in parallel (default).
    #[default]
    Sharded,
    /// Every method shares a single cell, serializing all coordination
    /// behind one lock — the paper's `synchronized` moderator. Retained
    /// as the measured baseline for experiment E9; protocol semantics
    /// are identical (each method still has its own wait queue).
    GlobalLock,
}

/// Counters describing everything a moderator has done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeratorStats {
    /// Pre-activations started.
    pub preactivations: u64,
    /// Pre-activations that resumed (method allowed to run).
    pub resumes: u64,
    /// Times a caller parked on a wait queue.
    pub blocks: u64,
    /// Times a parked caller was woken.
    pub wakeups: u64,
    /// Notifications sent to wait queues by post-activations (and by
    /// rollback notifications, see the module docs).
    pub notifications: u64,
    /// Activations aborted by an aspect.
    pub aborts: u64,
    /// Non-blocking pre-activations that found the chain blocked and
    /// returned `Ok(false)` instead of parking
    /// ([`AspectModerator::try_preactivation`]).
    pub would_blocks: u64,
    /// Activations aborted by timeout.
    pub timeouts: u64,
    /// Post-activations completed.
    pub postactivations: u64,
    /// Rollback releases delivered to earlier-resumed aspects.
    pub releases: u64,
}

/// One method's shard of the moderator counters. Plain atomics: the hot
/// path updates them without any lock, [`AspectModerator::stats`]
/// aggregates the shards on read.
#[derive(Default)]
struct StatShard {
    preactivations: AtomicU64,
    resumes: AtomicU64,
    blocks: AtomicU64,
    wakeups: AtomicU64,
    notifications: AtomicU64,
    aborts: AtomicU64,
    would_blocks: AtomicU64,
    timeouts: AtomicU64,
    postactivations: AtomicU64,
    releases: AtomicU64,
}

fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, MemOrdering::Relaxed);
}

impl StatShard {
    fn snapshot(&self) -> ModeratorStats {
        ModeratorStats {
            preactivations: self.preactivations.load(MemOrdering::Relaxed),
            resumes: self.resumes.load(MemOrdering::Relaxed),
            blocks: self.blocks.load(MemOrdering::Relaxed),
            wakeups: self.wakeups.load(MemOrdering::Relaxed),
            notifications: self.notifications.load(MemOrdering::Relaxed),
            aborts: self.aborts.load(MemOrdering::Relaxed),
            would_blocks: self.would_blocks.load(MemOrdering::Relaxed),
            timeouts: self.timeouts.load(MemOrdering::Relaxed),
            postactivations: self.postactivations.load(MemOrdering::Relaxed),
            releases: self.releases.load(MemOrdering::Relaxed),
        }
    }

    fn add_into(&self, out: &mut ModeratorStats) {
        let s = self.snapshot();
        out.preactivations += s.preactivations;
        out.resumes += s.resumes;
        out.blocks += s.blocks;
        out.wakeups += s.wakeups;
        out.notifications += s.notifications;
        out.aborts += s.aborts;
        out.would_blocks += s.would_blocks;
        out.timeouts += s.timeouts;
        out.postactivations += s.postactivations;
        out.releases += s.releases;
    }
}

/// Handle to a declared participating method; obtained from
/// [`AspectModerator::declare_method`] and used for all per-method
/// operations.
///
/// Handles are cheap to clone and are only valid on the moderator that
/// issued them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodHandle {
    pub(crate) index: MethodIndex,
    pub(crate) id: MethodId,
}

impl MethodHandle {
    /// The method's identifier.
    pub fn id(&self) -> &MethodId {
        &self.id
    }

    /// The method's dense index in the issuing moderator's registry.
    pub fn index(&self) -> MethodIndex {
        self.index
    }
}

impl fmt::Display for MethodHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id.as_str())
    }
}

/// The mutable coordination state of one cell: the aspect rows (an
/// [`AspectBank`] with one row per hosted method — exactly one under
/// [`Coordination::Sharded`]) and each hosted method's wake wiring.
struct CellState {
    bank: AspectBank,
    /// Wake targets per local bank row, parallel to the bank's rows.
    wakes: Vec<WakeTargets>,
}

/// One coordination cell: the lock guarding a method's chain, wake
/// wiring and blocked callers. Under [`Coordination::GlobalLock`] a
/// single cell hosts every method.
struct Cell {
    state: Mutex<CellState>,
}

impl Cell {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(CellState {
                bank: AspectBank::new(),
                wakes: Vec::new(),
            }),
        })
    }
}

/// Registry entry for one declared method: which cell hosts it, at which
/// local row, plus its wait queue and stats shard.
struct MethodEntry {
    id: MethodId,
    cell: Arc<Cell>,
    /// The method's row index inside its cell's bank.
    slot: MethodIndex,
    cond: Arc<Condvar>,
    stats: Arc<StatShard>,
}

/// The read-mostly method registry. Write-locked only by
/// `declare_method`; every hot-path operation read-locks it briefly to
/// clone the `Arc`s out and then operates on the cell alone.
#[derive(Default)]
struct Registry {
    entries: Vec<MethodEntry>,
    by_id: HashMap<MethodId, usize>,
    /// The one shared cell under [`Coordination::GlobalLock`].
    shared_cell: Option<Arc<Cell>>,
}

impl Registry {
    fn check(&self, method: &MethodHandle) {
        assert!(
            self.entries
                .get(method.index.as_usize())
                .is_some_and(|e| e.id == method.id),
            "method handle `{}` does not belong to this moderator",
            method.id
        );
    }
}

/// A method's coordination handles, cloned out of the registry so the
/// hot path drops the registry read lock before touching the cell.
struct Resolved {
    cell: Arc<Cell>,
    slot: MethodIndex,
    cond: Arc<Condvar>,
    stats: Arc<StatShard>,
}

/// Configures and builds an [`AspectModerator`].
///
/// ```
/// use amf_core::{AspectModerator, OrderingPolicy, WakeMode};
/// use amf_core::trace::MemoryTrace;
///
/// let trace = MemoryTrace::shared();
/// let moderator = AspectModerator::builder()
///     .ordering(OrderingPolicy::Nested)
///     .wake_mode(WakeMode::NotifyAll)
///     .trace(trace)
///     .build();
/// # let _ = moderator;
/// ```
#[derive(Default)]
pub struct ModeratorBuilder {
    ordering: OrderingPolicy,
    wake_mode: WakeMode,
    rollback: RollbackPolicy,
    coordination: Coordination,
    trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for ModeratorBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModeratorBuilder")
            .field("ordering", &self.ordering)
            .field("wake_mode", &self.wake_mode)
            .field("rollback", &self.rollback)
            .field("coordination", &self.coordination)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

impl ModeratorBuilder {
    /// Sets the aspect composition order (default [`OrderingPolicy::Nested`]).
    #[must_use]
    pub fn ordering(mut self, ordering: OrderingPolicy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets how notifications wake waiters (default [`WakeMode::NotifyAll`]).
    #[must_use]
    pub fn wake_mode(mut self, mode: WakeMode) -> Self {
        self.wake_mode = mode;
        self
    }

    /// Sets the rollback policy (default [`RollbackPolicy::Release`]).
    #[must_use]
    pub fn rollback(mut self, rollback: RollbackPolicy) -> Self {
        self.rollback = rollback;
        self
    }

    /// Sets the coordination layout (default [`Coordination::Sharded`]).
    #[must_use]
    pub fn coordination(mut self, coordination: Coordination) -> Self {
        self.coordination = coordination;
        self
    }

    /// Attaches a protocol trace sink.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Builds the moderator.
    pub fn build(self) -> AspectModerator {
        AspectModerator {
            registry: RwLock::new(Registry::default()),
            invocations: AtomicU64::new(0),
            ordering: self.ordering,
            wake_mode: self.wake_mode,
            rollback: self.rollback,
            coordination: self.coordination,
            trace: self.trace,
        }
    }
}

/// The coordination engine: owns the aspect registry, evaluates pre/post
/// activation, parks and wakes callers.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use amf_core::{AspectModerator, Concern, FnAspect, InvocationContext, MethodId, Verdict};
///
/// let moderator = AspectModerator::new();
/// let open = moderator.declare_method(MethodId::new("open"));
///
/// // A capacity-1 "buffer" captured by the aspect.
/// moderator.register(
///     &open,
///     Concern::synchronization(),
///     Box::new(FnAspect::new("cap1").on_precondition({
///         let mut used = false;
///         move |_| { let v = Verdict::resume_if(!used); if !used { used = true; } v }
///     })),
/// ).unwrap();
///
/// let mut ctx = InvocationContext::new(open.id().clone(), moderator.next_invocation());
/// moderator.preactivation(&open, &mut ctx).unwrap();
/// // ... run the functional method here ...
/// moderator.postactivation(&open, &mut ctx);
/// ```
pub struct AspectModerator {
    registry: RwLock<Registry>,
    invocations: AtomicU64,
    ordering: OrderingPolicy,
    wake_mode: WakeMode,
    rollback: RollbackPolicy,
    coordination: Coordination,
    trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for AspectModerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let registry = self.registry.read();
        let aspects: usize = registry
            .entries
            .iter()
            .map(|e| e.cell.state.lock().bank.concern_count(e.slot))
            .sum();
        f.debug_struct("AspectModerator")
            .field("methods", &registry.entries.len())
            .field("aspects", &aspects)
            .field("ordering", &self.ordering)
            .field("wake_mode", &self.wake_mode)
            .field("rollback", &self.rollback)
            .field("coordination", &self.coordination)
            .finish()
    }
}

impl Default for AspectModerator {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one pass over a method's precondition chain. `released`
/// counts the rollback releases the pass performed; a non-zero count
/// obliges the caller to send a rollback notification (module docs).
enum ChainOutcome {
    Resumed,
    Blocked {
        released: usize,
    },
    Aborted {
        concern: Concern,
        reason: crate::verdict::AbortReason,
        released: usize,
    },
}

impl AspectModerator {
    /// Creates a moderator with default policies and no trace.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts configuring a moderator.
    pub fn builder() -> ModeratorBuilder {
        ModeratorBuilder::default()
    }

    /// Convenience: a default moderator already wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn emit(&self, invocation: u64, method: &MethodId, concern: Option<Concern>, kind: EventKind) {
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent {
                invocation,
                method: method.clone(),
                concern,
                kind,
            });
        }
    }

    /// Clones a method's coordination handles out of the registry.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this moderator.
    fn resolve(&self, method: &MethodHandle) -> Resolved {
        let registry = self.registry.read();
        registry.check(method);
        let entry = &registry.entries[method.index.as_usize()];
        Resolved {
            cell: Arc::clone(&entry.cell),
            slot: entry.slot,
            cond: Arc::clone(&entry.cond),
            stats: Arc::clone(&entry.stats),
        }
    }

    /// Declares a participating method; idempotent.
    pub fn declare_method(&self, id: MethodId) -> MethodHandle {
        let mut registry = self.registry.write();
        if let Some(&ix) = registry.by_id.get(&id) {
            return MethodHandle {
                index: MethodIndex(ix),
                id,
            };
        }
        let cell = match self.coordination {
            Coordination::Sharded => Cell::new(),
            Coordination::GlobalLock => {
                if registry.shared_cell.is_none() {
                    registry.shared_cell = Some(Cell::new());
                }
                Arc::clone(registry.shared_cell.as_ref().expect("just seeded"))
            }
        };
        let slot = {
            let mut state = cell.state.lock();
            let slot = state.bank.declare(id.clone());
            if state.wakes.len() < state.bank.method_count() {
                state.wakes.push(WakeTargets::All);
            }
            slot
        };
        let ix = registry.entries.len();
        registry.by_id.insert(id.clone(), ix);
        registry.entries.push(MethodEntry {
            id: id.clone(),
            cell,
            slot,
            cond: Arc::new(Condvar::new()),
            stats: Arc::new(StatShard::default()),
        });
        MethodHandle {
            index: MethodIndex(ix),
            id,
        }
    }

    /// Looks up the handle of an already-declared method.
    pub fn method(&self, id: &MethodId) -> Option<MethodHandle> {
        let registry = self.registry.read();
        registry.by_id.get(id).map(|&ix| MethodHandle {
            index: MethodIndex(ix),
            id: id.clone(),
        })
    }

    /// Declared method identifiers, in declaration order.
    pub fn methods(&self) -> Vec<MethodId> {
        self.registry
            .read()
            .entries
            .iter()
            .map(|e| e.id.clone())
            .collect()
    }

    /// Stores an aspect in the (method, concern) cell — the paper's
    /// `registerAspect`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::DuplicateConcern`] if the cell is occupied.
    pub fn register(
        &self,
        method: &MethodHandle,
        concern: Concern,
        aspect: Box<dyn Aspect>,
    ) -> Result<(), RegistrationError> {
        let r = self.resolve(method);
        {
            let mut state = r.cell.state.lock();
            state.bank.register(r.slot, concern.clone(), aspect)?;
        }
        self.emit(0, &method.id, Some(concern), EventKind::AspectRegistered);
        Ok(())
    }

    /// Asks `factory` to create the aspect for (method, concern) and
    /// registers it — the paper's initialization idiom
    /// `moderator.registerAspect(open, SYNC, factory.create(open, SYNC))`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::FactoryRefused`] if the factory returns no
    /// aspect, or [`RegistrationError::DuplicateConcern`] if the cell is
    /// occupied.
    pub fn register_from(
        &self,
        factory: &dyn AspectFactory,
        method: &MethodHandle,
        concern: Concern,
    ) -> Result<(), RegistrationError> {
        let aspect = factory.create(&method.id, &concern).ok_or_else(|| {
            RegistrationError::FactoryRefused {
                method: method.id.clone(),
                concern: concern.clone(),
            }
        })?;
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectCreated,
        );
        self.register(method, concern, aspect)
    }

    /// Removes and returns the aspect in the (method, concern) cell,
    /// waking all of the method's waiters so they re-evaluate against the
    /// shortened chain.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn deregister(
        &self,
        method: &MethodHandle,
        concern: &Concern,
    ) -> Result<Box<dyn Aspect>, RegistrationError> {
        let r = self.resolve(method);
        let aspect = {
            let mut state = r.cell.state.lock();
            let aspect = state.bank.deregister(r.slot, concern)?;
            // Notify while holding the cell lock: a waiter either is
            // already parked (woken now) or still holds the lock and
            // will re-evaluate against the shortened chain anyway.
            r.cond.notify_all();
            aspect
        };
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectDeregistered,
        );
        Ok(aspect)
    }

    /// The concerns registered for a method, in registration order.
    pub fn concerns(&self, method: &MethodHandle) -> Vec<Concern> {
        let r = self.resolve(method);
        let state = r.cell.state.lock();
        state.bank.concerns(r.slot)
    }

    /// Restricts which wait queues `method`'s post-activation notifies
    /// (default: all queues). The paper wires `open` → `assign`'s queue
    /// and vice versa.
    ///
    /// The method's *own* queue is always signalled after its
    /// postactions run, independent of this wiring (module docs:
    /// self-wake) — wiring governs cross-method notifications only.
    pub fn wire_wakes(&self, method: &MethodHandle, targets: &[MethodHandle]) {
        {
            let registry = self.registry.read();
            registry.check(method);
            for t in targets {
                registry.check(t);
            }
        }
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        state.wakes[r.slot.as_usize()] =
            WakeTargets::Wired(targets.iter().map(|t| t.index).collect());
    }

    /// Issues the next invocation number (used by proxies to build
    /// contexts).
    pub fn next_invocation(&self) -> u64 {
        self.invocations.fetch_add(1, MemOrdering::Relaxed) + 1
    }

    /// Snapshot of the moderator's counters, aggregated across every
    /// method's shard.
    pub fn stats(&self) -> ModeratorStats {
        let registry = self.registry.read();
        let mut out = ModeratorStats::default();
        for entry in &registry.entries {
            entry.stats.add_into(&mut out);
        }
        out
    }

    /// Snapshot of one method's shard of the counters. Notifications are
    /// credited to the sending method.
    pub fn method_stats(&self, method: &MethodHandle) -> ModeratorStats {
        self.resolve(method).stats.snapshot()
    }

    /// Index of the `pos`-th aspect (of `n`) in precondition order.
    #[inline]
    fn pre_index(&self, pos: usize, n: usize) -> usize {
        match self.ordering {
            OrderingPolicy::Nested => n - 1 - pos,
            OrderingPolicy::Declaration => pos,
        }
    }

    /// Index of the `pos`-th aspect (of `n`) in postaction order —
    /// the reverse of the precondition order (proper nesting).
    #[inline]
    fn post_index(&self, pos: usize, n: usize) -> usize {
        match self.ordering {
            OrderingPolicy::Nested => pos,
            OrderingPolicy::Declaration => n - 1 - pos,
        }
    }

    /// One pass over the chain, under the method's cell lock. On
    /// `Blocked` or `Aborted`, earlier-resumed aspects have been released
    /// per policy and the release count is reported in the outcome.
    fn evaluate_chain(
        &self,
        state: &mut CellState,
        slot: MethodIndex,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        stats: &StatShard,
    ) -> ChainOutcome {
        let n = state.bank.concern_count(slot);
        let traced = self.trace.is_some();
        let row = state.bank.row_mut(slot);
        for pos in 0..n {
            let idx = self.pre_index(pos, n);
            let (concern, aspect) = &mut row.aspects[idx];
            let verdict = aspect.precondition(ctx);
            match verdict {
                Verdict::Resume => {
                    if traced {
                        let concern = concern.clone();
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern),
                            EventKind::PreconditionResumed,
                        );
                    }
                }
                Verdict::Block => {
                    if traced {
                        let concern = concern.clone();
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern),
                            EventKind::PreconditionBlocked,
                        );
                    }
                    let released =
                        self.release_prefix(row, pos, n, ctx, ReleaseCause::Blocked, stats);
                    return ChainOutcome::Blocked { released };
                }
                Verdict::Abort(reason) => {
                    let concern = concern.clone();
                    if traced {
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern.clone()),
                            EventKind::PreconditionAborted,
                        );
                    }
                    let released =
                        self.release_prefix(row, pos, n, ctx, ReleaseCause::Aborted, stats);
                    return ChainOutcome::Aborted {
                        concern,
                        reason,
                        released,
                    };
                }
            }
        }
        ChainOutcome::Resumed
    }

    /// Releases the `evaluated` already-resumed aspects (precondition
    /// positions `0..evaluated`) in reverse evaluation order — unwinding
    /// the onion. Returns the number of releases delivered.
    fn release_prefix(
        &self,
        row: &mut crate::bank::MethodRow,
        evaluated: usize,
        n: usize,
        ctx: &InvocationContext,
        cause: ReleaseCause,
        stats: &StatShard,
    ) -> usize {
        if self.rollback == RollbackPolicy::None {
            return 0;
        }
        for pos in (0..evaluated).rev() {
            let idx = self.pre_index(pos, n);
            let (concern, aspect) = &mut row.aspects[idx];
            aspect.on_release(ctx, cause);
            inc(&stats.releases);
            if self.trace.is_some() {
                self.emit(
                    ctx.invocation(),
                    ctx.method(),
                    Some(concern.clone()),
                    EventKind::AspectReleased,
                );
            }
        }
        evaluated
    }

    /// Signals a method's *own* condvar (module docs: self-wake). The
    /// caller must hold that method's cell lock. Deliberately neither
    /// counted in [`ModeratorStats::notifications`] nor traced as
    /// [`EventKind::NotificationSent`]: `wire_wakes` semantics (and the
    /// tests pinning them) describe cross-method notifications only.
    fn wake_self(&self, cond: &Condvar) {
        match self.wake_mode {
            WakeMode::NotifyAll => {
                cond.notify_all();
            }
            WakeMode::NotifyOne => {
                cond.notify_one();
            }
        }
    }

    /// Notifies the wait queues named by `targets`, signalling each
    /// target's condvar **while holding that target's cell lock** — the
    /// discipline that makes cross-method wakeups race-free (module
    /// docs). The caller must not hold any cell lock.
    fn notify_targets(
        &self,
        targets: &WakeTargets,
        stats: &StatShard,
        invocation: u64,
        source: &MethodId,
    ) {
        let resolved: Vec<(Arc<Cell>, Arc<Condvar>, MethodId)> = {
            let registry = self.registry.read();
            let pick = |e: &MethodEntry| (Arc::clone(&e.cell), Arc::clone(&e.cond), e.id.clone());
            match targets {
                WakeTargets::All => registry.entries.iter().map(pick).collect(),
                WakeTargets::Wired(t) => t
                    .iter()
                    .map(|ix| pick(&registry.entries[ix.as_usize()]))
                    .collect(),
            }
        };
        for (cell, cond, target_id) in resolved {
            {
                let _state = cell.state.lock();
                match self.wake_mode {
                    WakeMode::NotifyAll => {
                        cond.notify_all();
                    }
                    WakeMode::NotifyOne => {
                        cond.notify_one();
                    }
                }
                // Emit while still holding the target cell: the woken
                // waiter cannot log `WaitWoken` until it reacquires the
                // lock, keeping notify→woken ordered in the trace.
                if self.trace.is_some() {
                    self.emit(
                        invocation,
                        source,
                        None,
                        EventKind::NotificationSent(target_id),
                    );
                }
            }
            inc(&stats.notifications);
        }
    }

    /// Runs the pre-activation phase for one invocation, blocking until
    /// every registered aspect resumes.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] if any aspect's precondition aborts.
    pub fn preactivation(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> Result<(), AbortError> {
        self.preactivation_inner(method, ctx, None)
    }

    /// Like [`AspectModerator::preactivation`] but gives up after
    /// `timeout` spent blocked.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] on an aspect abort, [`AbortError::Timeout`]
    /// if the timeout elapses while blocked.
    pub fn preactivation_timeout(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        timeout: Duration,
    ) -> Result<(), AbortError> {
        self.preactivation_inner(method, ctx, Some(Instant::now() + timeout))
    }

    fn preactivation_inner(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        deadline: Option<Instant>,
    ) -> Result<(), AbortError> {
        let r = self.resolve(method);
        inc(&r.stats.preactivations);
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PreactivationStarted,
        );
        let mut state = r.cell.state.lock();
        loop {
            match self.evaluate_chain(&mut state, r.slot, method, ctx, &r.stats) {
                ChainOutcome::Resumed => {
                    inc(&r.stats.resumes);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationResumed,
                    );
                    return Ok(());
                }
                ChainOutcome::Aborted {
                    concern,
                    reason,
                    released,
                } => {
                    inc(&r.stats.aborts);
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationAborted,
                    );
                    let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                    if plan.is_some() {
                        self.wake_self(&r.cond);
                    }
                    drop(state);
                    if let Some(targets) = plan {
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                    }
                    return Err(AbortError::Aspect {
                        method: method.id.clone(),
                        concern,
                        reason,
                    });
                }
                ChainOutcome::Blocked { released } => {
                    inc(&r.stats.blocks);
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitStarted);
                    let mut backstop = None;
                    if released > 0 {
                        // Rollback notification: another method's chain
                        // may have blocked against the reservation this
                        // pass just rolled back. Wake our targets, then
                        // park with a short recheck backstop to close
                        // the unlocked window (module docs).
                        let targets = state.wakes[r.slot.as_usize()].clone();
                        self.wake_self(&r.cond);
                        drop(state);
                        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                        state = r.cell.state.lock();
                        backstop = Some(Instant::now() + ROLLBACK_RECHECK);
                    }
                    let wait_until = match (deadline, backstop) {
                        (Some(d), Some(b)) => Some(d.min(b)),
                        (Some(d), None) => Some(d),
                        (None, b) => b,
                    };
                    match wait_until {
                        None => r.cond.wait(&mut state),
                        Some(until) => {
                            let timed_out = r.cond.wait_until(&mut state, until).timed_out();
                            if timed_out && deadline.is_some_and(|d| Instant::now() >= d) {
                                inc(&r.stats.timeouts);
                                // Let enrollment-style aspects (admission
                                // queues) forget this invocation.
                                let row = state.bank.row_mut(r.slot);
                                for (_, aspect) in row.aspects.iter_mut() {
                                    aspect.on_cancel(ctx);
                                }
                                self.emit(
                                    ctx.invocation(),
                                    &method.id,
                                    None,
                                    EventKind::ActivationAborted,
                                );
                                return Err(AbortError::Timeout {
                                    method: method.id.clone(),
                                });
                            }
                        }
                    }
                    inc(&r.stats.wakeups);
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitWoken);
                }
            }
        }
    }

    /// Non-blocking pre-activation: evaluates the chain once and
    /// returns `Ok(false)` instead of parking if any aspect blocks
    /// (earlier reservations are rolled back per policy). `Ok(true)`
    /// means the activation resumed and post-activation is owed.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] if an aspect's precondition aborts.
    pub fn try_preactivation(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> Result<bool, AbortError> {
        let r = self.resolve(method);
        inc(&r.stats.preactivations);
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PreactivationStarted,
        );
        let state = r.cell.state.lock();
        let mut state = state;
        match self.evaluate_chain(&mut state, r.slot, method, ctx, &r.stats) {
            ChainOutcome::Resumed => {
                inc(&r.stats.resumes);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationResumed,
                );
                Ok(true)
            }
            ChainOutcome::Blocked { released } => {
                // Would block: the chain already rolled back. Counted as
                // a would-block, not an abort — the caller chose not to
                // park; no aspect vetoed anything.
                inc(&r.stats.would_blocks);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationAborted,
                );
                let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                if plan.is_some() {
                    self.wake_self(&r.cond);
                }
                drop(state);
                if let Some(targets) = plan {
                    self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                }
                Ok(false)
            }
            ChainOutcome::Aborted {
                concern,
                reason,
                released,
            } => {
                inc(&r.stats.aborts);
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationAborted,
                );
                let plan = (released > 0).then(|| state.wakes[r.slot.as_usize()].clone());
                if plan.is_some() {
                    self.wake_self(&r.cond);
                }
                drop(state);
                if let Some(targets) = plan {
                    self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
                }
                Err(AbortError::Aspect {
                    method: method.id.clone(),
                    concern,
                    reason,
                })
            }
        }
    }

    /// Runs the post-activation phase: every aspect's postaction (in
    /// reverse precondition order) under the method's cell lock, then —
    /// after releasing it — notifies the wait queues wired for this
    /// method under the notify-while-locking-target discipline.
    pub fn postactivation(&self, method: &MethodHandle, ctx: &mut InvocationContext) {
        let r = self.resolve(method);
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PostactivationStarted,
        );
        let targets = {
            let mut state = r.cell.state.lock();
            let n = state.bank.concern_count(r.slot);
            let traced = self.trace.is_some();
            let row = state.bank.row_mut(r.slot);
            for pos in 0..n {
                let idx = self.post_index(pos, n);
                let (concern, aspect) = &mut row.aspects[idx];
                aspect.postaction(ctx);
                if traced {
                    let concern = concern.clone();
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        Some(concern),
                        EventKind::PostactionRun,
                    );
                }
            }
            inc(&r.stats.postactivations);
            // Postactions may have freed what this method's own waiters
            // block on (active flags, slots): wake them too (module
            // docs: self-wake). `wire_wakes` only governs other queues.
            self.wake_self(&r.cond);
            state.wakes[r.slot.as_usize()].clone()
        };
        self.notify_targets(&targets, &r.stats, ctx.invocation(), &method.id);
    }

    /// Emits the `MethodInvoked` trace event (Figure 3's `open(ticket)`
    /// arrow) on behalf of a proxy between the two phases.
    #[doc(hidden)]
    pub fn trace_method_invoked(&self, method: &MethodHandle, invocation: u64) {
        self.emit(invocation, &method.id, None, EventKind::MethodInvoked);
    }

    /// Runs `f` with mutable access to the aspect registered under
    /// (method, concern), under the method's cell lock. Administrative
    /// escape hatch for inspecting or adjusting aspect state.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn with_aspect<R>(
        &self,
        method: &MethodHandle,
        concern: &Concern,
        f: impl FnOnce(&mut dyn Aspect) -> R,
    ) -> Result<R, RegistrationError> {
        let r = self.resolve(method);
        let mut state = r.cell.state.lock();
        match state.bank.aspect_mut(r.slot, concern) {
            Some(aspect) => Ok(f(aspect)),
            None => Err(RegistrationError::UnknownConcern {
                method: method.id.clone(),
                concern: concern.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::{FnAspect, NoopAspect};
    use crate::trace::MemoryTrace;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
    use std::thread;

    fn ctx_for(moderator: &AspectModerator, m: &MethodHandle) -> InvocationContext {
        InvocationContext::new(m.id().clone(), moderator.next_invocation())
    }

    #[test]
    fn declare_method_is_idempotent() {
        let m = AspectModerator::new();
        let a = m.declare_method(MethodId::new("open"));
        let b = m.declare_method(MethodId::new("open"));
        assert_eq!(a, b);
        assert_eq!(m.methods(), vec![MethodId::new("open")]);
    }

    #[test]
    fn method_lookup() {
        let m = AspectModerator::new();
        assert!(m.method(&MethodId::new("open")).is_none());
        let h = m.declare_method(MethodId::new("open"));
        assert_eq!(m.method(&MethodId::new("open")), Some(h));
    }

    #[test]
    fn empty_chain_resumes_immediately() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let s = m.stats();
        assert_eq!(s.preactivations, 1);
        assert_eq!(s.resumes, 1);
        assert_eq!(s.postactivations, 1);
        assert_eq!(s.blocks, 0);
    }

    #[test]
    fn abort_surfaces_concern_and_reason() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::authentication(),
            Box::new(FnAspect::new("deny").on_precondition(|_| Verdict::abort("no token"))),
        )
        .unwrap();
        let mut ctx = ctx_for(&m, &open);
        let err = m.preactivation(&open, &mut ctx).unwrap_err();
        match err {
            AbortError::Aspect {
                method,
                concern,
                reason,
            } => {
                assert_eq!(method.as_str(), "open");
                assert_eq!(concern, Concern::authentication());
                assert_eq!(reason.message(), "no token");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.stats().aborts, 1);
    }

    #[test]
    fn blocked_caller_resumes_after_postactivation() {
        let m = Arc::new(AspectModerator::new());
        let open = m.declare_method(MethodId::new("open"));
        let assign = m.declare_method(MethodId::new("assign"));
        // `assign` blocks until one `open` has completed (item count > 0).
        let items = Arc::new(AtomicU64::new(0));
        {
            let items = Arc::clone(&items);
            m.register(
                &assign,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    Verdict::resume_if(items.load(AtomicOrdering::SeqCst) > 0)
                })),
            )
            .unwrap();
        }
        let consumer = {
            let m = Arc::clone(&m);
            let assign = assign.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &assign);
                m.preactivation(&assign, &mut ctx).unwrap();
                m.postactivation(&assign, &mut ctx);
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // Produce: run open's (empty) activation; its postactivation
        // notifies all queues.
        items.store(1, AtomicOrdering::SeqCst);
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        consumer.join().unwrap();
        let s = m.stats();
        assert!(s.blocks >= 1);
        assert!(s.wakeups >= 1);
        assert_eq!(s.resumes, 2);
    }

    #[test]
    fn timeout_aborts_blocked_caller() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::synchronization(),
            Box::new(FnAspect::new("never").on_precondition(|_| Verdict::Block)),
        )
        .unwrap();
        let mut ctx = ctx_for(&m, &open);
        let err = m
            .preactivation_timeout(&open, &mut ctx, Duration::from_millis(20))
            .unwrap_err();
        assert!(err.is_timeout());
        assert_eq!(m.stats().timeouts, 1);
    }

    #[test]
    fn nested_ordering_runs_newest_pre_first_and_post_last() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::new(); // Nested default
        let open = m.declare_method(MethodId::new("open"));
        for (name, pre_tag, post_tag) in [
            ("sync", "sync-pre", "sync-post"),
            ("auth", "auth-pre", "auth-post"),
        ] {
            let l1 = Arc::clone(&log);
            let l2 = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(
                    FnAspect::new(name)
                        .on_precondition(move |_| {
                            l1.lock().push(pre_tag);
                            Verdict::Resume
                        })
                        .on_postaction(move |_| l2.lock().push(post_tag)),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        // auth registered last => wraps sync (paper Figure 14).
        assert_eq!(
            *log.lock(),
            vec!["auth-pre", "sync-pre", "sync-post", "auth-post"]
        );
    }

    #[test]
    fn declaration_ordering_runs_oldest_pre_first() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::builder()
            .ordering(OrderingPolicy::Declaration)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        for name in ["first", "second"] {
            let l = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(FnAspect::new(name).on_precondition(move |_| {
                    l.lock().push(name);
                    Verdict::Resume
                })),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        assert_eq!(*log.lock(), vec!["first", "second"]);
    }

    #[test]
    fn declaration_ordering_posts_newest_first() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::builder()
            .ordering(OrderingPolicy::Declaration)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        for (name, tag) in [("first", "first-post"), ("second", "second-post")] {
            let l = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(FnAspect::new(name).on_postaction(move |_| l.lock().push(tag))),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        // Declaration: pre oldest-first, so post (its reverse) is
        // newest-first.
        assert_eq!(*log.lock(), vec!["second-post", "first-post"]);
    }

    #[test]
    fn rollback_releases_earlier_resumed_aspects() {
        let released = Arc::new(AtomicU64::new(0));
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        // Under Nested ordering, "outer" (registered second) runs first.
        {
            let released = Arc::clone(&released);
            m.register(
                &open,
                Concern::new("inner-abort"),
                Box::new(FnAspect::new("inner").on_precondition(|_| Verdict::abort("nope"))),
            )
            .unwrap();
            m.register(
                &open,
                Concern::new("outer-reserve"),
                Box::new(
                    FnAspect::new("outer")
                        .on_precondition(|_| Verdict::Resume)
                        .on_release_do(move |_, cause| {
                            assert_eq!(cause, ReleaseCause::Aborted);
                            released.fetch_add(1, AtomicOrdering::SeqCst);
                        }),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).is_err());
        assert_eq!(released.load(AtomicOrdering::SeqCst), 1);
        assert_eq!(m.stats().releases, 1);
    }

    #[test]
    fn rollback_none_skips_release() {
        let released = Arc::new(AtomicU64::new(0));
        let m = AspectModerator::builder()
            .rollback(RollbackPolicy::None)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        {
            let released = Arc::clone(&released);
            m.register(
                &open,
                Concern::new("inner-abort"),
                Box::new(FnAspect::new("inner").on_precondition(|_| Verdict::abort("nope"))),
            )
            .unwrap();
            m.register(
                &open,
                Concern::new("outer-reserve"),
                Box::new(
                    FnAspect::new("outer")
                        .on_precondition(|_| Verdict::Resume)
                        .on_release_do(move |_, _| {
                            released.fetch_add(1, AtomicOrdering::SeqCst);
                        }),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).is_err());
        assert_eq!(released.load(AtomicOrdering::SeqCst), 0);
        assert_eq!(m.stats().releases, 0);
    }

    #[test]
    fn wire_wakes_restricts_notifications() {
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let assign = m.declare_method(MethodId::new("assign"));
        m.wire_wakes(&open, std::slice::from_ref(&assign));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let notifications: Vec<_> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::NotificationSent(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(notifications, vec![MethodId::new("assign")]);
    }

    #[test]
    fn default_wakes_notify_every_queue() {
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let _assign = m.declare_method(MethodId::new("assign"));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let count = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NotificationSent(_)))
            .count();
        assert_eq!(count, 2, "both queues notified under WakeTargets::All");
    }

    #[test]
    fn register_from_factory_creates_and_registers() {
        use crate::factory::RegistryFactory;
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let mut factory = RegistryFactory::new();
        factory.provide_for_concern(Concern::synchronization(), || Box::new(NoopAspect));
        m.register_from(&factory, &open, Concern::synchronization())
            .unwrap();
        assert_eq!(m.concerns(&open), vec![Concern::synchronization()]);
        // Figure 2: create precedes register.
        let kinds: Vec<_> = trace.events().into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::AspectCreated, EventKind::AspectRegistered]
        );
        // Unknown concern: factory refuses.
        let err = m
            .register_from(&factory, &open, Concern::quota())
            .unwrap_err();
        assert!(matches!(err, RegistrationError::FactoryRefused { .. }));
    }

    #[test]
    fn deregister_removes_and_wakes() {
        let m = Arc::new(AspectModerator::new());
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::synchronization(),
            Box::new(FnAspect::new("block-forever").on_precondition(|_| Verdict::Block)),
        )
        .unwrap();
        let waiter = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation(&open, &mut ctx)
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // Removing the blocking aspect lets the waiter resume on an empty
        // chain.
        let removed = m.deregister(&open, &Concern::synchronization()).unwrap();
        assert_eq!(removed.describe(), "block-forever");
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn with_aspect_gives_mut_access() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(&open, Concern::audit(), Box::new(FnAspect::new("a")))
            .unwrap();
        let name = m
            .with_aspect(&open, &Concern::audit(), |a| a.describe().to_string())
            .unwrap();
        assert_eq!(name, "a");
        assert!(m.with_aspect(&open, &Concern::quota(), |_| ()).is_err());
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_handle_is_rejected() {
        let m1 = AspectModerator::new();
        let m2 = AspectModerator::new();
        let h1 = m1.declare_method(MethodId::new("open"));
        let _h2 = m2.declare_method(MethodId::new("other"));
        let mut ctx = InvocationContext::new(h1.id().clone(), 1);
        // h1's index 0 exists on m2 but names a different method.
        let _ = m2.preactivation(&h1, &mut ctx);
    }

    #[test]
    fn invocation_numbers_are_monotonic() {
        let m = AspectModerator::new();
        let a = m.next_invocation();
        let b = m.next_invocation();
        assert!(b > a);
    }

    #[test]
    fn debug_output_mentions_shape() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(&open, Concern::audit(), Box::new(NoopAspect))
            .unwrap();
        let s = format!("{m:?}");
        assert!(s.contains("methods: 1"));
        assert!(s.contains("aspects: 1"));
    }

    #[test]
    fn notify_one_pipeline_completes() {
        // WakeMode::NotifyOne (Java's `notify()`, as in the paper) must
        // stay live for the producer/consumer pattern: every completion
        // frees exactly one opportunity, so waking one waiter suffices.
        let m = Arc::new(
            AspectModerator::builder()
                .wake_mode(WakeMode::NotifyOne)
                .build(),
        );
        let put = m.declare_method(MethodId::new("put"));
        let take = m.declare_method(MethodId::new("take"));
        m.wire_wakes(&put, std::slice::from_ref(&take));
        m.wire_wakes(&take, std::slice::from_ref(&put));
        let items = Arc::new(Mutex::new(0_u32));
        {
            let items = Arc::clone(&items);
            m.register(
                &put,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-full").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i < 1 {
                        *i += 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        {
            let items = Arc::clone(&items);
            m.register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i > 0 {
                        *i -= 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        let rounds = 500;
        let run = |method: MethodHandle, m: Arc<AspectModerator>| {
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &method);
                    m.preactivation(&method, &mut ctx).unwrap();
                    m.postactivation(&method, &mut ctx);
                }
            })
        };
        let p = run(put, Arc::clone(&m));
        let c = run(take, Arc::clone(&m));
        p.join().unwrap();
        c.join().unwrap();
        assert_eq!(*items.lock(), 0);
        assert_eq!(m.stats().resumes, rounds * 2);
    }

    #[test]
    fn concurrent_producers_consumers_respect_capacity_one() {
        // A tiny end-to-end bounded-buffer built directly on the
        // moderator: capacity 1, shared counters in the aspects.
        struct Slots {
            used: u64,
        }
        let slots = Arc::new(Mutex::new(Slots { used: 0 }));
        let m = Arc::new(AspectModerator::new());
        let put = m.declare_method(MethodId::new("put"));
        let take = m.declare_method(MethodId::new("take"));
        {
            let s = Arc::clone(&slots);
            m.register(
                &put,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("not-full")
                        .on_precondition({
                            let s = Arc::clone(&s);
                            move |_| {
                                let mut s = s.lock();
                                if s.used < 1 {
                                    s.used += 1; // reserve
                                    Verdict::Resume
                                } else {
                                    Verdict::Block
                                }
                            }
                        })
                        .on_postaction(|_| {}),
                ),
            )
            .unwrap();
        }
        {
            let s = Arc::clone(&slots);
            m.register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    let mut s = s.lock();
                    if s.used > 0 {
                        s.used -= 1; // release
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        let rounds = 200;
        let producer = {
            let m = Arc::clone(&m);
            let put = put.clone();
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &put);
                    m.preactivation(&put, &mut ctx).unwrap();
                    m.postactivation(&put, &mut ctx);
                }
            })
        };
        let consumer = {
            let m = Arc::clone(&m);
            let take = take.clone();
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &take);
                    m.preactivation(&take, &mut ctx).unwrap();
                    m.postactivation(&take, &mut ctx);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert_eq!(slots.lock().used, 0);
        let s = m.stats();
        assert_eq!(s.resumes, rounds * 2);
    }
}

//! The aspect moderator: the coordination engine of the framework.
//!
//! The moderator owns the [`AspectBank`] and drives the paper's protocol
//! (Figure 11): *pre-activation* evaluates the preconditions of every
//! aspect registered for a participating method — blocking the caller on
//! the method's wait queue while any returns `BLOCKED`, failing the
//! activation if any returns `ABORT` — and *post-activation* runs every
//! aspect's postaction and notifies the wait queues of dependent methods.
//!
//! All aspect code runs under the moderator's single lock, mirroring the
//! paper's `synchronized` moderator: aspects never need internal
//! synchronization, and the bank is a consistent monitor.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::aspect::{Aspect, ReleaseCause};
use crate::bank::{AspectBank, MethodIndex};
use crate::concern::{Concern, MethodId};
use crate::context::InvocationContext;
use crate::error::{AbortError, RegistrationError};
use crate::factory::AspectFactory;
use crate::trace::{EventKind, TraceEvent, TraceSink};
use crate::verdict::Verdict;

/// In what order a method's aspects compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingPolicy {
    /// Later-registered aspects *wrap* earlier ones: preconditions run
    /// newest-first, postactions oldest-first. This matches the paper's
    /// adaptability example (Figure 14): authentication, registered by the
    /// extended proxy *after* synchronization, runs its precondition
    /// first and its postaction last.
    #[default]
    Nested,
    /// Aspects run in registration order on both phases' entry side:
    /// preconditions oldest-first, postactions newest-first.
    Declaration,
}

/// Which wait queues a method's post-activation notifies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum WakeTargets {
    /// Notify every declared method's queue (safe default).
    #[default]
    All,
    /// Notify exactly these methods' queues (the paper wires open→assign
    /// and assign→open by hand; [`AspectModerator::wire_wakes`] does the
    /// same declaratively).
    Wired(Vec<MethodIndex>),
}

/// How a notification wakes a method's waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WakeMode {
    /// Wake every waiter; each re-evaluates and possibly re-blocks.
    /// Never loses a wakeup (default).
    #[default]
    NotifyAll,
    /// Wake a single waiter per notification, like Java's `notify()` used
    /// in the paper. Cheaper under contention but can strand waiters when
    /// the woken thread re-blocks without progress; compared in
    /// experiment E6.
    NotifyOne,
}

/// Whether earlier-resumed aspects are rolled back (via
/// [`Aspect::on_release`]) when a later aspect in the chain blocks or
/// aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RollbackPolicy {
    /// Roll back (default; fixes the multi-aspect composition anomaly,
    /// see DESIGN.md and experiment E7).
    #[default]
    Release,
    /// Do not roll back — the paper's literal semantics.
    None,
}

/// Counters describing everything a moderator has done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeratorStats {
    /// Pre-activations started.
    pub preactivations: u64,
    /// Pre-activations that resumed (method allowed to run).
    pub resumes: u64,
    /// Times a caller parked on a wait queue.
    pub blocks: u64,
    /// Times a parked caller was woken.
    pub wakeups: u64,
    /// Notifications sent to wait queues by post-activations.
    pub notifications: u64,
    /// Activations aborted by an aspect.
    pub aborts: u64,
    /// Activations aborted by timeout.
    pub timeouts: u64,
    /// Post-activations completed.
    pub postactivations: u64,
    /// Rollback releases delivered to earlier-resumed aspects.
    pub releases: u64,
}

/// Handle to a declared participating method; obtained from
/// [`AspectModerator::declare_method`] and used for all per-method
/// operations.
///
/// Handles are cheap to clone and are only valid on the moderator that
/// issued them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodHandle {
    pub(crate) index: MethodIndex,
    pub(crate) id: MethodId,
}

impl MethodHandle {
    /// The method's identifier.
    pub fn id(&self) -> &MethodId {
        &self.id
    }

    /// The method's dense index in the issuing moderator's bank.
    pub fn index(&self) -> MethodIndex {
        self.index
    }
}

impl fmt::Display for MethodHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id.as_str())
    }
}

struct Inner {
    bank: AspectBank,
    conds: Vec<Arc<Condvar>>,
    wakes: Vec<WakeTargets>,
    stats: ModeratorStats,
    invocations: u64,
}

/// Configures and builds an [`AspectModerator`].
///
/// ```
/// use amf_core::{AspectModerator, OrderingPolicy, WakeMode};
/// use amf_core::trace::MemoryTrace;
///
/// let trace = MemoryTrace::shared();
/// let moderator = AspectModerator::builder()
///     .ordering(OrderingPolicy::Nested)
///     .wake_mode(WakeMode::NotifyAll)
///     .trace(trace)
///     .build();
/// # let _ = moderator;
/// ```
#[derive(Default)]
pub struct ModeratorBuilder {
    ordering: OrderingPolicy,
    wake_mode: WakeMode,
    rollback: RollbackPolicy,
    trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for ModeratorBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModeratorBuilder")
            .field("ordering", &self.ordering)
            .field("wake_mode", &self.wake_mode)
            .field("rollback", &self.rollback)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

impl ModeratorBuilder {
    /// Sets the aspect composition order (default [`OrderingPolicy::Nested`]).
    #[must_use]
    pub fn ordering(mut self, ordering: OrderingPolicy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets how notifications wake waiters (default [`WakeMode::NotifyAll`]).
    #[must_use]
    pub fn wake_mode(mut self, mode: WakeMode) -> Self {
        self.wake_mode = mode;
        self
    }

    /// Sets the rollback policy (default [`RollbackPolicy::Release`]).
    #[must_use]
    pub fn rollback(mut self, rollback: RollbackPolicy) -> Self {
        self.rollback = rollback;
        self
    }

    /// Attaches a protocol trace sink.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Builds the moderator.
    pub fn build(self) -> AspectModerator {
        AspectModerator {
            inner: Mutex::new(Inner {
                bank: AspectBank::new(),
                conds: Vec::new(),
                wakes: Vec::new(),
                stats: ModeratorStats::default(),
                invocations: 0,
            }),
            ordering: self.ordering,
            wake_mode: self.wake_mode,
            rollback: self.rollback,
            trace: self.trace,
        }
    }
}

/// The coordination engine: owns the aspect bank, evaluates pre/post
/// activation, parks and wakes callers.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use amf_core::{AspectModerator, Concern, FnAspect, InvocationContext, MethodId, Verdict};
///
/// let moderator = AspectModerator::new();
/// let open = moderator.declare_method(MethodId::new("open"));
///
/// // A capacity-1 "buffer" captured by the aspect.
/// moderator.register(
///     &open,
///     Concern::synchronization(),
///     Box::new(FnAspect::new("cap1").on_precondition({
///         let mut used = false;
///         move |_| { let v = Verdict::resume_if(!used); if !used { used = true; } v }
///     })),
/// ).unwrap();
///
/// let mut ctx = InvocationContext::new(open.id().clone(), moderator.next_invocation());
/// moderator.preactivation(&open, &mut ctx).unwrap();
/// // ... run the functional method here ...
/// moderator.postactivation(&open, &mut ctx);
/// ```
pub struct AspectModerator {
    inner: Mutex<Inner>,
    ordering: OrderingPolicy,
    wake_mode: WakeMode,
    rollback: RollbackPolicy,
    trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for AspectModerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("AspectModerator")
            .field("methods", &inner.bank.method_count())
            .field("aspects", &inner.bank.aspect_count())
            .field("ordering", &self.ordering)
            .field("wake_mode", &self.wake_mode)
            .field("rollback", &self.rollback)
            .finish()
    }
}

impl Default for AspectModerator {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of one pass over a method's precondition chain.
enum ChainOutcome {
    Resumed,
    Blocked,
    Aborted(Concern, crate::verdict::AbortReason),
}

impl AspectModerator {
    /// Creates a moderator with default policies and no trace.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts configuring a moderator.
    pub fn builder() -> ModeratorBuilder {
        ModeratorBuilder::default()
    }

    /// Convenience: a default moderator already wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn emit(&self, invocation: u64, method: &MethodId, concern: Option<Concern>, kind: EventKind) {
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent {
                invocation,
                method: method.clone(),
                concern,
                kind,
            });
        }
    }

    /// Declares a participating method; idempotent.
    pub fn declare_method(&self, id: MethodId) -> MethodHandle {
        let mut inner = self.inner.lock();
        let before = inner.bank.method_count();
        let index = inner.bank.declare(id.clone());
        if inner.bank.method_count() > before {
            inner.conds.push(Arc::new(Condvar::new()));
            inner.wakes.push(WakeTargets::All);
        }
        MethodHandle { index, id }
    }

    /// Looks up the handle of an already-declared method.
    pub fn method(&self, id: &MethodId) -> Option<MethodHandle> {
        let inner = self.inner.lock();
        inner.bank.index_of(id).map(|index| MethodHandle {
            index,
            id: id.clone(),
        })
    }

    /// Declared method identifiers, in declaration order.
    pub fn methods(&self) -> Vec<MethodId> {
        self.inner.lock().bank.methods().cloned().collect()
    }

    fn check(&self, inner: &Inner, method: &MethodHandle) {
        assert!(
            inner.bank.method_id(method.index) == &method.id,
            "method handle `{}` does not belong to this moderator",
            method.id
        );
    }

    /// Stores an aspect in the (method, concern) cell — the paper's
    /// `registerAspect`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::DuplicateConcern`] if the cell is occupied.
    pub fn register(
        &self,
        method: &MethodHandle,
        concern: Concern,
        aspect: Box<dyn Aspect>,
    ) -> Result<(), RegistrationError> {
        let mut inner = self.inner.lock();
        self.check(&inner, method);
        inner.bank.register(method.index, concern.clone(), aspect)?;
        drop(inner);
        self.emit(0, &method.id, Some(concern), EventKind::AspectRegistered);
        Ok(())
    }

    /// Asks `factory` to create the aspect for (method, concern) and
    /// registers it — the paper's initialization idiom
    /// `moderator.registerAspect(open, SYNC, factory.create(open, SYNC))`.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::FactoryRefused`] if the factory returns no
    /// aspect, or [`RegistrationError::DuplicateConcern`] if the cell is
    /// occupied.
    pub fn register_from(
        &self,
        factory: &dyn AspectFactory,
        method: &MethodHandle,
        concern: Concern,
    ) -> Result<(), RegistrationError> {
        let aspect = factory.create(&method.id, &concern).ok_or_else(|| {
            RegistrationError::FactoryRefused {
                method: method.id.clone(),
                concern: concern.clone(),
            }
        })?;
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectCreated,
        );
        self.register(method, concern, aspect)
    }

    /// Removes and returns the aspect in the (method, concern) cell,
    /// waking all of the method's waiters so they re-evaluate against the
    /// shortened chain.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn deregister(
        &self,
        method: &MethodHandle,
        concern: &Concern,
    ) -> Result<Box<dyn Aspect>, RegistrationError> {
        let mut inner = self.inner.lock();
        self.check(&inner, method);
        let aspect = inner.bank.deregister(method.index, concern)?;
        let cond = Arc::clone(&inner.conds[method.index.as_usize()]);
        drop(inner);
        cond.notify_all();
        self.emit(
            0,
            &method.id,
            Some(concern.clone()),
            EventKind::AspectDeregistered,
        );
        Ok(aspect)
    }

    /// The concerns registered for a method, in registration order.
    pub fn concerns(&self, method: &MethodHandle) -> Vec<Concern> {
        let inner = self.inner.lock();
        self.check(&inner, method);
        inner.bank.concerns(method.index)
    }

    /// Restricts which wait queues `method`'s post-activation notifies
    /// (default: all queues). The paper wires `open` → `assign`'s queue
    /// and vice versa.
    pub fn wire_wakes(&self, method: &MethodHandle, targets: &[MethodHandle]) {
        let mut inner = self.inner.lock();
        self.check(&inner, method);
        for t in targets {
            self.check(&inner, t);
        }
        inner.wakes[method.index.as_usize()] =
            WakeTargets::Wired(targets.iter().map(|t| t.index).collect());
    }

    /// Issues the next invocation number (used by proxies to build
    /// contexts).
    pub fn next_invocation(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.invocations += 1;
        inner.invocations
    }

    /// Snapshot of the moderator's counters.
    pub fn stats(&self) -> ModeratorStats {
        self.inner.lock().stats
    }

    /// Index of the `pos`-th aspect (of `n`) in precondition order.
    #[inline]
    fn pre_index(&self, pos: usize, n: usize) -> usize {
        match self.ordering {
            OrderingPolicy::Nested => n - 1 - pos,
            OrderingPolicy::Declaration => pos,
        }
    }

    /// Index of the `pos`-th aspect (of `n`) in postaction order —
    /// the reverse of the precondition order (proper nesting).
    #[inline]
    fn post_index(&self, pos: usize, n: usize) -> usize {
        match self.ordering {
            OrderingPolicy::Nested => pos,
            OrderingPolicy::Declaration => n - 1 - pos,
        }
    }

    /// One pass over the chain. Returns the outcome; on `Blocked` or
    /// `Aborted`, earlier-resumed aspects have been released per policy.
    fn evaluate_chain(
        &self,
        inner: &mut Inner,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> ChainOutcome {
        let n = inner.bank.concern_count(method.index);
        let traced = self.trace.is_some();
        let row = inner.bank.row_mut(method.index);
        for pos in 0..n {
            let idx = self.pre_index(pos, n);
            let (concern, aspect) = &mut row.aspects[idx];
            let verdict = aspect.precondition(ctx);
            match verdict {
                Verdict::Resume => {
                    if traced {
                        let concern = concern.clone();
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern),
                            EventKind::PreconditionResumed,
                        );
                    }
                }
                Verdict::Block => {
                    if traced {
                        let concern = concern.clone();
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern),
                            EventKind::PreconditionBlocked,
                        );
                    }
                    self.release_prefix(row, pos, n, ctx, ReleaseCause::Blocked, &mut inner.stats);
                    return ChainOutcome::Blocked;
                }
                Verdict::Abort(reason) => {
                    let concern = concern.clone();
                    if traced {
                        self.emit(
                            ctx.invocation(),
                            &method.id,
                            Some(concern.clone()),
                            EventKind::PreconditionAborted,
                        );
                    }
                    self.release_prefix(row, pos, n, ctx, ReleaseCause::Aborted, &mut inner.stats);
                    return ChainOutcome::Aborted(concern, reason);
                }
            }
        }
        ChainOutcome::Resumed
    }

    /// Releases the `evaluated` already-resumed aspects (precondition
    /// positions `0..evaluated`) in reverse evaluation order — unwinding
    /// the onion.
    fn release_prefix(
        &self,
        row: &mut crate::bank::MethodRow,
        evaluated: usize,
        n: usize,
        ctx: &InvocationContext,
        cause: ReleaseCause,
        stats: &mut ModeratorStats,
    ) {
        if self.rollback == RollbackPolicy::None {
            return;
        }
        for pos in (0..evaluated).rev() {
            let idx = self.pre_index(pos, n);
            let (concern, aspect) = &mut row.aspects[idx];
            aspect.on_release(ctx, cause);
            stats.releases += 1;
            if self.trace.is_some() {
                self.emit(
                    ctx.invocation(),
                    ctx.method(),
                    Some(concern.clone()),
                    EventKind::AspectReleased,
                );
            }
        }
    }

    /// Runs the pre-activation phase for one invocation, blocking until
    /// every registered aspect resumes.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] if any aspect's precondition aborts.
    pub fn preactivation(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> Result<(), AbortError> {
        self.preactivation_inner(method, ctx, None)
    }

    /// Like [`AspectModerator::preactivation`] but gives up after
    /// `timeout` spent blocked.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] on an aspect abort, [`AbortError::Timeout`]
    /// if the timeout elapses while blocked.
    pub fn preactivation_timeout(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        timeout: Duration,
    ) -> Result<(), AbortError> {
        self.preactivation_inner(method, ctx, Some(Instant::now() + timeout))
    }

    fn preactivation_inner(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
        deadline: Option<Instant>,
    ) -> Result<(), AbortError> {
        let mut inner = self.inner.lock();
        self.check(&inner, method);
        inner.stats.preactivations += 1;
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PreactivationStarted,
        );
        loop {
            match self.evaluate_chain(&mut inner, method, ctx) {
                ChainOutcome::Resumed => {
                    inner.stats.resumes += 1;
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationResumed,
                    );
                    return Ok(());
                }
                ChainOutcome::Aborted(concern, reason) => {
                    inner.stats.aborts += 1;
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        None,
                        EventKind::ActivationAborted,
                    );
                    return Err(AbortError::Aspect {
                        method: method.id.clone(),
                        concern,
                        reason,
                    });
                }
                ChainOutcome::Blocked => {
                    inner.stats.blocks += 1;
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitStarted);
                    let cond = Arc::clone(&inner.conds[method.index.as_usize()]);
                    match deadline {
                        Some(deadline) => {
                            if cond.wait_until(&mut inner, deadline).timed_out() {
                                inner.stats.timeouts += 1;
                                // Let enrollment-style aspects (admission
                                // queues) forget this invocation.
                                let row = inner.bank.row_mut(method.index);
                                for (_, aspect) in row.aspects.iter_mut() {
                                    aspect.on_cancel(ctx);
                                }
                                self.emit(
                                    ctx.invocation(),
                                    &method.id,
                                    None,
                                    EventKind::ActivationAborted,
                                );
                                return Err(AbortError::Timeout {
                                    method: method.id.clone(),
                                });
                            }
                        }
                        None => cond.wait(&mut inner),
                    }
                    inner.stats.wakeups += 1;
                    self.emit(ctx.invocation(), &method.id, None, EventKind::WaitWoken);
                }
            }
        }
    }

    /// Non-blocking pre-activation: evaluates the chain once and
    /// returns `Ok(false)` instead of parking if any aspect blocks
    /// (earlier reservations are rolled back per policy). `Ok(true)`
    /// means the activation resumed and post-activation is owed.
    ///
    /// # Errors
    ///
    /// [`AbortError::Aspect`] if an aspect's precondition aborts.
    pub fn try_preactivation(
        &self,
        method: &MethodHandle,
        ctx: &mut InvocationContext,
    ) -> Result<bool, AbortError> {
        let mut inner = self.inner.lock();
        self.check(&inner, method);
        inner.stats.preactivations += 1;
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PreactivationStarted,
        );
        match self.evaluate_chain(&mut inner, method, ctx) {
            ChainOutcome::Resumed => {
                inner.stats.resumes += 1;
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationResumed,
                );
                Ok(true)
            }
            ChainOutcome::Blocked => {
                // Would block: the chain already rolled back; count the
                // attempt as aborted-by-caller.
                inner.stats.aborts += 1;
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationAborted,
                );
                Ok(false)
            }
            ChainOutcome::Aborted(concern, reason) => {
                inner.stats.aborts += 1;
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::ActivationAborted,
                );
                Err(AbortError::Aspect {
                    method: method.id.clone(),
                    concern,
                    reason,
                })
            }
        }
    }

    /// Runs the post-activation phase: every aspect's postaction (in
    /// reverse precondition order), then notifies the wait queues wired
    /// for this method.
    pub fn postactivation(&self, method: &MethodHandle, ctx: &mut InvocationContext) {
        let mut inner = self.inner.lock();
        self.check(&inner, method);
        self.emit(
            ctx.invocation(),
            &method.id,
            None,
            EventKind::PostactivationStarted,
        );
        let n = inner.bank.concern_count(method.index);
        let traced = self.trace.is_some();
        {
            let row = inner.bank.row_mut(method.index);
            for pos in 0..n {
                let idx = self.post_index(pos, n);
                let (concern, aspect) = &mut row.aspects[idx];
                aspect.postaction(ctx);
                if traced {
                    let concern = concern.clone();
                    self.emit(
                        ctx.invocation(),
                        &method.id,
                        Some(concern),
                        EventKind::PostactionRun,
                    );
                }
            }
        }
        inner.stats.postactivations += 1;
        let wired: Option<Vec<MethodIndex>> = match &inner.wakes[method.index.as_usize()] {
            WakeTargets::All => None,
            WakeTargets::Wired(t) => Some(t.clone()),
        };
        let notify = |inner: &mut Inner, t: MethodIndex| {
            match self.wake_mode {
                WakeMode::NotifyAll => {
                    inner.conds[t.as_usize()].notify_all();
                }
                WakeMode::NotifyOne => {
                    inner.conds[t.as_usize()].notify_one();
                }
            }
            inner.stats.notifications += 1;
            if traced {
                let target_id = inner.bank.method_id(t).clone();
                self.emit(
                    ctx.invocation(),
                    &method.id,
                    None,
                    EventKind::NotificationSent(target_id),
                );
            }
        };
        match wired {
            None => {
                for t in 0..inner.bank.method_count() {
                    notify(&mut inner, MethodIndex(t));
                }
            }
            Some(targets) => {
                for t in targets {
                    notify(&mut inner, t);
                }
            }
        }
    }

    /// Emits the `MethodInvoked` trace event (Figure 3's `open(ticket)`
    /// arrow) on behalf of a proxy between the two phases.
    #[doc(hidden)]
    pub fn trace_method_invoked(&self, method: &MethodHandle, invocation: u64) {
        self.emit(invocation, &method.id, None, EventKind::MethodInvoked);
    }

    /// Runs `f` with mutable access to the aspect registered under
    /// (method, concern), under the moderator's lock. Administrative
    /// escape hatch for inspecting or adjusting aspect state.
    ///
    /// # Errors
    ///
    /// [`RegistrationError::UnknownConcern`] if the cell is empty.
    pub fn with_aspect<R>(
        &self,
        method: &MethodHandle,
        concern: &Concern,
        f: impl FnOnce(&mut dyn Aspect) -> R,
    ) -> Result<R, RegistrationError> {
        let mut inner = self.inner.lock();
        self.check(&inner, method);
        match inner.bank.aspect_mut(method.index, concern) {
            Some(aspect) => Ok(f(aspect)),
            None => Err(RegistrationError::UnknownConcern {
                method: method.id.clone(),
                concern: concern.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::{FnAspect, NoopAspect};
    use crate::trace::MemoryTrace;
    use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
    use std::thread;

    fn ctx_for(moderator: &AspectModerator, m: &MethodHandle) -> InvocationContext {
        InvocationContext::new(m.id().clone(), moderator.next_invocation())
    }

    #[test]
    fn declare_method_is_idempotent() {
        let m = AspectModerator::new();
        let a = m.declare_method(MethodId::new("open"));
        let b = m.declare_method(MethodId::new("open"));
        assert_eq!(a, b);
        assert_eq!(m.methods(), vec![MethodId::new("open")]);
    }

    #[test]
    fn method_lookup() {
        let m = AspectModerator::new();
        assert!(m.method(&MethodId::new("open")).is_none());
        let h = m.declare_method(MethodId::new("open"));
        assert_eq!(m.method(&MethodId::new("open")), Some(h));
    }

    #[test]
    fn empty_chain_resumes_immediately() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let s = m.stats();
        assert_eq!(s.preactivations, 1);
        assert_eq!(s.resumes, 1);
        assert_eq!(s.postactivations, 1);
        assert_eq!(s.blocks, 0);
    }

    #[test]
    fn abort_surfaces_concern_and_reason() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::authentication(),
            Box::new(FnAspect::new("deny").on_precondition(|_| Verdict::abort("no token"))),
        )
        .unwrap();
        let mut ctx = ctx_for(&m, &open);
        let err = m.preactivation(&open, &mut ctx).unwrap_err();
        match err {
            AbortError::Aspect {
                method,
                concern,
                reason,
            } => {
                assert_eq!(method.as_str(), "open");
                assert_eq!(concern, Concern::authentication());
                assert_eq!(reason.message(), "no token");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.stats().aborts, 1);
    }

    #[test]
    fn blocked_caller_resumes_after_postactivation() {
        let m = Arc::new(AspectModerator::new());
        let open = m.declare_method(MethodId::new("open"));
        let assign = m.declare_method(MethodId::new("assign"));
        // `assign` blocks until one `open` has completed (item count > 0).
        let items = Arc::new(AtomicU64::new(0));
        {
            let items = Arc::clone(&items);
            m.register(
                &assign,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    Verdict::resume_if(items.load(AtomicOrdering::SeqCst) > 0)
                })),
            )
            .unwrap();
        }
        let consumer = {
            let m = Arc::clone(&m);
            let assign = assign.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &assign);
                m.preactivation(&assign, &mut ctx).unwrap();
                m.postactivation(&assign, &mut ctx);
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // Produce: run open's (empty) activation; its postactivation
        // notifies all queues.
        items.store(1, AtomicOrdering::SeqCst);
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        consumer.join().unwrap();
        let s = m.stats();
        assert!(s.blocks >= 1);
        assert!(s.wakeups >= 1);
        assert_eq!(s.resumes, 2);
    }

    #[test]
    fn timeout_aborts_blocked_caller() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::synchronization(),
            Box::new(FnAspect::new("never").on_precondition(|_| Verdict::Block)),
        )
        .unwrap();
        let mut ctx = ctx_for(&m, &open);
        let err = m
            .preactivation_timeout(&open, &mut ctx, Duration::from_millis(20))
            .unwrap_err();
        assert!(err.is_timeout());
        assert_eq!(m.stats().timeouts, 1);
    }

    #[test]
    fn nested_ordering_runs_newest_pre_first_and_post_last() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::new(); // Nested default
        let open = m.declare_method(MethodId::new("open"));
        for (name, pre_tag, post_tag) in [
            ("sync", "sync-pre", "sync-post"),
            ("auth", "auth-pre", "auth-post"),
        ] {
            let l1 = Arc::clone(&log);
            let l2 = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(
                    FnAspect::new(name)
                        .on_precondition(move |_| {
                            l1.lock().push(pre_tag);
                            Verdict::Resume
                        })
                        .on_postaction(move |_| l2.lock().push(post_tag)),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        // auth registered last => wraps sync (paper Figure 14).
        assert_eq!(
            *log.lock(),
            vec!["auth-pre", "sync-pre", "sync-post", "auth-post"]
        );
    }

    #[test]
    fn declaration_ordering_runs_oldest_pre_first() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::builder()
            .ordering(OrderingPolicy::Declaration)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        for name in ["first", "second"] {
            let l = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(FnAspect::new(name).on_precondition(move |_| {
                    l.lock().push(name);
                    Verdict::Resume
                })),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        assert_eq!(*log.lock(), vec!["first", "second"]);
    }

    #[test]
    fn declaration_ordering_posts_newest_first() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let m = AspectModerator::builder()
            .ordering(OrderingPolicy::Declaration)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        for (name, tag) in [("first", "first-post"), ("second", "second-post")] {
            let l = Arc::clone(&log);
            m.register(
                &open,
                Concern::new(name),
                Box::new(FnAspect::new(name).on_postaction(move |_| l.lock().push(tag))),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        // Declaration: pre oldest-first, so post (its reverse) is
        // newest-first.
        assert_eq!(*log.lock(), vec!["second-post", "first-post"]);
    }

    #[test]
    fn rollback_releases_earlier_resumed_aspects() {
        let released = Arc::new(AtomicU64::new(0));
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        // Under Nested ordering, "outer" (registered second) runs first.
        {
            let released = Arc::clone(&released);
            m.register(
                &open,
                Concern::new("inner-abort"),
                Box::new(FnAspect::new("inner").on_precondition(|_| Verdict::abort("nope"))),
            )
            .unwrap();
            m.register(
                &open,
                Concern::new("outer-reserve"),
                Box::new(
                    FnAspect::new("outer")
                        .on_precondition(|_| Verdict::Resume)
                        .on_release_do(move |_, cause| {
                            assert_eq!(cause, ReleaseCause::Aborted);
                            released.fetch_add(1, AtomicOrdering::SeqCst);
                        }),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).is_err());
        assert_eq!(released.load(AtomicOrdering::SeqCst), 1);
        assert_eq!(m.stats().releases, 1);
    }

    #[test]
    fn rollback_none_skips_release() {
        let released = Arc::new(AtomicU64::new(0));
        let m = AspectModerator::builder()
            .rollback(RollbackPolicy::None)
            .build();
        let open = m.declare_method(MethodId::new("open"));
        {
            let released = Arc::clone(&released);
            m.register(
                &open,
                Concern::new("inner-abort"),
                Box::new(FnAspect::new("inner").on_precondition(|_| Verdict::abort("nope"))),
            )
            .unwrap();
            m.register(
                &open,
                Concern::new("outer-reserve"),
                Box::new(
                    FnAspect::new("outer")
                        .on_precondition(|_| Verdict::Resume)
                        .on_release_do(move |_, _| {
                            released.fetch_add(1, AtomicOrdering::SeqCst);
                        }),
                ),
            )
            .unwrap();
        }
        let mut ctx = ctx_for(&m, &open);
        assert!(m.preactivation(&open, &mut ctx).is_err());
        assert_eq!(released.load(AtomicOrdering::SeqCst), 0);
        assert_eq!(m.stats().releases, 0);
    }

    #[test]
    fn wire_wakes_restricts_notifications() {
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let assign = m.declare_method(MethodId::new("assign"));
        m.wire_wakes(&open, std::slice::from_ref(&assign));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let notifications: Vec<_> = trace
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::NotificationSent(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(notifications, vec![MethodId::new("assign")]);
    }

    #[test]
    fn default_wakes_notify_every_queue() {
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let _assign = m.declare_method(MethodId::new("assign"));
        let mut ctx = ctx_for(&m, &open);
        m.preactivation(&open, &mut ctx).unwrap();
        m.postactivation(&open, &mut ctx);
        let count = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NotificationSent(_)))
            .count();
        assert_eq!(count, 2, "both queues notified under WakeTargets::All");
    }

    #[test]
    fn register_from_factory_creates_and_registers() {
        use crate::factory::RegistryFactory;
        let trace = MemoryTrace::shared();
        let m = AspectModerator::builder().trace(trace.clone()).build();
        let open = m.declare_method(MethodId::new("open"));
        let mut factory = RegistryFactory::new();
        factory.provide_for_concern(Concern::synchronization(), || Box::new(NoopAspect));
        m.register_from(&factory, &open, Concern::synchronization())
            .unwrap();
        assert_eq!(m.concerns(&open), vec![Concern::synchronization()]);
        // Figure 2: create precedes register.
        let kinds: Vec<_> = trace.events().into_iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::AspectCreated, EventKind::AspectRegistered]
        );
        // Unknown concern: factory refuses.
        let err = m
            .register_from(&factory, &open, Concern::quota())
            .unwrap_err();
        assert!(matches!(err, RegistrationError::FactoryRefused { .. }));
    }

    #[test]
    fn deregister_removes_and_wakes() {
        let m = Arc::new(AspectModerator::new());
        let open = m.declare_method(MethodId::new("open"));
        m.register(
            &open,
            Concern::synchronization(),
            Box::new(FnAspect::new("block-forever").on_precondition(|_| Verdict::Block)),
        )
        .unwrap();
        let waiter = {
            let m = Arc::clone(&m);
            let open = open.clone();
            thread::spawn(move || {
                let mut ctx = ctx_for(&m, &open);
                m.preactivation(&open, &mut ctx)
            })
        };
        while m.stats().blocks == 0 {
            thread::yield_now();
        }
        // Removing the blocking aspect lets the waiter resume on an empty
        // chain.
        let removed = m.deregister(&open, &Concern::synchronization()).unwrap();
        assert_eq!(removed.describe(), "block-forever");
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn with_aspect_gives_mut_access() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(&open, Concern::audit(), Box::new(FnAspect::new("a")))
            .unwrap();
        let name = m
            .with_aspect(&open, &Concern::audit(), |a| a.describe().to_string())
            .unwrap();
        assert_eq!(name, "a");
        assert!(m.with_aspect(&open, &Concern::quota(), |_| ()).is_err());
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_handle_is_rejected() {
        let m1 = AspectModerator::new();
        let m2 = AspectModerator::new();
        let h1 = m1.declare_method(MethodId::new("open"));
        let _h2 = m2.declare_method(MethodId::new("other"));
        let mut ctx = InvocationContext::new(h1.id().clone(), 1);
        // h1's index 0 exists on m2 but names a different method.
        let _ = m2.preactivation(&h1, &mut ctx);
    }

    #[test]
    fn invocation_numbers_are_monotonic() {
        let m = AspectModerator::new();
        let a = m.next_invocation();
        let b = m.next_invocation();
        assert!(b > a);
    }

    #[test]
    fn debug_output_mentions_shape() {
        let m = AspectModerator::new();
        let open = m.declare_method(MethodId::new("open"));
        m.register(&open, Concern::audit(), Box::new(NoopAspect))
            .unwrap();
        let s = format!("{m:?}");
        assert!(s.contains("methods: 1"));
        assert!(s.contains("aspects: 1"));
    }

    #[test]
    fn notify_one_pipeline_completes() {
        // WakeMode::NotifyOne (Java's `notify()`, as in the paper) must
        // stay live for the producer/consumer pattern: every completion
        // frees exactly one opportunity, so waking one waiter suffices.
        let m = Arc::new(
            AspectModerator::builder()
                .wake_mode(WakeMode::NotifyOne)
                .build(),
        );
        let put = m.declare_method(MethodId::new("put"));
        let take = m.declare_method(MethodId::new("take"));
        m.wire_wakes(&put, std::slice::from_ref(&take));
        m.wire_wakes(&take, std::slice::from_ref(&put));
        let items = Arc::new(Mutex::new(0_u32));
        {
            let items = Arc::clone(&items);
            m.register(
                &put,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-full").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i < 1 {
                        *i += 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        {
            let items = Arc::clone(&items);
            m.register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    let mut i = items.lock();
                    if *i > 0 {
                        *i -= 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        let rounds = 500;
        let run = |method: MethodHandle, m: Arc<AspectModerator>| {
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &method);
                    m.preactivation(&method, &mut ctx).unwrap();
                    m.postactivation(&method, &mut ctx);
                }
            })
        };
        let p = run(put, Arc::clone(&m));
        let c = run(take, Arc::clone(&m));
        p.join().unwrap();
        c.join().unwrap();
        assert_eq!(*items.lock(), 0);
        assert_eq!(m.stats().resumes, rounds * 2);
    }

    #[test]
    fn concurrent_producers_consumers_respect_capacity_one() {
        // A tiny end-to-end bounded-buffer built directly on the
        // moderator: capacity 1, shared counters in the aspects.
        struct Slots {
            used: u64,
        }
        let slots = Arc::new(Mutex::new(Slots { used: 0 }));
        let m = Arc::new(AspectModerator::new());
        let put = m.declare_method(MethodId::new("put"));
        let take = m.declare_method(MethodId::new("take"));
        {
            let s = Arc::clone(&slots);
            m.register(
                &put,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("not-full")
                        .on_precondition({
                            let s = Arc::clone(&s);
                            move |_| {
                                let mut s = s.lock();
                                if s.used < 1 {
                                    s.used += 1; // reserve
                                    Verdict::Resume
                                } else {
                                    Verdict::Block
                                }
                            }
                        })
                        .on_postaction(|_| {}),
                ),
            )
            .unwrap();
        }
        {
            let s = Arc::clone(&slots);
            m.register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("not-empty").on_precondition(move |_| {
                    let mut s = s.lock();
                    if s.used > 0 {
                        s.used -= 1; // release
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        }
        let rounds = 200;
        let producer = {
            let m = Arc::clone(&m);
            let put = put.clone();
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &put);
                    m.preactivation(&put, &mut ctx).unwrap();
                    m.postactivation(&put, &mut ctx);
                }
            })
        };
        let consumer = {
            let m = Arc::clone(&m);
            let take = take.clone();
            thread::spawn(move || {
                for _ in 0..rounds {
                    let mut ctx = ctx_for(&m, &take);
                    m.preactivation(&take, &mut ctx).unwrap();
                    m.postactivation(&take, &mut ctx);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert_eq!(slots.lock().used, 0);
        let s = m.stats();
        assert_eq!(s.resumes, rounds * 2);
    }
}

//! Declarative proxy generation.
//!
//! The paper's Java proxies (`TicketServerProxy`) are written by hand,
//! one guarded override per participating method. Rust has no runtime
//! subclassing, but a declarative macro can generate the same proxy
//! shape from a method list — the closest idiomatic rendering of "the
//! proxy overrides each participating method".

/// Generates a typed component proxy: a struct holding a
/// [`Moderated`](crate::Moderated) component plus one declared
/// [`MethodHandle`](crate::MethodHandle) per participating method, and
/// one guarded forwarding method per entry.
///
/// Each listed method must exist on the component type with the same
/// name, an `&mut self` receiver, the same argument list and return
/// type. The generated wrapper returns
/// `Result<Ret, AbortError>`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use amf_core::{moderated_component, AspectModerator, Concern, NoopAspect};
///
/// struct Counter { value: u64 }
/// impl Counter {
///     fn add(&mut self, n: u64) { self.value += n; }
///     fn read(&mut self) -> u64 { self.value }
/// }
///
/// moderated_component! {
///     /// A counter whose methods are guarded by the moderator.
///     pub proxy CounterProxy for Counter {
///         /// Guarded add.
///         fn add(&mut self, n: u64);
///         /// Guarded read.
///         fn read(&mut self) -> u64;
///     }
/// }
///
/// let moderator = AspectModerator::shared();
/// let proxy = CounterProxy::new(Counter { value: 0 }, Arc::clone(&moderator));
/// moderator.register(
///     proxy.handle("add").unwrap(),
///     Concern::audit(),
///     Box::new(NoopAspect),
/// ).unwrap();
/// proxy.add(5).unwrap();
/// assert_eq!(proxy.read().unwrap(), 5);
/// ```
#[macro_export]
macro_rules! moderated_component {
    (
        $(#[$meta:meta])*
        $vis:vis proxy $name:ident for $component:ty {
            $(
                $(#[$m_meta:meta])*
                fn $method:ident(&mut self $(, $arg:ident : $arg_ty:ty)* $(,)?) $(-> $ret:ty)?;
            )+
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            __inner: $crate::Moderated<$component>,
            $( $method: $crate::MethodHandle, )+
        }

        impl $name {
            /// Wraps `component`, declaring one participating method per
            /// listed method on `moderator`. Register aspects against
            /// the handles before (or after — the system is open)
            /// invoking.
            $vis fn new(
                component: $component,
                moderator: ::std::sync::Arc<$crate::AspectModerator>,
            ) -> Self {
                $(
                    let $method = moderator
                        .declare_method($crate::MethodId::new(stringify!($method)));
                )+
                Self {
                    __inner: $crate::Moderated::new(component, moderator),
                    $( $method, )+
                }
            }

            /// The coordinating moderator.
            $vis fn moderator(&self) -> &::std::sync::Arc<$crate::AspectModerator> {
                self.__inner.moderator()
            }

            /// Handle of a participating method, by name.
            $vis fn handle(&self, name: &str) -> ::std::option::Option<&$crate::MethodHandle> {
                match name {
                    $( stringify!($method) => ::std::option::Option::Some(&self.$method), )+
                    _ => ::std::option::Option::None,
                }
            }

            /// Unmoderated access for non-participating queries.
            $vis fn with_component<R>(
                &self,
                f: impl ::std::ops::FnOnce(&mut $component) -> R,
            ) -> R {
                self.__inner.with_component(f)
            }

            $(
                $(#[$m_meta])*
                ///
                /// # Errors
                ///
                /// Returns [`AbortError`](amf_core::AbortError) if a
                /// registered aspect vetoes the activation.
                $vis fn $method(
                    &self
                    $(, $arg: $arg_ty)*
                ) -> ::std::result::Result<
                    $crate::moderated_component!(@ret $($ret)?),
                    $crate::AbortError,
                > {
                    self.__inner.invoke(&self.$method, |c| c.$method($($arg),*))
                }
            )+
        }
    };
    (@ret) => { () };
    (@ret $ret:ty) => { $ret };
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::{AspectModerator, Concern, FnAspect, NoopAspect, Verdict};

    pub(crate) struct Ledger {
        entries: Vec<i64>,
    }

    impl Ledger {
        fn deposit(&mut self, amount: i64) {
            self.entries.push(amount);
        }
        fn balance(&mut self) -> i64 {
            self.entries.iter().sum()
        }
        fn withdraw(&mut self, amount: i64) -> bool {
            if self.balance() >= amount {
                self.entries.push(-amount);
                true
            } else {
                false
            }
        }
    }

    moderated_component! {
        /// Module-scope expansion (C-ANYWHERE).
        pub(crate) proxy LedgerProxy for Ledger {
            /// Adds money.
            fn deposit(&mut self, amount: i64);
            /// Current balance.
            fn balance(&mut self) -> i64;
            /// Takes money if covered.
            fn withdraw(&mut self, amount: i64) -> bool;
        }
    }

    fn proxy() -> LedgerProxy {
        LedgerProxy::new(Ledger { entries: vec![] }, AspectModerator::shared())
    }

    #[test]
    fn generated_methods_forward() {
        let p = proxy();
        p.deposit(100).unwrap();
        p.deposit(50).unwrap();
        assert!(p.withdraw(120).unwrap());
        assert!(!p.withdraw(120).unwrap());
        assert_eq!(p.balance().unwrap(), 30);
    }

    #[test]
    fn generated_handles_accept_aspects() {
        let p = proxy();
        let moderator = Arc::clone(p.moderator());
        moderator
            .register(
                p.handle("withdraw").unwrap(),
                Concern::new("freeze"),
                Box::new(FnAspect::new("frozen").on_precondition(|_| Verdict::abort("frozen"))),
            )
            .unwrap();
        p.deposit(100).unwrap(); // other methods unaffected
        let err = p.withdraw(10).unwrap_err();
        assert_eq!(err.concern().unwrap(), &Concern::new("freeze"));
        assert_eq!(p.balance().unwrap(), 100);
    }

    #[test]
    fn handle_lookup() {
        let p = proxy();
        assert!(p.handle("deposit").is_some());
        assert!(p.handle("nope").is_none());
        assert_eq!(p.handle("balance").unwrap().id().as_str(), "balance");
    }

    #[test]
    fn with_component_bypasses_moderation() {
        let p = proxy();
        p.with_component(|l| l.deposit(7));
        assert_eq!(p.balance().unwrap(), 7);
        assert_eq!(p.moderator().stats().preactivations, 1);
    }

    #[test]
    fn works_in_function_scope() {
        struct Cell {
            v: u8,
        }
        impl Cell {
            fn set(&mut self, v: u8) {
                self.v = v;
            }
            fn get(&mut self) -> u8 {
                self.v
            }
        }
        moderated_component! {
            proxy CellProxy for Cell {
                fn set(&mut self, v: u8);
                fn get(&mut self) -> u8;
            }
        }
        let p = CellProxy::new(Cell { v: 0 }, AspectModerator::shared());
        p.set(9).unwrap();
        assert_eq!(p.get().unwrap(), 9);
        // Exercise the full generated surface in this scope too.
        assert!(p.handle("set").is_some());
        assert_eq!(p.moderator().stats().resumes, 2);
        assert_eq!(p.with_component(|c| c.v), 9);
    }

    #[test]
    fn registered_aspects_run_per_method() {
        let p = proxy();
        let moderator = Arc::clone(p.moderator());
        moderator
            .register(
                p.handle("deposit").unwrap(),
                Concern::audit(),
                Box::new(NoopAspect),
            )
            .unwrap();
        p.deposit(1).unwrap();
        p.balance().unwrap();
        // deposit has one aspect; balance none — both flow through the
        // moderator.
        assert_eq!(moderator.stats().resumes, 2);
    }
}

//! # Aspect Moderator framework — core
//!
//! Rust implementation of the framework from *Composing Concerns with a
//! Framework Approach* (Constantinides & Elrad, ICDCS 2001): advanced
//! separation of concerns for concurrent systems **without** language
//! extensions or weaving. A concurrent object is composed from:
//!
//! * a sequential **functional component** (your type, unchanged),
//! * **aspects** ([`Aspect`]) — first-class objects holding one concern
//!   of one participating method, with a `precondition` returning
//!   [`Verdict::Resume`] / [`Verdict::Block`] / [`Verdict::Abort`] and a
//!   `postaction`,
//! * the **aspect bank** ([`AspectBank`]) — a two-dimensional registry
//!   *methods × concerns*,
//! * an **aspect factory** ([`AspectFactory`]) creating aspects on
//!   demand (Factory Method pattern),
//! * the **aspect moderator** ([`AspectModerator`]) — evaluates every
//!   registered aspect around each invocation, parking callers on
//!   per-method wait queues while constraints do not hold,
//! * a **component proxy** ([`Moderated`]) guarding participating
//!   methods with the pre-/post-activation protocol.
//!
//! # Quickstart
//!
//! A bounded counter whose "never above 2" constraint lives entirely in
//! an aspect:
//!
//! ```
//! use std::sync::Arc;
//! use amf_core::{AspectModerator, Concern, FnAspect, Moderated, MethodId, Verdict};
//!
//! let moderator = AspectModerator::shared();
//! let incr = moderator.declare_method(MethodId::new("incr"));
//!
//! moderator.register(
//!     &incr,
//!     Concern::synchronization(),
//!     Box::new(FnAspect::new("at-most-2").on_precondition({
//!         let mut granted = 0;
//!         move |_| { let v = Verdict::resume_if(granted < 2); if granted < 2 { granted += 1; } v }
//!     })),
//! ).unwrap();
//!
//! let counter = Moderated::new(0_u32, Arc::clone(&moderator));
//! assert!(counter.invoke(&incr, |c| *c += 1).is_ok());
//! assert!(counter.invoke(&incr, |c| *c += 1).is_ok());
//! // Third activation would block forever; use a timeout to observe it.
//! let r = counter.invoke_timeout(&incr, std::time::Duration::from_millis(10), |c| *c += 1);
//! assert!(r.unwrap_err().is_timeout());
//! assert_eq!(counter.with_component(|c| *c), 2);
//! ```
//!
//! See the `amf-ticketing` crate for the paper's trouble-ticketing
//! system and `amf-aspects` for a library of reusable concerns.

#![warn(missing_docs)]

pub mod aspect;
pub mod bank;
pub mod blueprint;
#[macro_use]
pub mod macros;
pub mod concern;
pub mod context;
pub mod error;
pub mod factory;
pub mod guide;
pub mod lease;
pub mod moderator;
pub mod proxy;
pub mod trace;
pub mod verdict;

pub use aspect::{Aspect, AspectCapabilities, FnAspect, NoopAspect, ReleaseCause};
pub use bank::{AspectBank, MethodIndex};
pub use blueprint::{Blueprint, BlueprintHandles};
pub use concern::{Concern, MethodId};
pub use context::{InvocationContext, Outcome, Principal};
pub use error::{AbortError, RegistrationError};
pub use factory::{AspectFactory, ChainedFactory, RegistryFactory};
pub use lease::{Delivery, LeaseAction, LeaseConfig, LeaseIn, LeaseLinkStats, LeaseMsg, LeaseOut};
pub use moderator::{
    AspectModerator, CellState, Coordination, FairnessPolicy, MethodHandle, ModeratorBuilder,
    ModeratorStats, OrderingPolicy, PanicPolicy, RollbackPolicy, WaitHistogram, WakeMode,
    WAIT_BUCKETS,
};
pub use proxy::{ActivationGuard, Moderated};
pub use trace::{FilterSink, MemoryTrace, TeeSink, TraceSink};
pub use verdict::{AbortReason, Verdict};

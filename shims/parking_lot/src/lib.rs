//! Minimal, API-compatible subset of the `parking_lot` crate built on
//! `std::sync`, so the workspace builds without registry access.
//!
//! Only what the workspace uses is provided: a non-poisoning [`Mutex`]
//! whose `lock()` returns the guard directly, a non-poisoning
//! [`RwLock`] with direct `read()`/`write()` guards, and a [`Condvar`]
//! whose waits take `&mut MutexGuard` and report timeouts via
//! [`WaitTimeoutResult::timed_out`]. Poisoned std locks are recovered
//! transparently (parking_lot has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive; `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: &self.inner,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: &self.inner,
                inner: Some(g),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: &self.inner,
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` exists so [`Condvar`] waits and
/// [`MutexGuard::unlocked`] can temporarily take the std guard out
/// (std's condvar consumes and returns guards); it is `Some` at every
/// other moment. The `lock` back-reference is what lets `unlocked`
/// re-acquire.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a std::sync::Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> MutexGuard<'_, T> {
    /// Temporarily unlocks the mutex while `f` runs, re-locking before
    /// returning — parking_lot's `MutexGuard::unlocked`. An associated
    /// function, like the original, so it cannot shadow methods of `T`.
    pub fn unlocked<F, U>(s: &mut Self, f: F) -> U
    where
        F: FnOnce() -> U,
    {
        drop(s.inner.take().expect("guard present outside wait"));
        let out = f();
        s.inner = Some(s.lock.lock().unwrap_or_else(PoisonError::into_inner));
        out
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock; `read()`/`write()` never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable; waits operate on `&mut MutexGuard`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = until.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter. Returns whether a thread was woken (always
    /// `false` here: std does not report it; callers in this workspace
    /// ignore the value).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all waiters. Returns the number woken (unknowable via std,
    /// reported as 0; callers in this workspace ignore the value).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut g = m.lock();
        *g += 1;
        let observed = MutexGuard::unlocked(&mut g, {
            let m = Arc::clone(&m);
            move || {
                // The lock is genuinely free while `f` runs.
                let peek = *m.lock();
                let t = std::thread::spawn(move || *m.lock() += 10);
                t.join().unwrap();
                peek
            }
        });
        assert_eq!(observed, 1);
        *g += 100;
        drop(g);
        assert_eq!(*m.lock(), 111);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the wire codec uses — [`Bytes`], [`BytesMut`],
//! and the [`Buf`]/[`BufMut`] traits with big-endian integer accessors —
//! backed by plain `Vec<u8>`/`Arc<[u8]>` instead of the real crate's
//! refcounted slabs. Semantics match `bytes` 1.x for this subset
//! (network byte order, panics on under/overflow of the cursor).

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte sequence; integers decode big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Fills `dst` from the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write cursor; integers encode big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts into an immutable, cheaply clonable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.inner.into_boxed_slice()),
            start: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Immutable shared byte sequence; clones share the allocation.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// An empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new sequence.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
            start: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_round_trip_through_bytes_mut() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"xyz");

        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xab);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xdead_beef);
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u32();
    }

    #[test]
    fn bytes_clone_shares_and_compares() {
        let b = Bytes::from(vec![9u8, 8, 7]);
        let mut c = b.clone();
        c.advance(1);
        assert_eq!(&b[..], &[9, 8, 7]);
        assert_eq!(&c[..], &[8, 7]);
        assert_eq!(b, Bytes::copy_from_slice(&[9, 8, 7]));
    }
}

//! Minimal, API-compatible subset of the `rand` crate, so the workspace
//! builds without registry access.
//!
//! [`rngs::StdRng`] is a SplitMix64 generator — statistically fine for
//! the deterministic test/fuzz seeding this workspace does, and NOT
//! cryptographic (the real `rand::rngs::StdRng` is a CSPRNG; nothing
//! here relies on that property — the one security-adjacent caller,
//! `amf-aspects::auth`, already documents its hashing as a stand-in).

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable uniformly from a half-open range via
/// [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        low + f64::from_rng(rng) * (high - low)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }

    /// Draws a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, full-period, deterministic. See module
    /// docs for the (non-)security caveat.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    /// Alias kept for call sites that ask for the small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((3_000..7_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

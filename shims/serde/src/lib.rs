//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` — nothing
//! calls serde trait methods or serializes through a format crate — so
//! these derives expand to nothing. Code like
//! `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Deserialize, Serialize};` compiles unchanged.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Minimal, API-compatible subset of `crossbeam` built on std, so the
//! workspace builds without registry access. Only the bounded MPMC
//! channel used by the benchmark harness is provided.

pub mod channel {
    //! Bounded multi-producer multi-consumer channel.

    use std::collections::VecDeque;
    use std::error::Error;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl Error for RecvError {}

    /// The sending half; cloneable and shareable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable and shareable across threads.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    /// Creates a channel holding at most `capacity` in-flight messages.
    ///
    /// Unlike crossbeam, a capacity of zero is rounded up to one rather
    /// than rendezvous semantics; the workspace never uses zero.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.shared.capacity {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives and returns it.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and every sender has
        /// been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let v = st.queue.pop_front();
            if v.is_some() {
                self.shared.not_full.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_preserves_order() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn send_blocks_at_capacity_until_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn disconnection_is_reported() {
            let (tx, rx) = bounded::<u8>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn many_producers_one_consumer() {
            let (tx, rx) = bounded(8);
            let mut handles = Vec::new();
            for p in 0..4u64 {
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            got.dedup();
            assert_eq!(got.len(), 400);
        }
    }
}

//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace's benches use (`Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, `criterion_group!`, `criterion_main!`) with a tiny
//! wall-clock harness: each benchmark runs a warm-up pass plus a small
//! fixed number of timed samples and prints mean ns/iter. No statistics,
//! plots, or baselines — enough to keep `cargo bench` runnable and the
//! bench crate compiling without registry access.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

const SAMPLES: u32 = 10;
const MIN_ITERS: u64 = 1;

/// How measured throughput is reported.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hint for how much setup output `iter_batched` keeps alive; ignored
/// by this harness.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Times one benchmark routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness keeps its own fixed
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.throughput, f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Entry point handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with generated harness code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs and reports one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), None, f);
        self
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    // Warm-up pass that also calibrates the per-sample iteration count
    // toward ~5ms so trivial routines aren't dominated by timer noise.
    let mut b = Bencher {
        iters: MIN_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = (b.elapsed.as_nanos() as u64).max(1);
    let iters = (5_000_000 / per_iter).clamp(MIN_ITERS, 100_000);

    let mut total_ns = 0u128;
    let mut total_iters = 0u128;
    for _ in 0..SAMPLES {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_ns += b.elapsed.as_nanos();
        total_iters += u128::from(iters);
    }

    let mean_ns = total_ns as f64 / total_iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (mean_ns / 1e9);
            println!("bench {id:<48} {mean_ns:>12.1} ns/iter {per_sec:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (mean_ns / 1e9);
            println!("bench {id:<48} {mean_ns:>12.1} ns/iter {per_sec:>14.0} B/s");
        }
        None => println!("bench {id:<48} {mean_ns:>12.1} ns/iter"),
    }
}

/// `criterion_group!` — bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!` — generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4)).sample_size(10);
        g.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}

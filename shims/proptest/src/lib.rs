//! Minimal, API-compatible subset of `proptest`, so the workspace's
//! property tests build and run without registry access.
//!
//! Differences from real proptest, deliberate and documented:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   (via normal `assert!` messages) but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible across processes; set
//!   `PROPTEST_CASES` to change the case count (default 64).
//! * Only the combinators this workspace uses are provided: ranges,
//!   `any`, `Just`, tuples, `prop_map`, `prop_oneof!`,
//!   `collection::vec`, `proptest!`, and `prop_assert*!`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size` and
    /// elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![any::<u8>().prop_map(Op::Push), Just(Op::Pop)]
    }

    proptest! {
        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0..10u8, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0..5u8, 0..3u8).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 < 3 && pair.1 < 5);
        }

        #[test]
        fn oneof_hits_every_arm(ops in crate::collection::vec(op(), 1..200)) {
            // Statistically certain with 200 draws over 64 cases.
            prop_assert!(ops.iter().any(|o| matches!(o, Op::Pop)) || ops.len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_are_respected(x in 0..100u32) {
            prop_assert!(x < 100);
        }
    }
}

//! Config and RNG plumbing for the [`proptest!`](crate::proptest) macro.

/// Run configuration; only `cases` is meaningful in this subset.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Deterministic SplitMix64 generator used by strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test name and case index, so every test
    /// function explores its own reproducible sequence.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// simply draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoxedStrategy").finish_non_exhaustive()
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform choice between boxed alternatives; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Marker for [`any`]: types with a canonical "uniform over the whole
/// domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Any").finish_non_exhaustive()
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Runs one property as `cases` random executions. Invoked by the
/// expansion of [`proptest!`](crate::proptest); not part of the public
/// proptest API.
pub fn run_property(
    test_name: &str,
    config: &crate::test_runner::ProptestConfig,
    mut case_fn: impl FnMut(&mut TestRng),
) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        case_fn(&mut rng);
    }
}

/// `proptest!` — declares property tests.
///
/// Supports the subset this workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then test functions whose arguments are
/// `pattern in strategy` pairs. Each expands to a `#[test]` running the
/// body over `config.cases` generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::strategy::run_property(stringify!($name), &config, |rng| {
                $(let $parm = $crate::strategy::Strategy::generate(&$strategy, rng);)+
                $body
            });
        }
    )*};
}

/// `prop_oneof!` — uniform choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// `prop_assert!` — asserts inside a property (plain `assert!` here:
/// failures panic with the formatted message, without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
